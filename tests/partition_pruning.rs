//! End-to-end checks of the tenant-partitioned storage layer: scans of a
//! scoped MT-H deployment must touch only the selected tenants' partition
//! buckets, and pruning must never change query results.

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, queries, MthDeployment};
use mtrewrite::OptLevel;

const TENANTS: i64 = 10;

fn deployment(pruning: bool) -> MthDeployment {
    let config = MthConfig {
        scale: 0.1,
        tenants: TENANTS,
        distribution: TenantDistribution::Uniform,
        seed: 42,
    };
    let engine = if pruning {
        EngineConfig::postgres_like()
    } else {
        EngineConfig::postgres_like().without_partition_pruning()
    };
    loader::load(config, engine)
}

fn run_scoped(
    dep: &MthDeployment,
    scope: &str,
    query: usize,
    level: OptLevel,
) -> (mtengine::ResultSet, mtengine::stats::StatsSnapshot) {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(level);
    conn.execute(scope).expect("scope statement");
    let rs = conn
        .query(&queries::query(query))
        .unwrap_or_else(|e| panic!("Q{query} at {level:?}: {e}"));
    (rs, conn.last_query_stats())
}

#[test]
fn own_tenant_scope_scans_a_fraction_of_the_rows() {
    let pruned = deployment(true);
    let full = deployment(false);
    // Q6 touches only lineitem, the largest tenant-specific table, so the
    // per-tenant bucketing shows up directly: scope {1} of 10 uniform tenants
    // must scan about a tenth of the rows the full scan visits.
    let (_, stats_pruned) = run_scoped(&pruned, "SET SCOPE = \"IN (1)\"", 6, OptLevel::O4);
    let (_, stats_full) = run_scoped(&full, "SET SCOPE = \"IN (1)\"", 6, OptLevel::O4);
    assert!(
        stats_pruned.rows_scanned * 5 <= stats_full.rows_scanned,
        "pruned scan visited {} rows, full scan {} — expected ≥5× reduction",
        stats_pruned.rows_scanned,
        stats_full.rows_scanned
    );
    assert!(
        stats_pruned.partitions_pruned >= (TENANTS - 1) as u64,
        "expected at least {} pruned buckets, saw {}",
        TENANTS - 1,
        stats_pruned.partitions_pruned
    );
    assert_eq!(stats_full.partitions_pruned, 0);
}

#[test]
fn pruning_never_changes_results() {
    let pruned = deployment(true);
    let full = deployment(false);
    for scope in ["SET SCOPE = \"IN (1)\"", "SET SCOPE = \"IN (1, 4, 7)\""] {
        for query in queries::CONVERSION_HEAVY {
            for level in [OptLevel::O4, OptLevel::InlineOnly, OptLevel::Canonical] {
                let (rs_pruned, _) = run_scoped(&pruned, scope, query, level);
                let (rs_full, _) = run_scoped(&full, scope, query, level);
                assert_eq!(
                    rs_pruned, rs_full,
                    "Q{query} at {level:?} with `{scope}` differs with pruning on/off"
                );
            }
        }
    }
}

#[test]
fn scoped_scan_reports_partition_accounting() {
    let dep = deployment(true);
    let (_, stats) = run_scoped(&dep, "SET SCOPE = \"IN (2)\"", 6, OptLevel::O4);
    // One lineitem bucket visited, nine skipped (plus whatever the Tenant
    // meta table contributes — it is global and therefore unpartitioned).
    assert!(stats.partitions_scanned >= 1);
    assert!(stats.partitions_pruned >= 9);
    assert!(stats.rows_scanned > 0);
}

#[test]
fn foreign_and_own_scans_see_the_same_bucket_sizes() {
    // Scoping to a single foreign tenant must scan a similar row count as the
    // own-tenant scope (uniform distribution), not the whole table.
    let dep = deployment(true);
    let (_, own) = run_scoped(&dep, "SET SCOPE = \"IN (1)\"", 6, OptLevel::O4);
    let (_, foreign) = run_scoped(&dep, "SET SCOPE = \"IN (2)\"", 6, OptLevel::O4);
    let ratio = own.rows_scanned.max(foreign.rows_scanned) as f64
        / own.rows_scanned.min(foreign.rows_scanned).max(1) as f64;
    assert!(
        ratio < 2.0,
        "own scope scanned {} rows, foreign {} — buckets should be comparable",
        own.rows_scanned,
        foreign.rows_scanned
    );
}

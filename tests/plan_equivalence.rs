//! Property tests pinning executor equivalence across storage and scan
//! configurations: for randomized MT-H queries at o1–o4, the {columnar, row}
//! × {parallel, serial, unpruned} cross of engine configurations — plus the
//! dictionary-encoding axis on the columnar layout — must return identical
//! row-sets. All configurations load the *same* generated data, so any
//! divergence is an executor bug, not a data artifact. (The exhaustive
//! dictionary sweep over all 22 queries lives in
//! `tests/dictionary_equivalence.rs`.)

use std::sync::OnceLock;

use mtbase::EngineConfig;
use mth::gen::{self, GeneratedData};
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, queries, MthDeployment};
use mtrewrite::OptLevel;
use proptest::prelude::*;

const TENANTS: i64 = 4;
/// Fast-running MT-H queries covering scans, joins, grouping, derived tables
/// and correlated sub-queries.
const QUERY_POOL: [usize; 8] = [1, 3, 5, 6, 10, 12, 14, 22];
const LEVELS: [OptLevel; 4] = [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::O4];
const SCOPES: [&str; 3] = [
    "SET SCOPE = \"IN (1)\"",
    "SET SCOPE = \"IN (1, 3)\"",
    "SET SCOPE = \"IN (1, 2, 3, 4)\"",
];

struct Fixtures {
    /// Columnar buckets (the default layout, dictionary-encoded), pruning
    /// on, parallel scans.
    parallel: MthDeployment,
    /// Columnar buckets, serial scans.
    serial: MthDeployment,
    /// Columnar buckets, partition pruning disabled (full-scan baseline).
    unpruned: MthDeployment,
    /// Columnar buckets without dictionary encoding — the plain `Arc<str>`
    /// baseline the code-space kernels are verified against.
    nodict: MthDeployment,
    /// Row buckets, pruning on, parallel scans.
    row_parallel: MthDeployment,
    /// Row buckets, serial scans — the PR 1/PR 2 storage baseline.
    row_serial: MthDeployment,
    /// Row buckets, partition pruning disabled.
    row_unpruned: MthDeployment,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        // Scale 2.0 keeps lineitem above the parallel-scan row threshold so
        // scoped scans actually exercise the fan-out path.
        let config = MthConfig {
            scale: 2.0,
            tenants: TENANTS,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        };
        let data: GeneratedData = gen::generate(&config);
        let load = |engine_config| loader::load_from_data(config, engine_config, &data);
        Fixtures {
            parallel: load(EngineConfig::postgres_like().with_parallel_scan(4)),
            serial: load(EngineConfig::postgres_like()),
            unpruned: load(EngineConfig::postgres_like().without_partition_pruning()),
            nodict: load(EngineConfig::postgres_like().without_dictionary_encoding()),
            row_parallel: load(
                EngineConfig::postgres_like()
                    .with_parallel_scan(4)
                    .without_columnar_scan(),
            ),
            row_serial: load(EngineConfig::postgres_like().without_columnar_scan()),
            row_unpruned: load(
                EngineConfig::postgres_like()
                    .without_partition_pruning()
                    .without_columnar_scan(),
            ),
        }
    })
}

fn run(dep: &MthDeployment, scope: &str, query: usize, level: OptLevel) -> mtbase::ResultSet {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(level);
    conn.execute(scope).expect("scope statement");
    conn.query(&queries::query(query))
        .unwrap_or_else(|e| panic!("Q{query} at {level:?} with `{scope}`: {e}"))
}

proptest! {
    /// The same randomized (query, level, scope) cell must produce identical
    /// row-sets across the full {columnar, row} × {parallel, serial,
    /// unpruned} configuration cross.
    #[test]
    fn plan_executor_matches_across_storage_and_scan_configs(
        q_idx in 0_usize..QUERY_POOL.len(),
        level_idx in 0_usize..LEVELS.len(),
        scope_idx in 0_usize..SCOPES.len(),
    ) {
        let f = fixtures();
        let query = QUERY_POOL[q_idx];
        let level = LEVELS[level_idx];
        let scope = SCOPES[scope_idx];

        let columnar_parallel = run(&f.parallel, scope, query, level);
        let columnar_serial = run(&f.serial, scope, query, level);
        let columnar_unpruned = run(&f.unpruned, scope, query, level);
        let columnar_nodict = run(&f.nodict, scope, query, level);
        let row_parallel = run(&f.row_parallel, scope, query, level);
        let row_serial = run(&f.row_serial, scope, query, level);
        let row_unpruned = run(&f.row_unpruned, scope, query, level);

        // The shim's prop_assert_eq! takes no context message; panic output
        // identifies the failing cell through the stringified expressions.
        prop_assert_eq!(&columnar_parallel, &columnar_serial);
        prop_assert_eq!(&columnar_serial, &columnar_unpruned);
        prop_assert_eq!(&columnar_serial, &columnar_nodict);
        prop_assert_eq!(&columnar_serial, &row_serial);
        prop_assert_eq!(&row_parallel, &row_serial);
        prop_assert_eq!(&row_serial, &row_unpruned);
    }
}

/// Parameterized query templates for the prepared-statement equivalence
/// property, paired with pools of candidate parameter vectors.
const PREPARED_TEMPLATES: [&str; 4] = [
    "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem \
     WHERE l_quantity < ? AND l_discount BETWEEN ? AND ?",
    "SELECT l_orderkey, l_quantity FROM lineitem \
     WHERE l_quantity >= $1 AND l_shipmode = $2 ORDER BY l_orderkey, l_quantity",
    "SELECT COUNT(*) FROM lineitem WHERE ttid = ?",
    "SELECT l_returnflag, COUNT(*) AS cnt FROM lineitem \
     WHERE l_quantity BETWEEN ? AND ? GROUP BY l_returnflag ORDER BY l_returnflag",
];

fn template_params(template_idx: usize, variant: usize) -> Vec<mtbase::Value> {
    use mtbase::Value;
    match template_idx {
        0 => {
            let q = [11, 24, 35][variant % 3];
            let lo = [0.02, 0.05][variant % 2];
            vec![Value::Int(q), Value::Float(lo), Value::Float(lo + 0.02)]
        }
        1 => {
            let q = [45, 48][variant % 2];
            let mode = ["MAIL", "SHIP", "RAIL"][variant % 3];
            vec![Value::Int(q), Value::str(mode)]
        }
        2 => vec![Value::Int((variant % 4) as i64 + 1)],
        _ => {
            let lo = [5, 20][variant % 2] as i64;
            vec![Value::Int(lo), Value::Int(lo + 15)]
        }
    }
}

/// Render a parameter value as a SQL literal (for the inlined one-shot
/// counterpart of a prepared execution).
fn literal(v: &mtbase::Value) -> String {
    use mtbase::Value;
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f}"),
        Value::Str(s) => format!("'{s}'"),
        other => panic!("no literal form for {other:?}"),
    }
}

/// Substitute `?` / `$n` placeholders with inlined literals, in order (the
/// templates use each parameter exactly once, in positional order).
fn inline_literals(template: &str, params: &[mtbase::Value]) -> String {
    let mut out = String::new();
    let mut next = 0usize;
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '?' => {
                out.push_str(&literal(&params[next]));
                next += 1;
            }
            '$' if chars.peek().is_some_and(|c| c.is_ascii_digit()) => {
                let mut n = 0usize;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n * 10 + d as usize;
                    chars.next();
                }
                out.push_str(&literal(&params[n - 1]));
                next = next.max(n);
            }
            other => out.push(other),
        }
    }
    out
}

proptest! {
    /// Prepared + bound execution must be byte-identical to one-shot
    /// `execute` with the parameter values inlined as literals, across the
    /// {columnar, row} × {parallel, serial} configuration cross — binding
    /// must not change what the plan computes, only what it is compared to.
    #[test]
    fn prepared_execution_equals_one_shot_with_literals(
        t_idx in 0_usize..PREPARED_TEMPLATES.len(),
        variant in 0_usize..6,
        level_idx in 0_usize..LEVELS.len(),
        scope_idx in 0_usize..SCOPES.len(),
    ) {
        let f = fixtures();
        let template = PREPARED_TEMPLATES[t_idx];
        let params = template_params(t_idx, variant);
        let level = LEVELS[level_idx];
        let scope = SCOPES[scope_idx];
        let inlined = inline_literals(template, &params);

        for dep in [&f.parallel, &f.serial, &f.row_parallel, &f.row_serial] {
            let mut conn = dep.server.connect(1);
            conn.set_opt_level(level);
            conn.execute(scope).expect("scope statement");
            let mut stmt = conn.prepare(template)
                .unwrap_or_else(|e| panic!("prepare `{template}`: {e}"));
            let prepared = stmt.execute_with(&params)
                .unwrap_or_else(|e| panic!("prepared `{template}` {params:?}: {e}"));
            // Draining the same statement through a cursor must agree too.
            let mut cursor = stmt.cursor_with_batch(128).unwrap();
            let mut streamed: Vec<Vec<mtbase::Value>> = Vec::new();
            while let Some(batch) = cursor.next_batch().unwrap() {
                streamed.extend(batch);
            }
            let one_shot = conn.query(&inlined)
                .unwrap_or_else(|e| panic!("one-shot `{inlined}`: {e}"));
            prop_assert_eq!(&prepared.rows, &one_shot.rows);
            prop_assert_eq!(&streamed, &one_shot.rows);
        }
    }
}

/// The columnar configurations must actually exercise the vectorized scan
/// path, and the row configurations must never report it.
#[test]
fn vectorized_path_engages_on_columnar_deployments() {
    let f = fixtures();
    let mut conn = f.serial.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
    conn.query(&queries::query(6)).unwrap();
    let stats = conn.last_query_stats();
    assert!(
        stats.rows_vectorized > 0,
        "expected Q6's lineitem scan to run vectorized, stats: {stats:?}"
    );
    assert!(
        stats.late_materialized < stats.rows_vectorized,
        "Q6's selective filter must late-materialize a strict subset, stats: {stats:?}"
    );

    let mut conn = f.row_serial.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
    conn.query(&queries::query(6)).unwrap();
    let stats = conn.last_query_stats();
    assert_eq!(stats.rows_vectorized, 0, "row buckets must not vectorize");
    assert_eq!(stats.late_materialized, 0);
}

/// The parallel configuration must actually exercise the parallel scan path
/// (otherwise the property above would vacuously compare serial to serial).
#[test]
fn parallel_path_engages_on_large_scans() {
    let f = fixtures();
    let mut conn = f.parallel.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
    conn.query(&queries::query(6)).unwrap();
    let stats = conn.last_query_stats();
    assert!(
        stats.parallel_scans > 0,
        "expected Q6's lineitem scan to fan out, stats: {stats:?}"
    );
    assert!(
        stats.morsels_dispatched > 0 && stats.morsel_workers > 1,
        "expected the worker pool to pull row-range morsels, stats: {stats:?}"
    );
    assert!(
        stats.partial_agg_merges > 0,
        "expected Q6's global SUM to merge per-morsel partial states, stats: {stats:?}"
    );

    // The serial deployment must never report parallel scans. (An MT_THREADS
    // override deliberately forces the pool on for every deployment — CI's
    // forced-pool leg relies on that — so the zero-asserts only hold without
    // the override.)
    if std::env::var("MT_THREADS").is_err() {
        let mut conn = f.serial.server.connect(1);
        conn.set_opt_level(OptLevel::O2);
        conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
        conn.query(&queries::query(6)).unwrap();
        let stats = conn.last_query_stats();
        assert_eq!(stats.parallel_scans, 0);
        assert_eq!(stats.morsels_dispatched, 0);
        assert_eq!(stats.partial_agg_merges, 0);
    }
}

/// Scans that keep an interpreted residual conjunct used to fall back to a
/// serial scan; under the morsel scheduler the hybrid path runs on the pool
/// too, with results and scan counters identical to the serial deployment.
#[test]
fn interpreted_residual_conjuncts_engage_the_pool() {
    let f = fixtures();
    // `l_quantity + 0` defeats the fast-predicate compiler, leaving a
    // Generic conjunct that must be interpreted per surviving row.
    let q = "SELECT l_orderkey, l_quantity FROM lineitem \
             WHERE l_quantity + 0 < 10 ORDER BY l_orderkey, l_quantity";

    let mut conn = f.parallel.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
    let pooled = conn.query(q).unwrap();
    let pooled_stats = conn.last_query_stats();
    assert!(
        pooled_stats.parallel_scans > 0 && pooled_stats.morsels_dispatched > 0,
        "hybrid filter must still run on the morsel pool, stats: {pooled_stats:?}"
    );

    let mut conn = f.serial.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
    let serial = conn.query(q).unwrap();
    let serial_stats = conn.last_query_stats();
    assert_eq!(pooled, serial);
    assert_eq!(pooled_stats.rows_scanned, serial_stats.rows_scanned);
    assert_eq!(
        pooled_stats.partitions_pruned,
        serial_stats.partitions_pruned
    );
}

// ---------------------------------------------------------------------------
// Decorrelated join semantics
// ---------------------------------------------------------------------------

/// Build a two-table deployment for the decorrelation property: an outer
/// `Cust` and an inner `Ords` with nullable join-key columns, rows spread
/// across two tenants so the scope rewrite injects `ttid` equi-correlations
/// into the sub-queries (exactly the Q22 shape). Tables are tiny — a fresh
/// pair of servers per generated case keeps the decorrelated and interpreted
/// deployments bit-identical in content.
fn join_server(
    engine_config: EngineConfig,
    cust: &[(Option<i64>, i64)],
    ords: &[(Option<i64>, i64)],
) -> std::sync::Arc<mtbase::MtBase> {
    use mtbase::Value;
    use mtsql::ast::Statement;
    let server = mtbase::MtBase::new(engine_config);
    for ddl in [
        "CREATE TABLE Cust SPECIFIC (c_id INTEGER SPECIFIC, c_val INTEGER NOT NULL SPECIFIC)",
        "CREATE TABLE Ords SPECIFIC (o_cust INTEGER SPECIFIC, o_val INTEGER NOT NULL SPECIFIC)",
    ] {
        match mtsql::parse_statement(ddl).expect("DDL parses") {
            Statement::CreateTable(ct) => server.create_table(&ct).expect("create table"),
            _ => unreachable!(),
        }
    }
    for t in 1..=2 {
        server.register_tenant(t).expect("register tenant");
    }
    server.grant_read_all(1).expect("grant read");
    let int_or_null = |v: Option<i64>| v.map_or(Value::Null, Value::Int);
    let rows = |data: &[(Option<i64>, i64)]| -> Vec<Vec<Value>> {
        data.iter()
            .enumerate()
            .map(|(i, &(key, val))| {
                vec![
                    Value::Int(i as i64 % 2 + 1),
                    int_or_null(key),
                    Value::Int(val),
                ]
            })
            .collect()
    };
    if !cust.is_empty() {
        server.load_rows("Cust", rows(cust)).expect("load Cust");
    }
    if !ords.is_empty() {
        server.load_rows("Ords", rows(ords)).expect("load Ords");
    }
    server
}

/// Correlated predicate templates over `Cust`/`Ords`. The first five unnest
/// (equi-correlated EXISTS / NOT EXISTS / scalar aggregates on either side
/// of the comparison); the last two are deliberate bail cases — a non-equi
/// correlation and a COUNT aggregate (whose zero-over-empty vs NULL-over-
/// empty semantics the rewrite refuses to touch) — pinning that the planner
/// falls back to the interpreted sub-query rather than rewriting wrongly.
const JOIN_TEMPLATES: [&str; 7] = [
    "EXISTS (SELECT 1 FROM Ords WHERE o_cust = c_id AND o_val > {k})",
    "NOT EXISTS (SELECT 1 FROM Ords WHERE o_cust = c_id AND o_val > {k})",
    "c_val < (SELECT AVG(o_val) FROM Ords WHERE o_cust = c_id)",
    "c_val >= (SELECT SUM(o_val) FROM Ords WHERE o_cust = c_id)",
    "(SELECT MAX(o_val) FROM Ords WHERE o_cust = c_id) > {k}",
    "NOT EXISTS (SELECT 1 FROM Ords WHERE o_cust = c_id AND o_val <> c_val)",
    "c_val < (SELECT COUNT(*) FROM Ords WHERE o_cust = c_id)",
];
const UNNESTING_TEMPLATES: usize = 5;

proptest! {
    /// Decorrelated semi-/anti-/aggregate-joins must agree with the
    /// interpreted correlated plans on randomized data — including NULL join
    /// keys on both sides (anti-join 3VL: a NULL probe key matches nothing,
    /// so `NOT EXISTS` keeps the row) and empty inner sides (scalar
    /// aggregates over zero rows are NULL, never zero). The unnesting
    /// templates must actually rewrite, and the baseline deployment must
    /// never report an unnested sub-query.
    #[test]
    fn decorrelated_joins_match_interpreted_subqueries(
        template_idx in 0_usize..JOIN_TEMPLATES.len(),
        cust_n in 0_usize..10,
        ords_n in 0_usize..12,
        k in 0_i64..12,
        seed in 0_u64..1_000_000,
    ) {
        // Derive table contents from the seed with a local SplitMix step —
        // ~1 in 5 join keys NULL, values small enough to collide often.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 27)
        };
        let mut gen_rows = |n: usize| -> Vec<(Option<i64>, i64)> {
            (0..n)
                .map(|_| {
                    let key = if next() % 5 == 0 { None } else { Some((next() % 6) as i64) };
                    (key, (next() % 12) as i64)
                })
                .collect()
        };
        let cust = gen_rows(cust_n);
        let ords = gen_rows(ords_n);

        let decorr = join_server(EngineConfig::default(), &cust, &ords);
        let interp = join_server(EngineConfig::default().without_decorrelation(), &cust, &ords);
        let pred = JOIN_TEMPLATES[template_idx].replace("{k}", &k.to_string());
        let sql = format!("SELECT c_id, c_val FROM Cust WHERE {pred} ORDER BY c_val, c_id");

        let run = |server: &std::sync::Arc<mtbase::MtBase>| {
            let mut conn = server.connect(1);
            conn.set_opt_level(OptLevel::O2);
            conn.execute("SET SCOPE = \"IN (1, 2)\"").expect("scope statement");
            let rs = conn.query(&sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
            (rs, conn.last_query_stats().subqueries_unnested)
        };
        let (drs, dunnested) = run(&decorr);
        let (irs, iunnested) = run(&interp);
        prop_assert_eq!(&drs, &irs);
        prop_assert_eq!(iunnested, 0);
        if template_idx < UNNESTING_TEMPLATES {
            prop_assert!(dunnested > 0);
        } else {
            prop_assert_eq!(dunnested, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Static plan verification (PR 9)
// ---------------------------------------------------------------------------

/// Small deployments with the static plan verifier forced **on**, crossing
/// the two axes that change plan *shape*: decorrelation (join variants) and
/// dictionary encoding (scan kernels). Scale is small — these cells pin that
/// every plan the planner can produce for the MT-H workload passes
/// verification, not performance.
struct VerifyFixtures {
    decorr_dict: MthDeployment,
    decorr_nodict: MthDeployment,
    interp_dict: MthDeployment,
    interp_nodict: MthDeployment,
}

fn verify_fixtures() -> &'static VerifyFixtures {
    static FIXTURES: OnceLock<VerifyFixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let config = MthConfig {
            scale: 0.05,
            tenants: TENANTS,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        };
        let data: GeneratedData = gen::generate(&config);
        let load = |engine_config| loader::load_from_data(config, engine_config, &data);
        VerifyFixtures {
            decorr_dict: load(EngineConfig::postgres_like().with_verify_plans()),
            decorr_nodict: load(
                EngineConfig::postgres_like()
                    .without_dictionary_encoding()
                    .with_verify_plans(),
            ),
            interp_dict: load(
                EngineConfig::postgres_like()
                    .without_decorrelation()
                    .with_verify_plans(),
            ),
            interp_nodict: load(
                EngineConfig::postgres_like()
                    .without_decorrelation()
                    .without_dictionary_encoding()
                    .with_verify_plans(),
            ),
        }
    })
}

/// Every MT-H query must plan *and verify* cleanly at o2 and o4 across the
/// {decorrelate, interpret} × {dict, no-dict} configuration cross — the
/// verifier must reject corrupt plans, never legitimate planner output. The
/// per-config results must also still agree (verification is read-only).
#[test]
fn all_queries_verify_clean_across_the_config_matrix() {
    let f = verify_fixtures();
    let cells = [
        ("decorr+dict", &f.decorr_dict),
        ("decorr+nodict", &f.decorr_nodict),
        ("interp+dict", &f.interp_dict),
        ("interp+nodict", &f.interp_nodict),
    ];
    for query in queries::all_query_numbers() {
        for level in [OptLevel::O2, OptLevel::O4] {
            let mut baseline: Option<mtbase::ResultSet> = None;
            for (name, dep) in cells {
                let mut conn = dep.server.connect(1);
                conn.set_opt_level(level);
                conn.execute("SET SCOPE = \"IN (1, 3)\"")
                    .expect("scope statement");
                let rs = conn
                    .query(&queries::query(query))
                    .unwrap_or_else(|e| panic!("Q{query} at {level:?} on {name}: {e}"));
                assert!(
                    conn.last_query_stats().plans_verified > 0,
                    "Q{query} at {level:?} on {name}: verifier did not engage"
                );
                if let Some(base) = &baseline {
                    assert_eq!(
                        base, &rs,
                        "Q{query} at {level:?}: {name} diverged under verification"
                    );
                } else {
                    baseline = Some(rs);
                }
            }
        }
    }
}

/// Aggregates that appear only inside HAVING composites (BETWEEN, IS NULL)
/// must give identical results at every optimization level: either the o3
/// distribution handles them or it backs off to the undistributed form — it
/// must never ship a half-distributed query.
#[test]
fn having_composite_aggregates_agree_across_levels() {
    let f = fixtures();
    let queries = [
        "SELECT l_returnflag FROM lineitem GROUP BY l_returnflag \
         HAVING SUM(l_extendedprice) BETWEEN 0 AND 100000000 ORDER BY l_returnflag",
        "SELECT l_returnflag FROM lineitem GROUP BY l_returnflag \
         HAVING MAX(l_extendedprice) IS NOT NULL ORDER BY l_returnflag",
    ];
    let mut conn = f.serial.server.connect(1);
    conn.execute("SET SCOPE = \"IN (1, 2)\"").unwrap();
    for q in queries {
        let mut previous: Option<mtbase::ResultSet> = None;
        for level in LEVELS {
            conn.set_opt_level(level);
            let rs = conn
                .query(q)
                .unwrap_or_else(|e| panic!("{q}\nat {level:?}: {e}"));
            if let Some(prev) = &previous {
                assert_eq!(prev, &rs, "{q} differs at {level:?}");
            }
            previous = Some(rs);
        }
    }
}

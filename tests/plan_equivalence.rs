//! Property tests pinning executor equivalence across storage and scan
//! configurations: for randomized MT-H queries at o1–o4, the {columnar, row}
//! × {parallel, serial, unpruned} cross of engine configurations must return
//! identical row-sets. All six configurations load the *same* generated
//! data, so any divergence is an executor bug, not a data artifact.

use std::sync::OnceLock;

use mtbase::EngineConfig;
use mth::gen::{self, GeneratedData};
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, queries, MthDeployment};
use mtrewrite::OptLevel;
use proptest::prelude::*;

const TENANTS: i64 = 4;
/// Fast-running MT-H queries covering scans, joins, grouping, derived tables
/// and correlated sub-queries.
const QUERY_POOL: [usize; 8] = [1, 3, 5, 6, 10, 12, 14, 22];
const LEVELS: [OptLevel; 4] = [OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::O4];
const SCOPES: [&str; 3] = [
    "SET SCOPE = \"IN (1)\"",
    "SET SCOPE = \"IN (1, 3)\"",
    "SET SCOPE = \"IN (1, 2, 3, 4)\"",
];

struct Fixtures {
    /// Columnar buckets (the default layout), pruning on, parallel scans.
    parallel: MthDeployment,
    /// Columnar buckets, serial scans.
    serial: MthDeployment,
    /// Columnar buckets, partition pruning disabled (full-scan baseline).
    unpruned: MthDeployment,
    /// Row buckets, pruning on, parallel scans.
    row_parallel: MthDeployment,
    /// Row buckets, serial scans — the PR 1/PR 2 storage baseline.
    row_serial: MthDeployment,
    /// Row buckets, partition pruning disabled.
    row_unpruned: MthDeployment,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        // Scale 2.0 keeps lineitem above the parallel-scan row threshold so
        // scoped scans actually exercise the fan-out path.
        let config = MthConfig {
            scale: 2.0,
            tenants: TENANTS,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        };
        let data: GeneratedData = gen::generate(&config);
        let load = |engine_config| loader::load_from_data(config, engine_config, &data);
        Fixtures {
            parallel: load(EngineConfig::postgres_like().with_parallel_scan(4)),
            serial: load(EngineConfig::postgres_like()),
            unpruned: load(EngineConfig::postgres_like().without_partition_pruning()),
            row_parallel: load(
                EngineConfig::postgres_like()
                    .with_parallel_scan(4)
                    .without_columnar_scan(),
            ),
            row_serial: load(EngineConfig::postgres_like().without_columnar_scan()),
            row_unpruned: load(
                EngineConfig::postgres_like()
                    .without_partition_pruning()
                    .without_columnar_scan(),
            ),
        }
    })
}

fn run(dep: &MthDeployment, scope: &str, query: usize, level: OptLevel) -> mtbase::ResultSet {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(level);
    conn.execute(scope).expect("scope statement");
    conn.query(&queries::query(query))
        .unwrap_or_else(|e| panic!("Q{query} at {level:?} with `{scope}`: {e}"))
}

proptest! {
    /// The same randomized (query, level, scope) cell must produce identical
    /// row-sets across the full {columnar, row} × {parallel, serial,
    /// unpruned} configuration cross.
    #[test]
    fn plan_executor_matches_across_storage_and_scan_configs(
        q_idx in 0_usize..QUERY_POOL.len(),
        level_idx in 0_usize..LEVELS.len(),
        scope_idx in 0_usize..SCOPES.len(),
    ) {
        let f = fixtures();
        let query = QUERY_POOL[q_idx];
        let level = LEVELS[level_idx];
        let scope = SCOPES[scope_idx];

        let columnar_parallel = run(&f.parallel, scope, query, level);
        let columnar_serial = run(&f.serial, scope, query, level);
        let columnar_unpruned = run(&f.unpruned, scope, query, level);
        let row_parallel = run(&f.row_parallel, scope, query, level);
        let row_serial = run(&f.row_serial, scope, query, level);
        let row_unpruned = run(&f.row_unpruned, scope, query, level);

        // The shim's prop_assert_eq! takes no context message; panic output
        // identifies the failing cell through the stringified expressions.
        prop_assert_eq!(&columnar_parallel, &columnar_serial);
        prop_assert_eq!(&columnar_serial, &columnar_unpruned);
        prop_assert_eq!(&columnar_serial, &row_serial);
        prop_assert_eq!(&row_parallel, &row_serial);
        prop_assert_eq!(&row_serial, &row_unpruned);
    }
}

/// The columnar configurations must actually exercise the vectorized scan
/// path, and the row configurations must never report it.
#[test]
fn vectorized_path_engages_on_columnar_deployments() {
    let f = fixtures();
    let mut conn = f.serial.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
    conn.query(&queries::query(6)).unwrap();
    let stats = conn.last_query_stats();
    assert!(
        stats.rows_vectorized > 0,
        "expected Q6's lineitem scan to run vectorized, stats: {stats:?}"
    );
    assert!(
        stats.late_materialized < stats.rows_vectorized,
        "Q6's selective filter must late-materialize a strict subset, stats: {stats:?}"
    );

    let mut conn = f.row_serial.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
    conn.query(&queries::query(6)).unwrap();
    let stats = conn.last_query_stats();
    assert_eq!(stats.rows_vectorized, 0, "row buckets must not vectorize");
    assert_eq!(stats.late_materialized, 0);
}

/// The parallel configuration must actually exercise the parallel scan path
/// (otherwise the property above would vacuously compare serial to serial).
#[test]
fn parallel_path_engages_on_large_scans() {
    let f = fixtures();
    let mut conn = f.parallel.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
    conn.query(&queries::query(6)).unwrap();
    let stats = conn.last_query_stats();
    assert!(
        stats.parallel_scans > 0,
        "expected Q6's lineitem scan to fan out, stats: {stats:?}"
    );

    // The serial deployment must never report parallel scans.
    let mut conn = f.serial.server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
    conn.query(&queries::query(6)).unwrap();
    assert_eq!(conn.last_query_stats().parallel_scans, 0);
}

/// Aggregates that appear only inside HAVING composites (BETWEEN, IS NULL)
/// must give identical results at every optimization level: either the o3
/// distribution handles them or it backs off to the undistributed form — it
/// must never ship a half-distributed query.
#[test]
fn having_composite_aggregates_agree_across_levels() {
    let f = fixtures();
    let queries = [
        "SELECT l_returnflag FROM lineitem GROUP BY l_returnflag \
         HAVING SUM(l_extendedprice) BETWEEN 0 AND 100000000 ORDER BY l_returnflag",
        "SELECT l_returnflag FROM lineitem GROUP BY l_returnflag \
         HAVING MAX(l_extendedprice) IS NOT NULL ORDER BY l_returnflag",
    ];
    let mut conn = f.serial.server.connect(1);
    conn.execute("SET SCOPE = \"IN (1, 2)\"").unwrap();
    for q in queries {
        let mut previous: Option<mtbase::ResultSet> = None;
        for level in LEVELS {
            conn.set_opt_level(level);
            let rs = conn
                .query(q)
                .unwrap_or_else(|e| panic!("{q}\nat {level:?}: {e}"));
            if let Some(prev) = &previous {
                assert_eq!(prev, &rs, "{q} differs at {level:?}");
            }
            previous = Some(rs);
        }
    }
}

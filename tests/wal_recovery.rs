//! Durability under fire: the crash-fault injection harness pinning the WAL
//! tentpole. A durable MT-H deployment is loaded through the middleware
//! (every batch logged), then crashes are injected at every WAL frame of a
//! follow-up transaction — torn writes, pre-fsync tail loss, bit-flipped
//! checksums — plus direct on-disk corruption of a committed tail. After
//! every crash, recovery must yield *exactly* the committed-prefix state:
//! all 22 MT-H queries return identical results with identical
//! `rows_scanned` / `partitions_pruned` counters, and the recovered writer
//! must accept new transactions.
//!
//! Also pinned here (satellite): the `dict_columns` gauge lands at its
//! pre-crash value when the replayed log demoted a dictionary column
//! mid-table.

use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

use mtbase::{EngineConfig, MtBase, MtError, ResultSet, Value};
use mtengine::{CrashMode, FailpointClock};
use mth::gen::{self, GeneratedData};
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, queries};
use mtrewrite::OptLevel;
use mtsql::ast::Statement;

const SCOPE: &str = "SET SCOPE = \"IN (1, 2)\"";

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mtbase-wal-recovery-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}-{}.wal", name, std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// One shared generation run: the data is deterministic (seed 42), so every
/// test that loads it durably produces byte-identical WAL contents.
fn mth_data() -> &'static (MthConfig, GeneratedData) {
    static DATA: OnceLock<(MthConfig, GeneratedData)> = OnceLock::new();
    DATA.get_or_init(|| {
        let config = MthConfig {
            scale: 0.05,
            tenants: 4,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        };
        let data = gen::generate(&config);
        (config, data)
    })
}

/// Result + the scan counters the harness compares across a crash: identical
/// counters prove recovery rebuilt the same physical layout (buckets,
/// partitions, dictionary state), not just the same logical rows.
type QueryFingerprint = (ResultSet, u64, u64);

fn run_query(server: &Arc<MtBase>, query: usize) -> QueryFingerprint {
    let mut conn = server.connect(1);
    conn.set_opt_level(OptLevel::O2);
    conn.execute(SCOPE).expect("scope statement");
    let rs = conn
        .query(&queries::query(query))
        .unwrap_or_else(|e| panic!("Q{query}: {e}"));
    let stats = conn.last_query_stats();
    (rs, stats.rows_scanned, stats.partitions_pruned)
}

/// Fingerprint all 22 MT-H queries.
fn fingerprint(server: &Arc<MtBase>) -> Vec<QueryFingerprint> {
    queries::all_query_numbers()
        .map(|q| run_query(server, q))
        .collect()
}

fn assert_fingerprints_match(
    reference: &[QueryFingerprint],
    recovered: &[QueryFingerprint],
    context: &str,
) {
    for (i, (r, g)) in reference.iter().zip(recovered.iter()).enumerate() {
        let q = i + 1;
        assert_eq!(r.0, g.0, "{context}: Q{q} results differ after recovery");
        assert_eq!(
            r.1, g.1,
            "{context}: Q{q} rows_scanned differs after recovery"
        );
        assert_eq!(
            r.2, g.2,
            "{context}: Q{q} partitions_pruned differs after recovery"
        );
    }
}

/// A lineitem row the crash workload inserts: a copy of an existing row with
/// its ttid forced into the query scope, so a committed insert *would* be
/// observable by the fingerprint (proving the harness can tell committed
/// from uncommitted).
fn scoped_lineitem_row(server: &Arc<MtBase>) -> Vec<Value> {
    let rs = server
        .raw_query("SELECT * FROM lineitem")
        .expect("scan lineitem");
    let mut row = rs.rows[0].clone();
    row[0] = Value::Int(1);
    row
}

fn lineitem_count(server: &Arc<MtBase>) -> Value {
    server
        .raw_query("SELECT COUNT(*) FROM lineitem")
        .expect("count lineitem")
        .rows[0][0]
        .clone()
}

/// Durable load, plain close, reopen: every query (results and counters) and
/// the dictionary gauge must round-trip through the log.
#[test]
fn durable_load_reopen_round_trips_all_queries() {
    let (config, data) = mth_data();
    let path = tmp("round-trip");
    let engine_config = EngineConfig::postgres_like();

    let (reference, dict_columns) = {
        let deployment = loader::load_durable_from_data(*config, engine_config, data, &path)
            .expect("durable load");
        let reference = fingerprint(&deployment.server);
        (reference, deployment.server.stats().dict_columns)
    };
    assert!(dict_columns > 0, "MT-H load must dictionary-encode columns");

    let recovered = loader::reopen_durable(engine_config, &path).expect("reopen");
    assert_fingerprints_match(&reference, &fingerprint(&recovered), "plain reopen");
    assert_eq!(
        recovered.stats().dict_columns,
        dict_columns,
        "dictionary gauge drifted across recovery"
    );
}

/// The headline sweep: enumerate every WAL frame an INSERT transaction
/// appends, then crash at each of them under each fault mode. Recovery must
/// always land on the committed prefix (the pre-insert state — the crashed
/// transaction never committed cleanly), verified by all 22 queries, and the
/// recovered writer must accept the retried insert.
#[test]
fn injected_crash_sweep_recovers_committed_prefix() {
    let (config, data) = mth_data();
    let base = tmp("crash-sweep-base");
    let engine_config = EngineConfig::postgres_like();

    let (reference, row, base_count) = {
        let deployment = loader::load_durable_from_data(*config, engine_config, data, &base)
            .expect("durable load");
        let row = scoped_lineitem_row(&deployment.server);
        let reference = fingerprint(&deployment.server);
        let count = lineitem_count(&deployment.server);
        (reference, row, count)
    };

    // Enumerate the crash points: run the workload once under an observer
    // clock on a scratch copy and count the frames it appends.
    let ops = {
        let scratch = tmp("crash-sweep-enumerate");
        std::fs::copy(&base, &scratch).expect("copy WAL");
        let server = loader::reopen_durable(engine_config, &scratch).expect("reopen");
        let clock = FailpointClock::observe();
        server.set_failpoint_clock(Arc::clone(&clock));
        server
            .load_rows("lineitem", vec![row.clone()])
            .expect("observed insert");
        clock.ops()
    };
    assert!(
        ops >= 2,
        "an INSERT transaction must append at least a record and a commit frame, got {ops}"
    );

    // CI shards the sweep across a fault-mode matrix via `WAL_FAULT_MODE`;
    // without it (the local default) every mode runs in one sweep.
    let modes = match std::env::var("WAL_FAULT_MODE").as_deref() {
        Ok("torn-write") => vec![CrashMode::TornWrite],
        Ok("pre-fsync-loss") => vec![CrashMode::PreFsyncLoss],
        Ok("bit-flip") => vec![CrashMode::BitFlip],
        Ok(other) => panic!("unknown WAL_FAULT_MODE `{other}`"),
        Err(_) => vec![
            CrashMode::TornWrite,
            CrashMode::PreFsyncLoss,
            CrashMode::BitFlip,
        ],
    };
    for mode in modes {
        for crash_at in 1..=ops {
            let context = format!("{mode:?} at frame {crash_at}/{ops}");
            let scratch = tmp(&format!("crash-{mode:?}-{crash_at}"));
            std::fs::copy(&base, &scratch).expect("copy WAL");

            {
                let server = loader::reopen_durable(engine_config, &scratch).expect("reopen");
                let clock = FailpointClock::crash_at(crash_at, mode);
                server.set_failpoint_clock(Arc::clone(&clock));
                let err = server
                    .load_rows("lineitem", vec![row.clone()])
                    .expect_err("the injected crash must fail the insert");
                assert!(
                    matches!(err, MtError::Durability(_)),
                    "{context}: expected a durability error, got: {err}"
                );
                assert!(clock.fired(), "{context}: the crash point never fired");
                // The writer is dead until recovery — no write sneaks through.
                let retry = server
                    .load_rows("lineitem", vec![row.clone()])
                    .expect_err("the dead writer must reject further writes");
                assert!(
                    matches!(retry, MtError::Durability(_)),
                    "{context}: expected a dead-writer error, got: {retry}"
                );
            }

            // "Restart": recover from the crashed log.
            let recovered = loader::reopen_durable(engine_config, &scratch).expect("recovery");
            assert_eq!(
                lineitem_count(&recovered),
                base_count,
                "{context}: the crashed transaction leaked into recovery"
            );
            assert_fingerprints_match(&reference, &fingerprint(&recovered), &context);

            // The recovered writer is healthy: the retried insert commits.
            recovered
                .load_rows("lineitem", vec![row.clone()])
                .unwrap_or_else(|e| panic!("{context}: insert after recovery failed: {e}"));
            match (lineitem_count(&recovered), &base_count) {
                (Value::Int(after), Value::Int(before)) => assert_eq!(
                    after,
                    before + 1,
                    "{context}: insert after recovery did not land"
                ),
                other => panic!("{context}: unexpected COUNT(*) values: {other:?}"),
            }
        }
    }
}

/// Direct on-disk corruption of a *committed* tail transaction: a flipped
/// bit and mid-frame truncation must both be detected and drop exactly the
/// tail transaction — never anything before it, never garbage after it.
#[test]
fn physical_corruption_drops_only_the_tail_transaction() {
    let (config, data) = mth_data();
    let path = tmp("corruption-base");
    let engine_config = EngineConfig::postgres_like();

    let (before, committed_len, base_count) = {
        let deployment = loader::load_durable_from_data(*config, engine_config, data, &path)
            .expect("durable load");
        let before = fingerprint(&deployment.server);
        let committed_len = std::fs::metadata(&path).expect("WAL metadata").len();
        let count = lineitem_count(&deployment.server);
        let row = scoped_lineitem_row(&deployment.server);
        deployment
            .server
            .load_rows("lineitem", vec![row])
            .expect("committed tail insert");
        (before, committed_len, count)
    };

    // A bit flip inside the tail transaction's first frame: the checksum
    // catches it and recovery ends the trusted region before the frame.
    {
        let scratch = tmp("corruption-bitflip");
        std::fs::copy(&path, &scratch).expect("copy WAL");
        let mut bytes = std::fs::read(&scratch).expect("read WAL");
        let at = committed_len as usize + 9;
        assert!(at < bytes.len(), "flip offset must land in the tail frame");
        bytes[at] ^= 0x20;
        std::fs::write(&scratch, &bytes).expect("write corrupted WAL");

        let recovered = loader::reopen_durable(engine_config, &scratch).expect("recovery");
        assert_eq!(lineitem_count(&recovered), base_count);
        assert_fingerprints_match(&before, &fingerprint(&recovered), "bit flip");
    }

    // Truncation mid-frame (a torn tail at rest) and truncation to exactly
    // the committed prefix: both recover to the pre-insert state.
    for (label, extra) in [("mid-frame truncation", 7u64), ("clean truncation", 0u64)] {
        let scratch = tmp(&format!("corruption-truncate-{extra}"));
        std::fs::copy(&path, &scratch).expect("copy WAL");
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&scratch)
            .expect("open WAL");
        file.set_len(committed_len + extra).expect("truncate WAL");
        drop(file);

        let recovered = loader::reopen_durable(engine_config, &scratch).expect("recovery");
        assert_eq!(lineitem_count(&recovered), base_count, "{label}");
        assert_fingerprints_match(&before, &fingerprint(&recovered), label);
    }
}

// ---------------------------------------------------------------------
// PR 10: multi-statement transactions and group commit
// ---------------------------------------------------------------------

/// The multi-statement workload the PR 10 sweeps crash: two INSERT
/// statements staged under one BEGIN, committed together. All WAL frames
/// (one per staged record plus the commit marker) are appended at COMMIT,
/// so every injected crash fires inside the commit append.
fn txn_workload(server: &Arc<MtBase>) -> mtbase::Result<()> {
    let mut conn = server.connect(1);
    conn.execute("BEGIN")?;
    conn.execute(
        "INSERT INTO lineitem VALUES (999901, 1, 1, 1, 5, 100.0, 0.05, 0.02, 'N', 'O', \
         DATE '1995-01-01', DATE '1995-02-01', DATE '1995-03-01', \
         'DELIVER IN PERSON', 'TRUCK', 'pr10 txn row one')",
    )?;
    conn.execute(
        "INSERT INTO lineitem VALUES (999902, 1, 1, 1, 7, 200.0, 0.05, 0.02, 'N', 'O', \
         DATE '1995-01-01', DATE '1995-02-01', DATE '1995-03-01', \
         'DELIVER IN PERSON', 'TRUCK', 'pr10 txn row two')",
    )?;
    conn.execute("COMMIT")?;
    Ok(())
}

/// The PR 10 headline sweep: crash at every WAL frame of a multi-statement
/// transaction's commit append, under every fault mode. The failed COMMIT
/// must roll the in-memory application back *before* any restart (the undo
/// log), and recovery must land on the pre-transaction state — all 22
/// queries bit-identical, counters included.
#[test]
fn txn_crash_sweep_never_leaks_uncommitted_statements() {
    let (config, data) = mth_data();
    let base = tmp("txn-sweep-base");
    let engine_config = EngineConfig::postgres_like();

    let (reference, base_count) = {
        let deployment = loader::load_durable_from_data(*config, engine_config, data, &base)
            .expect("durable load");
        let reference = fingerprint(&deployment.server);
        let count = lineitem_count(&deployment.server);
        (reference, count)
    };

    // Enumerate the commit append's frames with an observer clock, and pin
    // the committed baseline: the uninterrupted workload lands both rows.
    let ops = {
        let scratch = tmp("txn-sweep-enumerate");
        std::fs::copy(&base, &scratch).expect("copy WAL");
        let server = loader::reopen_durable(engine_config, &scratch).expect("reopen");
        let clock = FailpointClock::observe();
        server.set_failpoint_clock(Arc::clone(&clock));
        txn_workload(&server).expect("observed transaction");
        match (lineitem_count(&server), &base_count) {
            (Value::Int(after), Value::Int(before)) => {
                assert_eq!(after, before + 2, "the committed workload lands both rows")
            }
            other => panic!("unexpected COUNT(*) values: {other:?}"),
        }
        clock.ops()
    };
    assert!(
        ops >= 3,
        "two staged INSERT records plus a commit marker, got {ops} frames"
    );

    let modes = match std::env::var("WAL_FAULT_MODE").as_deref() {
        Ok("torn-write") => vec![CrashMode::TornWrite],
        Ok("pre-fsync-loss") => vec![CrashMode::PreFsyncLoss],
        Ok("bit-flip") => vec![CrashMode::BitFlip],
        Ok(other) => panic!("unknown WAL_FAULT_MODE `{other}`"),
        Err(_) => vec![
            CrashMode::TornWrite,
            CrashMode::PreFsyncLoss,
            CrashMode::BitFlip,
        ],
    };
    for mode in modes {
        for crash_at in 1..=ops {
            let context = format!("txn {mode:?} at frame {crash_at}/{ops}");
            let scratch = tmp(&format!("txn-crash-{mode:?}-{crash_at}"));
            std::fs::copy(&base, &scratch).expect("copy WAL");

            {
                let server = loader::reopen_durable(engine_config, &scratch).expect("reopen");
                let clock = FailpointClock::crash_at(crash_at, mode);
                server.set_failpoint_clock(Arc::clone(&clock));
                let err =
                    txn_workload(&server).expect_err("the injected crash must fail the COMMIT");
                assert!(
                    matches!(err, MtError::Durability(_)),
                    "{context}: expected a durability error, got: {err}"
                );
                assert!(clock.fired(), "{context}: the crash point never fired");
                // The failed commit already rolled the in-memory application
                // back — no restart needed to get the committed state.
                assert_eq!(
                    lineitem_count(&server),
                    base_count,
                    "{context}: the failed COMMIT left staged rows applied in memory"
                );
                assert_eq!(
                    server.stats().txn_rollbacks,
                    1,
                    "{context}: the failed COMMIT must count as a rollback"
                );
            }

            // "Restart": recovery sees at most a torn uncommitted suffix.
            let recovered = loader::reopen_durable(engine_config, &scratch).expect("recovery");
            assert_eq!(
                lineitem_count(&recovered),
                base_count,
                "{context}: the crashed transaction leaked into recovery"
            );
            assert_fingerprints_match(&reference, &fingerprint(&recovered), &context);

            // The recovered writer is healthy: the retried transaction lands.
            txn_workload(&recovered)
                .unwrap_or_else(|e| panic!("{context}: transaction after recovery failed: {e}"));
            match (lineitem_count(&recovered), &base_count) {
                (Value::Int(after), Value::Int(before)) => assert_eq!(
                    after,
                    before + 2,
                    "{context}: transaction after recovery did not land"
                ),
                other => panic!("{context}: unexpected COUNT(*) values: {other:?}"),
            }
        }
    }
}

/// Explicit ROLLBACK: the transaction's rows are visible to its own reads
/// (live), invisible to other connections (committed snapshot floor), and
/// after ROLLBACK the deployment — memory *and* log — is bit-identical to
/// the pre-transaction state.
#[test]
fn explicit_rollback_restores_fingerprint_and_count() {
    let (config, data) = mth_data();
    let path = tmp("rollback");
    let engine_config = EngineConfig::postgres_like();
    let deployment =
        loader::load_durable_from_data(*config, engine_config, data, &path).expect("durable load");
    let server = &deployment.server;
    let reference = fingerprint(server);
    let base_count = lineitem_count(server);

    let count_sql = "SELECT COUNT(*) FROM lineitem WHERE l_orderkey >= 999901";
    let mut conn = server.connect(1);
    conn.execute("BEGIN").expect("BEGIN");
    conn.execute(
        "INSERT INTO lineitem VALUES (999901, 1, 1, 1, 5, 100.0, 0.05, 0.02, 'N', 'O', \
         DATE '1995-01-01', DATE '1995-02-01', DATE '1995-03-01', \
         'DELIVER IN PERSON', 'TRUCK', 'pr10 rollback row')",
    )
    .expect("staged INSERT");
    let own = conn.query(count_sql).expect("read-your-writes count");
    assert_eq!(
        own.rows,
        vec![vec![Value::Int(1)]],
        "the transaction must see its own staged row"
    );
    let other = server
        .connect(1)
        .query(count_sql)
        .expect("snapshot count from another connection");
    assert_eq!(
        other.rows,
        vec![vec![Value::Int(0)]],
        "another connection must not see the uncommitted row"
    );
    conn.execute("ROLLBACK").expect("ROLLBACK");
    assert!(!conn.in_transaction());

    assert_eq!(
        lineitem_count(server),
        base_count,
        "rollback restores the count"
    );
    assert_eq!(server.stats().txn_rollbacks, 1);
    assert_fingerprints_match(&reference, &fingerprint(server), "after ROLLBACK");

    // Nothing was logged: recovery agrees with the rollback.
    drop(conn);
    drop(deployment);
    let recovered = loader::reopen_durable(engine_config, &path).expect("reopen");
    assert_eq!(lineitem_count(&recovered), base_count);
    assert_fingerprints_match(
        &reference,
        &fingerprint(&recovered),
        "reopen after ROLLBACK",
    );
}

/// Group commit under concurrency: writers of *different* tenants take
/// different bucket locks and commit in parallel, sharing flushes — fewer
/// fsyncs than commits — and every commit is durable across a reopen.
#[test]
fn concurrent_writers_share_flushes_and_recover_durably() {
    let path = tmp("group-commit");
    let server = MtBase::open_durable(EngineConfig::default(), &path).expect("durable open");
    let ddl = "CREATE TABLE Items SPECIFIC (
        I_item_id INTEGER NOT NULL SPECIFIC,
        I_tag VARCHAR(32) NOT NULL COMPARABLE
    )";
    match mtsql::parse_statement(ddl).expect("DDL parses") {
        Statement::CreateTable(ct) => server.create_table(&ct).expect("create table"),
        _ => panic!("expected CREATE TABLE"),
    }
    const WRITERS: i64 = 4;
    const ROWS_PER_WRITER: i64 = 50;
    for t in 1..=WRITERS {
        server.register_tenant(t).expect("register tenant");
    }
    let before = server.stats();

    let threads: Vec<_> = (1..=WRITERS)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut conn = server.connect(t);
                for i in 0..ROWS_PER_WRITER {
                    conn.execute(&format!(
                        "INSERT INTO Items VALUES ({}, 'writer-{t}')",
                        t * 1000 + i
                    ))
                    .expect("concurrent insert");
                }
            })
        })
        .collect();
    for handle in threads {
        handle.join().expect("writer thread");
    }

    let stats = server.stats().delta_from(&before);
    assert_eq!(stats.txn_commits, (WRITERS * ROWS_PER_WRITER) as u64);
    assert!(stats.wal_fsyncs > 0, "commits must reach the disk");
    assert!(
        stats.wal_fsyncs < stats.wal_commits,
        "group commit must batch at least one flush: {} fsyncs for {} commits",
        stats.wal_fsyncs,
        stats.wal_commits
    );
    let count = server
        .raw_query("SELECT COUNT(*) FROM Items")
        .expect("count Items")
        .rows[0][0]
        .clone();
    assert_eq!(count, Value::Int(WRITERS * ROWS_PER_WRITER));

    drop(server);
    let recovered = MtBase::open_durable(EngineConfig::default(), &path).expect("recovery");
    let count = recovered
        .raw_query("SELECT COUNT(*) FROM Items")
        .expect("count Items after recovery")
        .rows[0][0]
        .clone();
    assert_eq!(
        count,
        Value::Int(WRITERS * ROWS_PER_WRITER),
        "every concurrent commit must survive recovery"
    );
}

/// Satellite: a write failure during the WAL append must leave the
/// in-memory state untouched (validate → log → apply). Exercised on both
/// writer paths: the auto-commit statement path and the staged transaction
/// path.
#[test]
fn failed_append_leaves_memory_unapplied() {
    // Auto-commit path: `insert_values` logs before it applies, so a failed
    // append changes neither the rows nor the epoch.
    {
        let path = tmp("append-fail-autocommit");
        let mut engine =
            mtengine::Engine::open(EngineConfig::default(), &path).expect("durable engine");
        engine.create_table("t", &["ttid", "v"]);
        engine.set_table_partition("t", "ttid").expect("partition");
        engine
            .insert_values("t", vec![vec![Value::Int(1), Value::Int(10)]])
            .expect("baseline insert");
        let rows_before = engine.query("SELECT * FROM t").expect("scan").rows;
        let epoch_before = engine.current_epoch();

        engine.set_failpoint_clock(FailpointClock::crash_at(1, CrashMode::TornWrite));
        engine
            .insert_values("t", vec![vec![Value::Int(1), Value::Int(11)]])
            .expect_err("the injected append failure must fail the insert");
        assert_eq!(
            engine.query("SELECT * FROM t").expect("scan").rows,
            rows_before,
            "a failed append must not leave the insert applied"
        );
        assert_eq!(
            engine.current_epoch(),
            epoch_before,
            "a failed append must not consume an epoch"
        );
    }

    // Transaction path: statements applied under uncommitted epochs are
    // undone when the commit append fails — the committed floor returns to
    // the live epoch and the rows are gone.
    {
        let path = tmp("append-fail-txn");
        let mut engine =
            mtengine::Engine::open(EngineConfig::default(), &path).expect("durable engine");
        engine.create_table("t", &["ttid", "v"]);
        engine.set_table_partition("t", "ttid").expect("partition");
        engine
            .insert_values("t", vec![vec![Value::Int(1), Value::Int(10)]])
            .expect("baseline insert");
        let rows_before = engine.query("SELECT * FROM t").expect("scan").rows;

        let mut txn = engine.begin_transaction();
        let stmt = mtsql::parse_statement("INSERT INTO t VALUES (2, 20)").expect("parse");
        engine
            .txn_execute_statement(&mut txn, &stmt)
            .expect("staged insert");
        engine.set_failpoint_clock(FailpointClock::crash_at(1, CrashMode::PreFsyncLoss));
        engine
            .txn_append(&mut txn)
            .expect_err("the injected append failure must fail the commit");
        engine.txn_rollback(txn);
        assert_eq!(
            engine.query("SELECT * FROM t").expect("scan").rows,
            rows_before,
            "a failed commit append must roll the staged statements back"
        );
        assert_eq!(
            engine.committed_epoch(),
            engine.current_epoch(),
            "the rolled-back transaction must release its epochs"
        );
    }
}

/// Satellite: a typo'd environment override fails loudly at startup (durable
/// open) instead of silently falling back to the default.
#[test]
fn malformed_env_override_is_a_startup_error() {
    // Env vars are process-global, so the probe uses MT_THREADS: its lazy
    // readers ignore malformed values, so a parallel test that races the
    // window below sees exactly the unset-variable behaviour. (The sweeps
    // *panic* on an unknown WAL_FAULT_MODE, so that variable is never set
    // here.)
    std::env::set_var("MT_THREADS", "four");
    let outcome = MtBase::open_durable(EngineConfig::default(), &tmp("env-check"));
    std::env::remove_var("MT_THREADS");
    let err = match outcome {
        Err(e) => e.to_string(),
        Ok(_) => panic!("a malformed MT_THREADS must fail the durable open"),
    };
    assert!(
        err.contains("MT_THREADS") && err.contains("four"),
        "the startup error must name the variable and the bad value: {err}"
    );
}

/// Satellite: replaying a log whose inserts demoted a dictionary column
/// mid-table must land the `dict_columns` gauge at its pre-crash value —
/// replay re-runs the demotion, it does not re-encode demoted columns.
#[test]
fn dict_gauge_survives_recovery_of_mid_table_demotion() {
    let path = tmp("demotion");
    let server = MtBase::open_durable(EngineConfig::default(), &path).expect("durable open");
    let ddl = "CREATE TABLE Items SPECIFIC (
        I_item_id INTEGER NOT NULL SPECIFIC,
        I_tag VARCHAR(32) NOT NULL COMPARABLE
    )";
    match mtsql::parse_statement(ddl).expect("DDL parses") {
        Statement::CreateTable(ct) => server.create_table(&ct).expect("create table"),
        _ => unreachable!(),
    }
    for t in 1..=2 {
        server.register_tenant(t).expect("register tenant");
    }
    server.grant_read_all(1).expect("grant read");
    let tags = ["alpha", "beta", "gamma", "delta"];
    let rows: Vec<Vec<Value>> = (0..80)
        .map(|i| {
            vec![
                Value::Int(i % 2 + 1),
                Value::Int(i),
                Value::str(tags[(i % 4) as usize]),
            ]
        })
        .collect();
    server.load_rows("Items", rows).expect("load Items");
    assert!(server.stats().dict_columns > 0, "tag column starts encoded");

    // Demote tenant 1's bucket mid-table; tenant 2's stays encoded.
    let overflow: Vec<Vec<Value>> = (0..mtengine::table::DICT_MAX_DISTINCT as i64 + 8)
        .map(|i| {
            vec![
                Value::Int(1),
                Value::Int(1000 + i),
                Value::str(format!("unique-{i:05}")),
            ]
        })
        .collect();
    server.load_rows("Items", overflow).expect("overflow load");
    let gauge_before = server.stats().dict_columns;
    assert_eq!(gauge_before, 1, "tenant 1 demotes, tenant 2 stays encoded");

    let queries = [
        "SELECT COUNT(*) FROM Items WHERE I_tag = 'alpha'",
        "SELECT COUNT(*) FROM Items WHERE I_tag LIKE 'unique-%'",
    ];
    let results_before: Vec<ResultSet> = {
        let mut conn = server.connect(1);
        conn.execute("SET SCOPE = \"IN (1, 2)\"").unwrap();
        queries.iter().map(|q| conn.query(q).unwrap()).collect()
    };
    drop(server);

    let recovered = MtBase::open_durable(EngineConfig::default(), &path).expect("recovery");
    assert_eq!(
        recovered.stats().dict_columns,
        gauge_before,
        "replay must re-run the mid-table demotion, not re-encode the column"
    );
    let results_after: Vec<ResultSet> = {
        let mut conn = recovered.connect(1);
        conn.execute("SET SCOPE = \"IN (1, 2)\"").unwrap();
        queries.iter().map(|q| conn.query(q).unwrap()).collect()
    };
    assert_eq!(results_before, results_after, "demotion results drifted");
}

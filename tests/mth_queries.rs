//! Integration tests spanning the whole stack: the 22 MT-H queries are
//! parsed, rewritten by MTBase at several optimization levels and executed on
//! the engine; results are validated against the single-tenant baseline.

use mtbase::EngineConfig;
use mth::params::MthConfig;
use mth::{loader, queries, validate};
use mtrewrite::OptLevel;

fn tiny_deployment() -> mth::MthDeployment {
    loader::load(
        MthConfig {
            scale: 0.08,
            tenants: 4,
            ..MthConfig::default()
        },
        EngineConfig::postgres_like(),
    )
}

#[test]
fn all_queries_execute_at_o1_and_o4() {
    let dep = tiny_deployment();
    for n in queries::all_query_numbers() {
        for level in [OptLevel::O1, OptLevel::O4] {
            let result = validate::run_mt_query(&dep, n, level);
            assert!(
                result.is_ok(),
                "Q{n} failed at {level:?}: {}",
                result.err().map(|e| e.to_string()).unwrap_or_default()
            );
        }
    }
}

#[test]
fn all_queries_execute_at_canonical_level() {
    let dep = tiny_deployment();
    for n in queries::all_query_numbers() {
        let result = validate::run_mt_query(&dep, n, OptLevel::Canonical);
        assert!(
            result.is_ok(),
            "Q{n} failed at canonical level: {}",
            result.err().map(|e| e.to_string()).unwrap_or_default()
        );
    }
}

#[test]
fn all_queries_execute_on_the_baseline() {
    let dep = tiny_deployment();
    for n in queries::all_query_numbers() {
        let result = validate::run_baseline_query(&dep, n);
        assert!(
            result.is_ok(),
            "baseline Q{n} failed: {}",
            result.err().map(|e| e.to_string()).unwrap_or_default()
        );
    }
}

#[test]
fn validation_queries_match_the_baseline_at_every_level() {
    let dep = tiny_deployment();
    for level in [
        OptLevel::Canonical,
        OptLevel::O1,
        OptLevel::O2,
        OptLevel::O3,
        OptLevel::O4,
    ] {
        for report in validate::validate(&dep, &validate::VALIDATABLE, level) {
            assert!(
                report.passed,
                "Q{} failed validation at {:?}: {}",
                report.query, report.level, report.detail
            );
        }
    }
}

#[test]
fn optimization_levels_agree_with_each_other() {
    let dep = tiny_deployment();
    // Beyond the baseline-comparable subset: every level must agree with the
    // canonical rewrite (the paper's gold standard) on all queries.
    for n in queries::all_query_numbers() {
        let reference = validate::run_mt_query(&dep, n, OptLevel::Canonical).unwrap();
        for level in [
            OptLevel::O1,
            OptLevel::O2,
            OptLevel::O3,
            OptLevel::O4,
            OptLevel::InlineOnly,
        ] {
            let other = validate::run_mt_query(&dep, n, level).unwrap();
            assert!(
                validate::compare_result_sets(&reference, &other).is_ok(),
                "Q{n}: {level:?} diverges from the canonical rewrite"
            );
        }
    }
}

//! Property-based tests (proptest) on the core invariants of the paper:
//! Definition 1 (valid conversion-function pairs), its corollaries, the
//! distributability matrix (Table 2) and the parser/printer round-trip.

use mtcatalog::{AggregateKind, ConversionClass};
use mth::params::MthConfig;
use proptest::prelude::*;

proptest! {
    /// Definition 1(iii) / Corollary 1: fromUniversal is the inverse of
    /// toUniversal for every tenant — the currency pair of MT-H satisfies it.
    #[test]
    fn currency_conversion_roundtrips(value in -1.0e9_f64..1.0e9, tenant in 1_i64..500) {
        let (to, from) = MthConfig::currency_rates(tenant);
        let roundtrip = value * to * from;
        prop_assert!((roundtrip - value).abs() <= value.abs() * 1e-9 + 1e-9);
    }

    /// Corollary 2: converting from tenant a's format into tenant b's format
    /// through the universal format preserves equality.
    #[test]
    fn cross_tenant_conversion_preserves_equality(
        value in -1.0e6_f64..1.0e6,
        a in 1_i64..200,
        b in 1_i64..200,
    ) {
        let (to_a, _) = MthConfig::currency_rates(a);
        let (_, from_b) = MthConfig::currency_rates(b);
        let (to_b, _) = MthConfig::currency_rates(b);
        let in_b = value * to_a * from_b;
        let back_universal = in_b * to_b;
        prop_assert!((back_universal - value * to_a).abs() <= value.abs() * 1e-9 + 1e-9);
    }

    /// The currency pair is order-preserving (required for MIN/MAX/ranges).
    #[test]
    fn currency_conversion_preserves_order(
        x in -1.0e6_f64..1.0e6,
        y in -1.0e6_f64..1.0e6,
        tenant in 1_i64..500,
    ) {
        prop_assume!(x < y);
        let (to, _) = MthConfig::currency_rates(tenant);
        prop_assert!(x * to < y * to);
    }

    /// Phone conversion is equality-preserving: stripping and re-adding a
    /// tenant prefix round-trips exactly.
    #[test]
    fn phone_conversion_roundtrips(digits in "[0-9]{6,12}", tenant in 1_i64..500) {
        let prefix = MthConfig::phone_prefix(tenant);
        let stored = format!("{prefix}{digits}");
        let universal = stored.strip_prefix(&prefix).unwrap_or(&stored).to_string();
        prop_assert_eq!(universal, digits);
    }

    /// Table 2 monotonicity: if a *less* structured conversion class lets an
    /// aggregate distribute, every more structured class does too.
    #[test]
    fn distributability_is_monotone_in_structure(agg_idx in 0_usize..5) {
        let aggs = [
            AggregateKind::Count,
            AggregateKind::Min,
            AggregateKind::Max,
            AggregateKind::Sum,
            AggregateKind::Avg,
        ];
        let agg = aggs[agg_idx];
        let ordered = [
            ConversionClass::ConstantFactor,
            ConversionClass::Linear,
            ConversionClass::OrderPreserving,
            ConversionClass::EqualityPreserving,
        ];
        for window in ordered.windows(2) {
            if window[1].distributes(agg) {
                prop_assert!(window[0].distributes(agg));
            }
        }
    }

    /// COUNT distributes over every conversion class, holistic aggregates over
    /// none (Table 2, first and last row).
    #[test]
    fn count_always_distributes_and_holistic_never(class_idx in 0_usize..4) {
        let classes = [
            ConversionClass::ConstantFactor,
            ConversionClass::Linear,
            ConversionClass::OrderPreserving,
            ConversionClass::EqualityPreserving,
        ];
        let class = classes[class_idx];
        prop_assert!(class.distributes(AggregateKind::Count));
        prop_assert!(!class.distributes(AggregateKind::Holistic));
    }

    /// Printing a generated expression and re-parsing it yields the same AST.
    #[test]
    fn expression_print_parse_roundtrip(
        a in 0_i64..1000,
        b in 0_i64..1000,
        col_suffix in "[a-z][a-z_]{0,8}",
        pick in 0_usize..4,
    ) {
        use mtsql::ast::{BinaryOperator, Expr};
        // Prefix the generated identifier so it can never collide with a SQL keyword.
        let col = format!("c_{col_suffix}");
        let ops = [
            BinaryOperator::Plus,
            BinaryOperator::Multiply,
            BinaryOperator::Lt,
            BinaryOperator::Eq,
        ];
        let expr = Expr::binary(
            Expr::binary(Expr::col(col.clone()), ops[pick], Expr::int(a)),
            BinaryOperator::And,
            Expr::binary(Expr::int(b), BinaryOperator::LtEq, Expr::col(col)),
        );
        let printed = expr.to_string();
        let reparsed = mtsql::parse_expression(&printed).unwrap();
        prop_assert_eq!(expr, reparsed);
    }

    /// Query print/parse round-trip on a small generated family of queries.
    #[test]
    fn query_print_parse_roundtrip(
        limit in 1_u64..50,
        threshold in 0_i64..100_000,
        desc in any::<bool>(),
    ) {
        let sql = format!(
            "SELECT a, SUM(b) AS total FROM t WHERE c > {threshold} GROUP BY a \
             HAVING COUNT(*) > 1 ORDER BY total{} LIMIT {limit}",
            if desc { " DESC" } else { "" }
        );
        let q1 = mtsql::parse_query(&sql).unwrap();
        let q2 = mtsql::parse_query(&q1.to_string()).unwrap();
        prop_assert_eq!(q1, q2);
    }

    /// Tenant shares always form a probability distribution.
    #[test]
    fn tenant_shares_sum_to_one(tenants in 1_i64..200, zipf in any::<bool>()) {
        let cfg = if zipf {
            MthConfig::scenario2(1.0, tenants)
        } else {
            MthConfig { tenants, ..MthConfig::scenario1(1.0) }
        };
        let total: f64 = (1..=tenants).map(|t| cfg.tenant_share(t)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
    }
}

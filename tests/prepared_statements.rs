//! Integration tests for the session API v2: prepare / bind / execute /
//! cursor, the server-side prepared-plan cache and its invalidation rules.
//!
//! The key acceptance properties pinned here:
//!
//! * re-executing a prepared statement with different parameters performs
//!   zero parse/rewrite/plan work — observable as `prepared_cache_hits`
//!   incrementing and `EXPLAIN` marking the plan `(cached)`;
//! * results are byte-identical to one-shot `execute` with the parameter
//!   values inlined as literals;
//! * cached plans are *invalidated* (never served stale) by DROP/CREATE
//!   TABLE, by GRANT/REVOKE that change the effective dataset D', and by
//!   `SET SCOPE`;
//! * draining a pipeline-able plan through a `Cursor` never materializes the
//!   full result set.

use mtbase::testkit::running_example_server;
use mtbase::{EngineConfig, MtBase, Value};
use std::sync::Arc;

fn example_server() -> Arc<MtBase> {
    let server = running_example_server(EngineConfig::default());
    server.grant_read_all(0).expect("grant read");
    server
}

#[test]
fn prepared_execution_matches_one_shot_with_inlined_literals() {
    let server = example_server();
    let mut conn = server.connect(0);
    conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();

    let mut stmt = conn
        .prepare("SELECT E_name, E_salary FROM Employees WHERE E_salary > ? ORDER BY E_name")
        .unwrap();
    assert_eq!(stmt.param_count(), 1);

    for threshold in [60_000.0, 117_000.0, 999_999.0] {
        let prepared = stmt.execute_with(&[Value::Float(threshold)]).unwrap();
        let one_shot = conn
            .query(&format!(
                "SELECT E_name, E_salary FROM Employees WHERE E_salary > {threshold} \
                 ORDER BY E_name"
            ))
            .unwrap();
        assert_eq!(prepared, one_shot, "threshold {threshold}");
    }
}

#[test]
fn dollar_n_parameters_bind_positionally() {
    let server = example_server();
    let mut conn = server.connect(0);
    conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
    let mut stmt = conn
        .prepare("SELECT E_name FROM Employees WHERE E_age BETWEEN $1 AND $2 ORDER BY E_name")
        .unwrap();
    assert_eq!(stmt.param_count(), 2);
    let rs = stmt
        .execute_with(&[Value::Int(40), Value::Int(50)])
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![vec![Value::str("Alice")], vec![Value::str("Ed")]]
    );
}

#[test]
fn bind_checks_arity() {
    let server = example_server();
    let conn = server.connect(0);
    let mut stmt = conn
        .prepare("SELECT E_name FROM Employees WHERE E_age > ?")
        .unwrap();
    assert!(stmt.bind(&[]).is_err());
    assert!(stmt.bind(&[Value::Int(1), Value::Int(2)]).is_err());
    assert!(stmt.execute().is_err(), "unbound execute must fail");
    assert!(stmt.bind(&[Value::Int(30)]).is_ok());
    assert!(stmt.execute().is_ok());
}

#[test]
fn re_execution_hits_the_plan_cache() {
    let server = example_server();
    let mut conn = server.connect(0);
    conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
    let mut stmt = conn
        .prepare("SELECT COUNT(*) FROM Employees WHERE E_age > ?")
        .unwrap();

    server.reset_stats();
    stmt.execute_with(&[Value::Int(30)]).unwrap();
    let stats = server.stats();
    assert_eq!(stats.prepared_cache_misses, 1, "first execution plans");
    assert_eq!(stats.prepared_cache_hits, 0);
    assert_eq!(stmt.last_query_stats().prepared_cache_misses, 1);

    // Re-execute with a *different* parameter: same key, zero front-end
    // work — only the hit counter moves.
    stmt.execute_with(&[Value::Int(45)]).unwrap();
    let stats = server.stats();
    assert_eq!(stats.prepared_cache_misses, 1);
    assert_eq!(stats.prepared_cache_hits, 1, "re-execution must hit");
    assert_eq!(stmt.last_query_stats().prepared_cache_hits, 1);

    stmt.execute_with(&[Value::Int(70)]).unwrap();
    assert_eq!(server.stats().prepared_cache_hits, 2);
    assert_eq!(server.plan_cache_len(), 1, "one plan serves all bindings");
}

#[test]
fn one_shot_queries_share_the_cache_and_explain_marks_reuse() {
    let server = example_server();
    let mut conn = server.connect(0);
    conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
    let sql = "SELECT E_name FROM Employees WHERE E_age > 40 ORDER BY E_name";

    // First EXPLAIN: the plan is not cached yet — no marker.
    let rs = conn.query(&format!("EXPLAIN {sql}")).unwrap();
    let first_line = rs.rows[0][0].as_str().unwrap().to_string();
    assert!(
        !first_line.contains("(cached)"),
        "fresh plan must not claim caching: {first_line}"
    );

    // Execute, then EXPLAIN again: same key → served from cache, marked.
    conn.query(sql).unwrap();
    let rs = conn.query(&format!("EXPLAIN {sql}")).unwrap();
    let marked_line = rs.rows[0][0].as_str().unwrap();
    assert!(
        marked_line.contains("(cached)"),
        "EXPLAIN of a cached plan must say so: {marked_line}"
    );
    assert_eq!(marked_line.trim_end_matches(" (cached)"), first_line);
}

#[test]
fn ddl_invalidates_cached_plans() {
    let server = MtBase::new(EngineConfig::default());
    let mut conn = server.connect(1);
    conn.execute(
        "CREATE TABLE items SPECIFIC (i_id INTEGER NOT NULL SPECIFIC, \
         i_v INTEGER NOT NULL COMPARABLE)",
    )
    .unwrap();
    conn.execute("INSERT INTO items (i_id, i_v) VALUES (1, 10), (2, 20)")
        .unwrap();

    let mut stmt = conn.prepare("SELECT COUNT(*) FROM items").unwrap();
    assert_eq!(stmt.execute().unwrap().scalar(), Some(&Value::Int(2)));

    // DROP + CREATE a fresh (empty) table: the cached plan must not survive.
    conn.execute("DROP TABLE items").unwrap();
    conn.execute(
        "CREATE TABLE items SPECIFIC (i_id INTEGER NOT NULL SPECIFIC, \
         i_v INTEGER NOT NULL COMPARABLE)",
    )
    .unwrap();
    server.reset_stats();
    assert_eq!(
        stmt.execute().unwrap().scalar(),
        Some(&Value::Int(0)),
        "stale plan served after DDL"
    );
    let stats = server.stats();
    assert_eq!(stats.prepared_cache_misses, 1, "DDL must force a replan");
    assert_eq!(stats.prepared_cache_hits, 0);
}

#[test]
fn grant_and_revoke_invalidate_cached_plans() {
    let server = example_server();
    let mut conn = server.connect(0);
    conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
    let mut stmt = conn.prepare("SELECT COUNT(*) FROM Employees").unwrap();
    // grant_read_all(0) gave client 0 access to tenant 1's share: 6 rows.
    assert_eq!(stmt.execute().unwrap().scalar(), Some(&Value::Int(6)));

    // Tenant 1 revokes: D' shrinks to {0}; the old plan (with its D-filter
    // over {0, 1}) must not be served.
    let mut owner = server.connect(1);
    owner.execute("REVOKE READ ON Employees FROM 0").unwrap();
    assert_eq!(
        stmt.execute().unwrap().scalar(),
        Some(&Value::Int(3)),
        "stale plan served after REVOKE"
    );

    // Granting again restores the wider dataset.
    let mut owner = server.connect(1);
    owner.execute("GRANT READ ON Employees TO 0").unwrap();
    assert_eq!(stmt.execute().unwrap().scalar(), Some(&Value::Int(6)));
}

#[test]
fn set_scope_invalidates_cached_plans() {
    let server = example_server();
    let mut conn = server.connect(0);
    conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
    let mut stmt = conn.prepare("SELECT COUNT(*) FROM Employees").unwrap();
    assert_eq!(stmt.execute().unwrap().scalar(), Some(&Value::Int(6)));

    // Narrow the scope on the *connection*: the prepared statement shares
    // the session, so its next execution resolves the new D' and replans.
    conn.execute("SET SCOPE = \"IN (0)\"").unwrap();
    assert_eq!(
        stmt.execute().unwrap().scalar(),
        Some(&Value::Int(3)),
        "stale plan served after SET SCOPE"
    );

    // And back: the earlier plan is still in the cache (epoch unchanged),
    // so widening the scope again is a pure cache hit.
    conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
    server.reset_stats();
    assert_eq!(stmt.execute().unwrap().scalar(), Some(&Value::Int(6)));
    assert_eq!(server.stats().prepared_cache_hits, 1);
}

#[test]
fn cursor_streams_without_materializing_pipeline_results() {
    let server = MtBase::new(EngineConfig::default());
    let mut conn = server.connect(1);
    conn.execute(
        "CREATE TABLE big SPECIFIC (b_id INTEGER NOT NULL SPECIFIC, \
         b_v INTEGER NOT NULL COMPARABLE)",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..5000)
        .map(|i| vec![Value::Int(1), Value::Int(i), Value::Int(i % 100)])
        .collect();
    server.load_rows("big", rows).unwrap();

    let mut stmt = conn
        .prepare("SELECT b_id, b_v FROM big WHERE b_v < ?")
        .unwrap();
    stmt.bind(&[Value::Int(90)]).unwrap();
    let materialized = stmt.execute().unwrap();
    assert_eq!(materialized.rows.len(), 4500);

    let mut cursor = stmt.cursor_with_batch(64).unwrap();
    assert_eq!(cursor.columns(), materialized.columns.as_slice());
    let mut streamed: Vec<Vec<Value>> = Vec::new();
    while let Some(batch) = cursor.next_batch().unwrap() {
        assert!(batch.len() <= 64);
        streamed.extend(batch);
    }
    assert_eq!(streamed, materialized.rows, "cursor must match execute");
    assert!(cursor.is_streaming());
    assert!(
        cursor.peak_resident_rows() <= 64,
        "streaming cursor materialized {} rows at once",
        cursor.peak_resident_rows()
    );
    assert_eq!(cursor.rows_fetched(), 4500);
}

#[test]
fn cursor_over_blocking_plans_exposes_the_same_pull_interface() {
    let server = example_server();
    let mut conn = server.connect(0);
    conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
    let mut stmt = conn
        .prepare("SELECT E_name FROM Employees ORDER BY E_salary DESC")
        .unwrap();
    let expected = stmt.execute().unwrap();

    let mut cursor = stmt.cursor_with_batch(2).unwrap();
    let mut rows = Vec::new();
    while let Some(row) = cursor.next_row().unwrap() {
        rows.push(row);
    }
    assert_eq!(rows, expected.rows);
    assert!(!cursor.is_streaming(), "ORDER BY blocks");
}

#[test]
fn bound_ttid_parameters_prune_partitions_at_bind_time() {
    let server = MtBase::new(EngineConfig::default());
    let mut conn = server.connect(1);
    conn.execute("CREATE TABLE ev SPECIFIC (e_v INTEGER NOT NULL COMPARABLE)")
        .unwrap();
    // Load rows for four tenants directly (bypassing privileges).
    let rows: Vec<Vec<Value>> = (0..400)
        .map(|i| vec![Value::Int(i % 4 + 1), Value::Int(i)])
        .collect();
    server.load_rows("ev", rows).unwrap();
    for t in 1..=4 {
        server.register_tenant(t).expect("register tenant");
        let mut owner = server.connect(t);
        owner.execute("GRANT READ ON ev TO 1").unwrap();
    }
    conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();

    // The rewrite adds `ttid IN (1,2,3,4)`; the *user* restriction on a
    // single tenant arrives as a bound parameter. Static pruning keeps the
    // scope set; bind-time pruning must intersect it down to one bucket.
    let mut stmt = conn
        .prepare("SELECT COUNT(*) FROM ev WHERE ttid = ?")
        .unwrap();
    server.reset_stats();
    let rs = stmt.execute_with(&[Value::Int(3)]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(100)));
    let stats = stmt.last_query_stats();
    assert_eq!(
        stats.rows_scanned, 100,
        "bind-time pruning must scan one bucket, stats: {stats:?}"
    );
    assert_eq!(stats.partitions_scanned, 1);
    assert_eq!(stats.partitions_pruned, 3);

    // Rebinding moves the pruning to the other bucket without replanning.
    let rs = stmt.execute_with(&[Value::Int(1)]).unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(100)));
    let stats = stmt.last_query_stats();
    assert_eq!(stats.partitions_pruned, 3);
    assert_eq!(stats.prepared_cache_hits, 1, "rebind must not replan");
}

#[test]
fn lru_evicts_under_pressure_but_keeps_serving() {
    let server = example_server();
    let mut conn = server.connect(0);
    // Flood the cache with distinct one-shot statements.
    for i in 0..200 {
        conn.query(&format!("SELECT COUNT(*) FROM Employees WHERE E_age > {i}"))
            .unwrap();
    }
    assert!(server.plan_cache_len() <= 128, "LRU capacity exceeded");
    // Still fully functional afterwards.
    let rs = conn.query("SELECT COUNT(*) FROM Employees").unwrap();
    assert_eq!(rs.scalar(), Some(&Value::Int(3)));
}

#[test]
fn prepare_rejects_non_select_statements() {
    let server = example_server();
    let conn = server.connect(0);
    assert!(conn.prepare("DROP TABLE Employees").is_err());
    assert!(conn
        .prepare("INSERT INTO Regions (Re_reg_id, Re_name) VALUES (9, 'X')")
        .is_err());
}

#[test]
fn rewritten_sql_is_observable_on_prepared_statements() {
    let server = example_server();
    let mut conn = server.connect(0);
    conn.execute("SET SCOPE = \"IN (0, 1)\"").unwrap();
    let mut stmt = conn
        .prepare("SELECT AVG(E_salary) FROM Employees WHERE E_age > $1")
        .unwrap();
    let rewritten = stmt.rewritten().unwrap().to_string();
    assert!(
        rewritten.contains("$1"),
        "parameter must survive the rewrite: {rewritten}"
    );
    assert!(
        rewritten.contains("ttid"),
        "rewrite must add D-filters: {rewritten}"
    );
}

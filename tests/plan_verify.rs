//! Mutation tests for the static plan verifier (PR 9), through the public
//! API: deliberately corrupt physical plans — one per defect class the
//! verifier guards against — and assert each is *rejected before execution*
//! with the right [`PlanErrorClass`], while the uncorrupted plan both
//! verifies and executes. A verifier that accepts corrupt plans would let a
//! planner regression ship wrong results; one that rejects clean plans would
//! brick every query — both directions are pinned here.

use std::collections::BTreeSet;

use mtengine::plan::{JoinVariant, Plan, SeqScan, SortKey};
use mtengine::schema::Schema;
use mtengine::verify::{self, VerifyOptions};
use mtengine::{Engine, EngineConfig, PlanErrorClass, Value};

/// A small partitioned two-table engine: `t(ttid, a, s)` partitioned by
/// `ttid` with an Int `a` and a Str `s`, and an unpartitioned `u(k, v)`.
fn engine() -> Engine {
    let mut e = Engine::new(EngineConfig::default().with_verify_plans());
    e.create_table("t", &["ttid", "a", "s"]);
    e.set_table_partition("t", "ttid").expect("partition t");
    e.insert_values(
        "t",
        vec![
            vec![Value::Int(1), Value::Int(10), Value::str("x")],
            vec![Value::Int(2), Value::Int(20), Value::str("y")],
        ],
    )
    .expect("load t");
    e.create_table("u", &["k", "v"]);
    e.insert_values("u", vec![vec![Value::Int(1), Value::str("z")]])
        .expect("load u");
    e
}

fn plan_of(engine: &Engine, sql: &str) -> Plan {
    engine
        .plan_query(&mtsql::parse_query(sql).expect("query parses"))
        .expect("query plans")
}

fn expr(sql: &str) -> mtsql::Expr {
    mtsql::parse_expression(sql).expect("expression parses")
}

/// Apply `f` to the first scan in the plan.
fn mutate_scan(plan: &mut Plan, f: impl FnOnce(&mut SeqScan)) {
    fn find(plan: &mut Plan) -> Option<&mut SeqScan> {
        match plan {
            Plan::SeqScan(s) => Some(s),
            Plan::Filter { input, .. }
            | Plan::Subquery { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => find(input),
            Plan::Project(p) => find(&mut p.input),
            Plan::HashAggregate(a) => find(&mut a.input),
            Plan::HashJoin { left, right, .. } | Plan::NestedLoopJoin { left, right, .. } => {
                find(left).or_else(|| find(right))
            }
            Plan::Empty { .. } => None,
        }
    }
    f(find(plan).expect("plan contains a scan"))
}

/// The class of the rejection, both from the direct verifier entry point and
/// from the execution path (which must refuse to run the corrupt plan).
fn rejection(engine: &Engine, plan: &Plan) -> PlanErrorClass {
    let direct = verify::verify_plan(engine, plan).expect_err("verifier must reject");
    let executed = engine
        .execute_plan(plan, &[])
        .expect_err("execution must refuse a corrupt plan");
    assert_eq!(
        executed.kind(),
        mtengine::EngineErrorKind::Plan,
        "execution-path rejection must carry the Plan error kind: {executed}"
    );
    direct.class
}

#[test]
fn defect_bad_column_reference_in_pushed_conjunct() {
    let e = engine();
    let mut plan = plan_of(&e, "SELECT a FROM t WHERE a > 5");
    mutate_scan(&mut plan, |scan| {
        scan.residual = vec![expr("no_such_column > 5")];
    });
    assert_eq!(rejection(&e, &plan), PlanErrorClass::Column);
}

#[test]
fn defect_scan_schema_arity_mismatch() {
    let e = engine();
    let mut plan = plan_of(&e, "SELECT a FROM t");
    mutate_scan(&mut plan, |scan| {
        scan.schema = Schema::qualified("t", &["ttid".into(), "a".into()]);
    });
    assert_eq!(rejection(&e, &plan), PlanErrorClass::Schema);
}

#[test]
fn defect_mismatched_join_key_types() {
    let e = engine();
    let probe = plan_of(&e, "SELECT a FROM t");
    let build = plan_of(&e, "SELECT v FROM u");
    // Int probe key against Str build key: such a decorrelated semi join
    // can never match a row — a rewrite defect, rejected statically.
    let plan = Plan::HashJoin {
        left: Box::new(probe.clone()),
        right: Box::new(build),
        keys: vec![(expr("a"), expr("v"))],
        residual: vec![],
        kind: JoinVariant::Semi,
        schema: probe.schema().clone(),
    };
    assert_eq!(rejection(&e, &plan), PlanErrorClass::JoinKey);
}

#[test]
fn defect_wrong_semi_join_schema() {
    let e = engine();
    let probe = plan_of(&e, "SELECT a FROM t");
    let build = plan_of(&e, "SELECT k FROM u");
    // Semi joins emit the probe schema unchanged; the concatenated schema
    // is the plain-join shape and must be rejected.
    let plan = Plan::HashJoin {
        left: Box::new(probe.clone()),
        right: Box::new(build.clone()),
        keys: vec![(expr("a"), expr("k"))],
        residual: vec![],
        kind: JoinVariant::Semi,
        schema: probe.schema().concat(build.schema()),
    };
    assert_eq!(rejection(&e, &plan), PlanErrorClass::Variant);
}

#[test]
fn defect_out_of_range_param_index() {
    let e = engine();
    let plan = e
        .plan_query(&mtsql::parse_query("SELECT a FROM t WHERE a = $2").expect("parses"))
        .expect("plans with its own parameter count");
    // Executing with a single bound parameter leaves $2 dangling.
    let err = e
        .execute_plan(&plan, &[Value::Int(10)])
        .expect_err("under-bound execution must be rejected");
    assert_eq!(err.kind(), mtengine::EngineErrorKind::Plan);
    assert!(err.message.contains("$2"), "names the parameter: {err}");
    // Binding both parameters satisfies the verifier.
    e.execute_plan(&plan, &[Value::Int(10), Value::Int(20)])
        .expect("fully bound execution verifies and runs");
}

#[test]
fn defect_missing_snapshot_watermark() {
    let mut e = engine();
    let plan = plan_of(&e, "SELECT a FROM t");
    // A destructive rewrite bumps the rewrite epoch past the old pin: a
    // scan pinned before it has no addressable watermark.
    e.execute("UPDATE t SET a = 11 WHERE ttid = 1")
        .expect("update");
    let stale = VerifyOptions {
        pinned_epoch: Some(0),
        ..Default::default()
    };
    let err = verify::verify_plan_with(&e, &plan, stale).expect_err("stale pin must be rejected");
    assert_eq!(err.class, PlanErrorClass::Snapshot);
    // A pin at the current epoch verifies.
    let fresh = VerifyOptions {
        pinned_epoch: Some(e.current_epoch()),
        ..Default::default()
    };
    verify::verify_plan_with(&e, &plan, fresh).expect("fresh pin verifies");
}

#[test]
fn defect_pruning_keys_without_partitioned_table() {
    let e = engine();
    let mut plan = plan_of(&e, "SELECT v FROM u");
    mutate_scan(&mut plan, |scan| {
        scan.prune_keys = Some(BTreeSet::from([1i64]));
    });
    assert_eq!(rejection(&e, &plan), PlanErrorClass::Pruning);
}

#[test]
fn defect_sort_key_out_of_bounds() {
    let e = engine();
    let mut plan = plan_of(&e, "SELECT a FROM t ORDER BY a");
    match &mut plan {
        Plan::Sort { keys, .. } => keys[0] = SortKey { col: 99, asc: true },
        other => panic!("expected a Sort head, got {other:?}"),
    }
    assert_eq!(rejection(&e, &plan), PlanErrorClass::Bounds);
}

#[test]
fn clean_plans_execute_under_forced_verification() {
    let e = engine();
    for sql in [
        "SELECT a FROM t WHERE ttid = 1 ORDER BY a",
        "SELECT t.a, u.v FROM t, u WHERE t.a = u.k",
        "SELECT ttid, SUM(a) FROM t GROUP BY ttid ORDER BY SUM(a) DESC",
        "SELECT DISTINCT s FROM t WHERE s LIKE 'x%'",
    ] {
        let plan = plan_of(&e, sql);
        verify::verify_plan(&e, &plan).unwrap_or_else(|err| panic!("{sql}: {err}"));
        e.execute_plan(&plan, &[])
            .unwrap_or_else(|err| panic!("{sql}: {err}"));
    }
    assert!(
        e.stats().plans_verified > 0,
        "forced verification must engage: {:?}",
        e.stats()
    );
}

/// The middleware surfaces verifier rejections as their own `MtError::Plan`
/// variant, so clients can distinguish planner defects from data errors.
#[test]
fn rejection_surfaces_as_mtbase_plan_error() {
    let e = engine();
    let mut plan = plan_of(&e, "SELECT a FROM t");
    mutate_scan(&mut plan, |scan| {
        scan.residual = vec![expr("ghost = 1")];
    });
    let engine_err = e.execute_plan(&plan, &[]).expect_err("rejected");
    let mt: mtbase::MtError = engine_err.into();
    match &mt {
        mtbase::MtError::Plan(msg) => {
            assert!(msg.contains("ghost"), "names the offending column: {msg}")
        }
        other => panic!("expected MtError::Plan, got {other:?}"),
    }
    assert!(mt.to_string().contains("plan verification error"));
}

/// EXPLAIN always reports the verifier's verdict, independent of the
/// configured mode — the marker is what the golden plan snapshots pin.
#[test]
fn explain_carries_the_verified_marker() {
    let e = engine();
    let rs = e
        .explain_query(&mtsql::parse_query("SELECT a FROM t WHERE ttid = 1").expect("parses"))
        .expect("explain");
    let last = rs.rows.last().expect("explain output is non-empty");
    let text = format!("{:?}", last);
    assert!(
        text.contains("verified ("),
        "EXPLAIN must end with the verified marker: {text}"
    );
}

//! Plan snapshot tests: golden `EXPLAIN` output for Q1, Q6 and Q22 at o2 and
//! o4 under a scoped deployment (D = {1, 2} of 4 tenants), asserting that the
//! derived-table pushdown lands the tenant-pruning conjuncts on the base
//! scans, plus engine-level checks that conjuncts transpose through derived
//! table projections where the AST interpreter used to filter only after
//! materialization.
//!
//! Regenerate the golden files with:
//! `UPDATE_GOLDEN=1 cargo test --test plan_explain`

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, queries, MthDeployment};
use mtrewrite::OptLevel;

fn deployment() -> MthDeployment {
    loader::load(
        MthConfig {
            scale: 0.05,
            tenants: 4,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        },
        EngineConfig::postgres_like().with_parallel_scan(4),
    )
}

/// The same deployment with the columnar bucket layout disabled (the row
/// storage baseline).
fn row_deployment() -> MthDeployment {
    loader::load(
        MthConfig {
            scale: 0.05,
            tenants: 4,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        },
        EngineConfig::postgres_like()
            .with_parallel_scan(4)
            .without_columnar_scan(),
    )
}

/// The same deployment with dictionary encoding disabled (columnar buckets
/// keep plain `Arc<str>` arrays — the code-space kernel baseline).
fn nodict_deployment() -> MthDeployment {
    loader::load(
        MthConfig {
            scale: 0.05,
            tenants: 4,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        },
        EngineConfig::postgres_like()
            .with_parallel_scan(4)
            .without_dictionary_encoding(),
    )
}

/// The same deployment with parallel scans left at the serial default — the
/// baseline the morsel annotations are pinned against.
fn serial_deployment() -> MthDeployment {
    loader::load(
        MthConfig {
            scale: 0.05,
            tenants: 4,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        },
        EngineConfig::postgres_like(),
    )
}

/// The same deployment with sub-query decorrelation disabled — correlated
/// EXISTS / scalar sub-queries stay interpreted per outer row, the baseline
/// the semi-/anti-join plans are pinned against.
fn nodecorr_deployment() -> MthDeployment {
    loader::load(
        MthConfig {
            scale: 0.05,
            tenants: 4,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        },
        EngineConfig::postgres_like()
            .with_parallel_scan(4)
            .without_decorrelation(),
    )
}

fn explain(dep: &MthDeployment, query: usize, level: OptLevel) -> String {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(level);
    conn.execute("SET SCOPE = \"IN (1, 2)\"").expect("scope");
    let rs = conn
        .query(&format!("EXPLAIN {}", queries::query(query)))
        .unwrap_or_else(|e| panic!("EXPLAIN Q{query} at {level:?}: {e}"));
    assert_eq!(rs.columns, vec!["QUERY PLAN".to_string()]);
    let mut text = String::new();
    for row in &rs.rows {
        text.push_str(row[0].as_str().expect("plan lines are strings"));
        text.push('\n');
    }
    text
}

fn golden_path(name: &str) -> String {
    format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(format!("{}/tests/golden", env!("CARGO_MANIFEST_DIR"))).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "EXPLAIN output drifted from {name}; run with UPDATE_GOLDEN=1 to regenerate"
    );
}

#[test]
fn golden_explain_snapshots() {
    let dep = deployment();
    for query in [1usize, 6, 22] {
        for (level, label) in [(OptLevel::O2, "o2"), (OptLevel::O4, "o4")] {
            let text = explain(&dep, query, level);
            check_golden(&format!("explain_q{query}_{label}.txt"), &text);
        }
    }
}

/// Scans over columnar buckets are marked `vectorized` in EXPLAIN; the same
/// query on the row-layout baseline must not be. The row-baseline plan is
/// pinned as its own golden snapshot.
#[test]
fn explain_marks_columnar_scans_vectorized() {
    let dep = deployment();
    let text = explain(&dep, 6, OptLevel::O2);
    assert!(
        text.contains("SeqScan lineitem") && text.contains("vectorized"),
        "columnar lineitem scan not marked vectorized:\n{text}"
    );

    let row_dep = row_deployment();
    let row_text = explain(&row_dep, 6, OptLevel::O2);
    assert!(
        !row_text.contains("vectorized"),
        "row-layout scan must not claim vectorized execution:\n{row_text}"
    );
    check_golden("explain_q6_o2_row.txt", &row_text);
}

/// Scans over buckets holding dictionary-encoded columns carry the `dict`
/// marker; a deployment without dictionary encoding (still columnar, still
/// vectorized) must not. The no-dict plan is pinned as its own golden
/// snapshot, the counterpart of `explain_q6_o2_row.txt`.
#[test]
fn explain_marks_dictionary_scans() {
    let dep = deployment();
    let text = explain(&dep, 6, OptLevel::O2);
    assert!(
        text.contains("SeqScan lineitem") && text.contains("dict"),
        "dictionary-encoded lineitem scan not marked dict:\n{text}"
    );

    let nodict_dep = nodict_deployment();
    let nodict_text = explain(&nodict_dep, 6, OptLevel::O2);
    assert!(
        nodict_text.contains("vectorized") && !nodict_text.contains("dict"),
        "no-dict scan must stay vectorized but unmarked:\n{nodict_text}"
    );
    check_golden("explain_q6_o2_nodict.txt", &nodict_text);
}

/// On a serial deployment EXPLAIN carries no morsel annotation at all — the
/// notes describe the pool, and there is none to describe. The serial plan
/// is pinned as its own golden snapshot (the scheduler-off counterpart of
/// `explain_q6_o2.txt`).
#[test]
fn explain_omits_morsel_notes_on_serial_deployments() {
    let dep = deployment();
    let text = explain(&dep, 6, OptLevel::O2);
    assert!(
        text.contains("morsel:"),
        "pooled deployment lost its morsel annotation:\n{text}"
    );

    let serial_dep = serial_deployment();
    let serial_text = explain(&serial_dep, 6, OptLevel::O2);
    assert!(
        !serial_text.contains("morsel"),
        "serial plan must not mention the morsel scheduler:\n{serial_text}"
    );
    check_golden("explain_q6_o2_serial.txt", &serial_text);
}

/// Q22's correlated `NOT EXISTS` now plans as an anti join with a build-key
/// bloom annotation; on the no-decorrelation baseline the sub-query stays in
/// the filter, interpreted per outer row. The baseline plan is pinned as its
/// own golden snapshot (the rewrite-off counterpart of `explain_q22_o2.txt`).
#[test]
fn explain_shows_decorrelated_joins() {
    let dep = deployment();
    let text = explain(&dep, 22, OptLevel::O2);
    assert!(
        text.contains("HashJoin anti") && text.contains("[bloom:"),
        "Q22 lost its decorrelated anti join:\n{text}"
    );
    assert!(
        !text.contains("NOT EXISTS"),
        "Q22's EXISTS sub-query survived decorrelation:\n{text}"
    );

    let nodecorr_dep = nodecorr_deployment();
    let nodecorr_text = explain(&nodecorr_dep, 22, OptLevel::O2);
    assert!(
        nodecorr_text.contains("NOT EXISTS") && !nodecorr_text.contains("HashJoin anti"),
        "baseline plan must keep the interpreted sub-query:\n{nodecorr_text}"
    );
    check_golden("explain_q22_o2_nodecorr.txt", &nodecorr_text);
}

/// At o4 every conversion-heavy query wraps its scans in the `mt_partials`
/// derived table; the D-filter must still reach the base scan inside and
/// prune the two foreign tenants.
#[test]
fn o4_derived_tables_keep_scan_pruning() {
    let dep = deployment();
    for query in [1usize, 6] {
        let text = explain(&dep, query, OptLevel::O4);
        assert!(
            text.contains("Subquery AS mt_partials"),
            "Q{query} o4 lost its partials sub-query:\n{text}"
        );
        let after_subquery = text
            .split("Subquery AS mt_partials")
            .nth(1)
            .expect("sub-query section");
        assert!(
            after_subquery.contains("2/4 partitions (2 pruned)"),
            "Q{query} o4 scan below the derived table is not pruned:\n{text}"
        );
    }
}

/// Engine-level demonstration of the new derived-table pushdown: an outer
/// `ttid` conjunct over a derived table's projection now prunes the base
/// scan inside the sub-query. The AST interpreter materialized the whole
/// derived table first (partitions_pruned was 0 here before this layer).
#[test]
fn outer_conjunct_prunes_inside_derived_table() {
    let dep = deployment();
    dep.server.reset_stats();
    let full = dep
        .server
        .raw_query("SELECT COUNT(*) FROM lineitem")
        .unwrap();
    let total_rows = dep.server.stats().rows_scanned;

    dep.server.reset_stats();
    let rs = dep
        .server
        .raw_query(
            "SELECT SUM(x.l_quantity) FROM \
             (SELECT ttid, l_quantity FROM lineitem) AS x WHERE x.ttid = 1",
        )
        .unwrap();
    let stats = dep.server.stats();
    assert!(rs.scalar().is_some());
    assert!(full.scalar().is_some());
    assert_eq!(
        stats.partitions_pruned, 3,
        "expected the outer ttid filter to prune the 3 foreign buckets, stats: {stats:?}"
    );
    assert!(
        stats.rows_scanned * 2 < total_rows,
        "pruned derived-table scan visited {} of {} rows",
        stats.rows_scanned,
        total_rows
    );
}

/// The same pushdown stops at aggregate outputs: filtering on an aggregated
/// column must not reach below the grouping.
#[test]
fn aggregate_output_filters_stay_above_derived_tables() {
    let dep = deployment();
    dep.server.reset_stats();
    dep.server
        .raw_query(
            "SELECT g.total FROM \
             (SELECT ttid, SUM(l_quantity) AS total FROM lineitem GROUP BY ttid) AS g \
             WHERE g.total > 0",
        )
        .unwrap();
    assert_eq!(
        dep.server.stats().partitions_pruned,
        0,
        "a filter on an aggregate output must not prune the inner scan"
    );
}

/// `EXPLAIN` parses, prints and round-trips through mtsql like any other
/// statement.
#[test]
fn explain_statement_roundtrip() {
    let stmt = mtsql::parse_statement("EXPLAIN SELECT a FROM t WHERE b > 1").unwrap();
    assert!(matches!(stmt, mtsql::ast::Statement::Explain(_)));
    let printed = stmt.to_string();
    assert!(printed.starts_with("EXPLAIN SELECT"));
    let reparsed = mtsql::parse_statement(&printed).unwrap();
    assert_eq!(stmt, reparsed);
}

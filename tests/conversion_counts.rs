//! Analytic checks of §4 of the paper: the optimization passes reduce the
//! *number of conversion-function calls* in the predicted way, independent of
//! wall-clock noise.
//!
//! The engine is configured like "System C" (no UDF-result caching) so that
//! every logical conversion shows up as one counted call.

use mtbase::EngineConfig;
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, validate};
use mtrewrite::OptLevel;

fn deployment() -> mth::MthDeployment {
    loader::load(
        MthConfig {
            scale: 0.05,
            tenants: 5,
            distribution: TenantDistribution::Uniform,
            seed: 1,
        },
        EngineConfig::system_c_like(),
    )
}

fn conversion_calls(dep: &mth::MthDeployment, sql: &str, level: OptLevel) -> u64 {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(level);
    conn.execute("SET SCOPE = \"IN ()\"").unwrap();
    dep.server.reset_stats();
    conn.query(sql).unwrap();
    dep.server.stats().udf_calls
}

#[test]
fn canonical_rewrite_calls_conversions_twice_per_value() {
    let dep = deployment();
    let rows = dep
        .server
        .raw_query("SELECT COUNT(*) FROM lineitem")
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap() as u64;
    let calls = conversion_calls(
        &dep,
        "SELECT SUM(l_extendedprice) AS s FROM lineitem",
        OptLevel::Canonical,
    );
    // fromUniversal(toUniversal(x, ttid), C) — two calls per processed row.
    assert_eq!(calls, 2 * rows);
}

#[test]
fn aggregation_distribution_needs_tenants_plus_one_calls() {
    let dep = deployment();
    let tenants = dep.config.tenants as u64;
    let calls = conversion_calls(
        &dep,
        "SELECT SUM(l_extendedprice) AS s FROM lineitem",
        OptLevel::O3,
    );
    // One toUniversal per tenant-partial plus one final fromUniversal (§4.2.2).
    assert_eq!(calls, tenants + 1);
}

#[test]
fn inlining_eliminates_all_udf_calls() {
    let dep = deployment();
    for level in [OptLevel::O4, OptLevel::InlineOnly] {
        let calls = conversion_calls(
            &dep,
            "SELECT SUM(l_extendedprice) AS s FROM lineitem WHERE l_extendedprice > 1000",
            level,
        );
        assert_eq!(calls, 0, "{level:?} should not call any conversion UDF");
    }
}

#[test]
fn conversion_pushup_converts_constants_per_tenant_not_per_row() {
    // The push-up benefit relies on the DBMS caching deterministic UDF results
    // (the paper observes that System C, which cannot cache, does not profit
    // from converting the constant) — so this check runs on the
    // PostgreSQL-like engine and counts *executed* (non-cached) calls.
    let dep = loader::load(
        MthConfig {
            scale: 0.05,
            tenants: 5,
            distribution: TenantDistribution::Uniform,
            seed: 1,
        },
        EngineConfig::postgres_like(),
    );
    let sql = "SELECT COUNT(*) AS c FROM lineitem WHERE l_extendedprice > 20000";
    let canonical = conversion_calls(&dep, sql, OptLevel::Canonical);
    let o2 = conversion_calls(&dep, sql, OptLevel::O2);
    // Canonical converts the attribute (distinct value per row → hardly any
    // cache hits); push-up converts the constant, which only needs one
    // toUniversal call plus one fromUniversal call per tenant.
    assert!(
        o2 <= (dep.config.tenants as u64) + 1,
        "push-up should need at most T+1 executed conversions, got {o2}"
    );
    assert!(
        o2 * 10 < canonical,
        "push-up should reduce executed conversion calls by an order of magnitude ({o2} vs {canonical})"
    );
}

#[test]
fn all_levels_return_the_same_answer_while_saving_calls() {
    let dep = deployment();
    let reference = validate::run_mt_query(&dep, 6, OptLevel::Canonical).unwrap();
    for level in [OptLevel::O2, OptLevel::O3, OptLevel::O4] {
        let other = validate::run_mt_query(&dep, 6, level).unwrap();
        assert!(validate::compare_result_sets(&reference, &other).is_ok());
    }
}

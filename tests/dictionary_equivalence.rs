//! Differential MT-H sweep pinning the dictionary-encoding tentpole: all 22
//! MT-H queries run across the {dict, no-dict} × {columnar, row} ×
//! {parallel, serial} configuration cross on the *same* generated data, and
//! every cell must return identical row-sets with identical `rows_scanned`
//! and `partitions_pruned` counters. Dictionary encoding is a physical
//! storage decision — any observable difference is an executor bug.
//!
//! Also pinned here: the code-space kernels actually engage on the
//! dictionary deployments (`dict_kernel_rows`), and cardinality-threshold
//! demotion mid-table neither changes query results nor invalidates prepared
//! statements bound across the demotion.

use std::sync::{Arc, OnceLock};

use mtbase::{EngineConfig, MtBase, Value};
use mth::gen::{self, GeneratedData};
use mth::params::{MthConfig, TenantDistribution};
use mth::{loader, queries, MthDeployment};
use mtrewrite::OptLevel;
use mtsql::ast::Statement;

const TENANTS: i64 = 4;
const SCOPE: &str = "SET SCOPE = \"IN (1, 2)\"";

/// The full configuration cross, labelled for failure messages.
struct Fixtures {
    cells: Vec<(&'static str, MthDeployment)>,
}

fn fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let config = MthConfig {
            scale: 0.08,
            tenants: TENANTS,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        };
        let data: GeneratedData = gen::generate(&config);
        let load = |engine_config| loader::load_from_data(config, engine_config, &data);
        let base = EngineConfig::postgres_like;
        Fixtures {
            cells: vec![
                ("dict/columnar/serial", load(base())),
                ("dict/columnar/parallel", load(base().with_parallel_scan(4))),
                (
                    "nodict/columnar/serial",
                    load(base().without_dictionary_encoding()),
                ),
                (
                    "nodict/columnar/parallel",
                    load(base().without_dictionary_encoding().with_parallel_scan(4)),
                ),
                // Dictionary encoding only applies to columnar buckets; the
                // row-layout cells pin that the flag stays inert there.
                ("dict/row/serial", load(base().without_columnar_scan())),
                (
                    "dict/row/parallel",
                    load(base().without_columnar_scan().with_parallel_scan(4)),
                ),
                (
                    "nodict/row/serial",
                    load(base().without_columnar_scan().without_dictionary_encoding()),
                ),
                (
                    "nodict/row/parallel",
                    load(
                        base()
                            .without_columnar_scan()
                            .without_dictionary_encoding()
                            .with_parallel_scan(4),
                    ),
                ),
            ],
        }
    })
}

/// Run one query and return its result plus the scan counters the sweep
/// compares across configurations.
fn run(
    dep: &MthDeployment,
    query: usize,
    level: OptLevel,
    label: &str,
) -> (mtbase::ResultSet, u64, u64) {
    let mut conn = dep.server.connect(1);
    conn.set_opt_level(level);
    conn.execute(SCOPE).expect("scope statement");
    let rs = conn
        .query(&queries::query(query))
        .unwrap_or_else(|e| panic!("Q{query} at {level:?} on {label}: {e}"));
    let stats = conn.last_query_stats();
    (rs, stats.rows_scanned, stats.partitions_pruned)
}

/// All 22 MT-H queries at o2: identical results and identical scan counters
/// across the whole {dict, no-dict} × {columnar, row} × {parallel, serial}
/// cross.
#[test]
fn all_queries_agree_across_the_dictionary_cross() {
    let f = fixtures();
    for query in queries::all_query_numbers() {
        let (reference_label, reference_dep) = &f.cells[0];
        let reference = run(reference_dep, query, OptLevel::O2, reference_label);
        for (label, dep) in &f.cells[1..] {
            let (rs, rows_scanned, pruned) = run(dep, query, OptLevel::O2, label);
            assert_eq!(
                reference.0, rs,
                "Q{query}: {label} differs from {reference_label}"
            );
            assert_eq!(
                reference.1, rows_scanned,
                "Q{query}: rows_scanned differs on {label}"
            );
            assert_eq!(
                reference.2, pruned,
                "Q{query}: partitions_pruned differs on {label}"
            );
        }
    }
}

/// The o4 rewrites wrap scans in derived tables; the dictionary axis must
/// stay invisible there too. A focused subset keeps the sweep fast — the
/// kernel-heavy queries plus the correlated Q22.
#[test]
fn kernel_heavy_queries_agree_at_o4() {
    let f = fixtures();
    for query in [1usize, 6, 12, 14, 22] {
        let (reference_label, reference_dep) = &f.cells[0];
        let reference = run(reference_dep, query, OptLevel::O4, reference_label);
        for (label, dep) in &f.cells[1..] {
            let (rs, rows_scanned, pruned) = run(dep, query, OptLevel::O4, label);
            assert_eq!(
                reference.0, rs,
                "Q{query} at o4: {label} differs from {reference_label}"
            );
            assert_eq!(
                reference.1, rows_scanned,
                "Q{query} at o4: rows_scanned differs on {label}"
            );
            assert_eq!(
                reference.2, pruned,
                "Q{query} at o4: partitions_pruned differs on {label}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Decorrelation axis
// ---------------------------------------------------------------------------

/// MT-H queries whose correlated sub-queries unnest into join plans (Q2's
/// MIN-over-partsupp, Q4's EXISTS, Q17's AVG threshold, Q20's nested SUM,
/// Q22's NOT EXISTS). Pinned as a constant so the engagement assert below
/// fails loudly if a rewrite silently stops firing — a shrinking set is a
/// regression, not a neutral plan change.
const DECORRELATING: &[usize] = &[2, 4, 17, 20, 22];

/// The `without_decorrelation()` twins of the configuration cross: identical
/// generator output and physical layout, correlated sub-queries interpreted
/// per outer row. Decorrelation is a pure plan rewrite — every cell must
/// return identical row-sets; only the scan counters may (and for Q22,
/// massively do) differ.
fn baseline_fixtures() -> &'static Fixtures {
    static FIXTURES: OnceLock<Fixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let config = MthConfig {
            scale: 0.08,
            tenants: TENANTS,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        };
        let data: GeneratedData = gen::generate(&config);
        let load = |engine_config| loader::load_from_data(config, engine_config, &data);
        let base = || EngineConfig::postgres_like().without_decorrelation();
        Fixtures {
            cells: vec![
                ("nodecorr/dict/columnar/serial", load(base())),
                (
                    "nodecorr/dict/columnar/parallel",
                    load(base().with_parallel_scan(4)),
                ),
                (
                    "nodecorr/nodict/columnar/serial",
                    load(base().without_dictionary_encoding()),
                ),
                (
                    "nodecorr/nodict/columnar/parallel",
                    load(base().without_dictionary_encoding().with_parallel_scan(4)),
                ),
                (
                    "nodecorr/dict/row/serial",
                    load(base().without_columnar_scan()),
                ),
                (
                    "nodecorr/dict/row/parallel",
                    load(base().without_columnar_scan().with_parallel_scan(4)),
                ),
                (
                    "nodecorr/nodict/row/serial",
                    load(base().without_columnar_scan().without_dictionary_encoding()),
                ),
                (
                    "nodecorr/nodict/row/parallel",
                    load(
                        base()
                            .without_columnar_scan()
                            .without_dictionary_encoding()
                            .with_parallel_scan(4),
                    ),
                ),
            ],
        }
    })
}

/// All 22 MT-H queries, decorrelated vs interpreted, cell by cell across the
/// whole {dict, no-dict} × {columnar, row} × {parallel, serial} cross:
/// row-sets must be bit-identical. Scan counters are deliberately *not*
/// compared across this axis — cutting them is the point of the rewrite.
#[test]
fn all_queries_agree_with_and_without_decorrelation() {
    let decorr = fixtures();
    let baseline = baseline_fixtures();
    for query in queries::all_query_numbers() {
        for ((label, dep), (blabel, bdep)) in decorr.cells.iter().zip(&baseline.cells) {
            let (rs, _, _) = run(dep, query, OptLevel::O2, label);
            let (brs, _, _) = run(bdep, query, OptLevel::O2, blabel);
            assert_eq!(
                rs, brs,
                "Q{query}: decorrelated {label} differs from interpreted {blabel}"
            );
        }
    }
}

/// The decorrelating queries at o4, where rewrites wrap scans in derived
/// tables and Q22's probe side is itself a join tree — the relation-probe
/// fallback path must agree with the interpreted plans too.
#[test]
fn decorrelating_queries_agree_with_interpreted_plans_at_o4() {
    let decorr = fixtures();
    let baseline = baseline_fixtures();
    for &query in DECORRELATING {
        for ((label, dep), (blabel, bdep)) in decorr.cells.iter().zip(&baseline.cells) {
            let (rs, _, _) = run(dep, query, OptLevel::O4, label);
            let (brs, _, _) = run(bdep, query, OptLevel::O4, blabel);
            assert_eq!(
                rs, brs,
                "Q{query} at o4: decorrelated {label} differs from interpreted {blabel}"
            );
        }
    }
}

/// Engagement + rows-scanned ceiling: every query in `DECORRELATING` must
/// actually report `subqueries_unnested` (the rewrite fires), the interpreted
/// baseline must never report it, and the unnested plans must scan no more
/// rows than the interpreted ones. Q22 — the motivating two-orders-of-
/// magnitude case — additionally gets an absolute ceiling: at most 3× the
/// scoped base rows of the two tables it touches, so a regression back to
/// per-outer-row rescans fails even if the baseline regresses with it.
#[test]
fn decorrelation_engages_and_caps_rows_scanned() {
    let f = fixtures();
    let b = baseline_fixtures();
    for &query in DECORRELATING {
        let (_, rows_scanned, _) = run(&f.cells[0].1, query, OptLevel::O2, "decorr");
        let stats = {
            let mut conn = f.cells[0].1.server.connect(1);
            conn.set_opt_level(OptLevel::O2);
            conn.execute(SCOPE).unwrap();
            conn.query(&queries::query(query)).unwrap();
            conn.last_query_stats()
        };
        assert!(
            stats.subqueries_unnested > 0,
            "Q{query}: decorrelation did not fire: {stats:?}"
        );
        let (_, baseline_scanned, _) = run(&b.cells[0].1, query, OptLevel::O2, "nodecorr");
        let bstats = {
            let mut conn = b.cells[0].1.server.connect(1);
            conn.set_opt_level(OptLevel::O2);
            conn.execute(SCOPE).unwrap();
            conn.query(&queries::query(query)).unwrap();
            conn.last_query_stats()
        };
        assert_eq!(
            bstats.subqueries_unnested, 0,
            "Q{query}: the no-decorrelation baseline rewrote a subquery"
        );
        // The build side scans each inner table exactly once, so the
        // unnested plan stays within a small constant of the interpreted
        // count even at scales tiny enough for the interpreted plan's
        // repeated-scan row cache to win outright (Q2 here). A rewrite that
        // regressed to per-outer-row rescans would blow far past this.
        assert!(
            rows_scanned <= 3 * baseline_scanned,
            "Q{query}: unnested plan scanned {rows_scanned} rows vs interpreted {baseline_scanned}"
        );
    }

    // Q22's absolute ceiling: scoped base rows of customer + orders, measured
    // through the same scan counters the ceiling is expressed in.
    let base_rows = |table: &str| {
        let mut conn = f.cells[0].1.server.connect(1);
        conn.set_opt_level(OptLevel::O2);
        conn.execute(SCOPE).unwrap();
        conn.query(&format!("SELECT COUNT(*) FROM {table}"))
            .unwrap();
        conn.last_query_stats().rows_scanned
    };
    let base = base_rows("customer") + base_rows("orders");
    let (_, q22_scanned, _) = run(&f.cells[0].1, 22, OptLevel::O2, "decorr");
    assert!(
        q22_scanned <= 3 * base,
        "Q22 scanned {q22_scanned} rows; ceiling is 3x base rows ({base})"
    );
}

/// The dictionary deployments must actually exercise the code-space paths —
/// predicate kernels (Q12's `l_shipmode IN`), code-space grouping (Q1's
/// `l_returnflag, l_linestatus`) and dictionary-decoding materialization
/// (Q6, Q14) — and the no-dictionary / row deployments must never report
/// them.
#[test]
fn dictionary_paths_engage_only_on_dictionary_deployments() {
    let f = fixtures();
    let stats_for = |cell: usize, query: usize| {
        let (label, dep) = &f.cells[cell];
        let mut conn = dep.server.connect(1);
        conn.set_opt_level(OptLevel::O2);
        conn.execute(SCOPE).expect("scope statement");
        conn.query(&queries::query(query))
            .unwrap_or_else(|e| panic!("Q{query} on {label}: {e}"));
        conn.last_query_stats()
    };
    for query in [1usize, 6, 12, 14] {
        let dict = stats_for(0, query);
        assert!(
            dict.dict_kernel_rows > 0,
            "Q{query} did not engage dictionary code space: {dict:?}"
        );
        for cell in [2, 4, 6] {
            let baseline = stats_for(cell, query);
            assert_eq!(
                baseline.dict_kernel_rows, 0,
                "Q{query} on {} reported dictionary rows",
                f.cells[cell].0
            );
        }
    }
    // The gauge: the dictionary deployment holds encoded columns, the
    // baseline holds none.
    assert!(f.cells[0].1.server.stats().dict_columns > 0);
    assert_eq!(f.cells[2].1.server.stats().dict_columns, 0);
}

// ---------------------------------------------------------------------------
// Morsel-driven parallel execution
// ---------------------------------------------------------------------------

/// The {morsel, serial} axis at a scale where the pool actually engages: the
/// scale-0.08 cross above stays below the parallel-scan row floor (its
/// "parallel" cells pin that the pool declines small scans), so this sweep
/// loads the same generator output at scale 2.0 and compares a pooled
/// deployment against the serial baseline.
struct MorselFixtures {
    morsel: MthDeployment,
    serial: MthDeployment,
}

fn morsel_fixtures() -> &'static MorselFixtures {
    static FIXTURES: OnceLock<MorselFixtures> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        let config = MthConfig {
            scale: 2.0,
            tenants: TENANTS,
            distribution: TenantDistribution::Uniform,
            seed: 42,
        };
        let data: GeneratedData = gen::generate(&config);
        let load = |engine_config| loader::load_from_data(config, engine_config, &data);
        MorselFixtures {
            morsel: load(EngineConfig::postgres_like().with_parallel_scan(4)),
            serial: load(EngineConfig::postgres_like()),
        }
    })
}

/// All 22 MT-H queries at o2: morsel-driven execution must be invisible —
/// identical row-sets and identical scan counters against the serial
/// baseline.
#[test]
fn all_queries_agree_between_morsel_and_serial_execution() {
    let f = morsel_fixtures();
    for query in queries::all_query_numbers() {
        let reference = run(&f.serial, query, OptLevel::O2, "serial");
        let (rs, rows_scanned, pruned) = run(&f.morsel, query, OptLevel::O2, "morsel");
        assert_eq!(reference.0, rs, "Q{query}: morsel differs from serial");
        assert_eq!(
            reference.1, rows_scanned,
            "Q{query}: rows_scanned differs under the pool"
        );
        assert_eq!(
            reference.2, pruned,
            "Q{query}: partitions_pruned differs under the pool"
        );
    }
}

/// Q1 and Q6 must run scan → filter → partial-aggregate end to end under the
/// worker pool: morsels dispatched, more than one worker, and per-morsel
/// partial aggregate states merged at the end.
#[test]
fn q1_and_q6_aggregate_under_the_morsel_pool() {
    let f = morsel_fixtures();
    for query in [1usize, 6] {
        let mut conn = f.morsel.server.connect(1);
        conn.set_opt_level(OptLevel::O2);
        conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
        conn.query(&queries::query(query)).unwrap();
        let stats = conn.last_query_stats();
        assert!(
            stats.morsels_dispatched > 0,
            "Q{query}: expected morsels on the pooled deployment, stats: {stats:?}"
        );
        assert!(
            stats.morsel_workers > 1,
            "Q{query}: expected more than one pool worker, stats: {stats:?}"
        );
        assert!(
            stats.partial_agg_merges > 0,
            "Q{query}: expected per-morsel partial aggregates, stats: {stats:?}"
        );

        // The serial baseline must report none of it (unless an MT_THREADS
        // override deliberately forces the pool on, as CI's forced leg does).
        if std::env::var("MT_THREADS").is_err() {
            let mut conn = f.serial.server.connect(1);
            conn.set_opt_level(OptLevel::O2);
            conn.execute("SET SCOPE = \"IN (1, 2, 3, 4)\"").unwrap();
            conn.query(&queries::query(query)).unwrap();
            let stats = conn.last_query_stats();
            assert_eq!(
                stats.morsels_dispatched, 0,
                "Q{query}: serial dispatched morsels"
            );
            assert_eq!(stats.morsel_workers, 0, "Q{query}: serial reported workers");
            assert_eq!(
                stats.partial_agg_merges, 0,
                "Q{query}: serial merged partials"
            );
        }
    }
}

/// A blocking cursor pinned before racing INSERTs must materialize from its
/// open-time watermark even when the scan itself runs on the morsel pool —
/// every morsel is bounded at the cursor's per-bucket `(epoch, len)`
/// snapshot, so post-pin rows never leak into the drained result.
#[test]
fn pinned_cursor_under_the_morsel_pool_never_observes_racing_inserts() {
    let server = items_server(EngineConfig::default().with_parallel_scan(4));
    // Grow Items past the parallel-scan row floor so the pinned scan pools:
    // 12_000 extra 'gamma' rows in tenant 1's bucket.
    let bulk: Vec<Vec<Value>> = (0..12_000i64)
        .map(|i| vec![Value::Int(1), Value::Int(100_000 + i), Value::str("gamma")])
        .collect();
    server.load_rows("Items", bulk).expect("bulk load");

    let mut conn = server.connect(1);
    conn.execute(SCOPE).expect("scope statement");
    let mut stmt = conn
        .prepare("SELECT I_item_id FROM Items WHERE I_tag = 'gamma' ORDER BY I_item_id")
        .unwrap();
    let before = server.stats();
    let mut cursor = stmt.cursor_with_batch(512).unwrap();
    assert!(!cursor.is_streaming(), "ORDER BY must materialize at open");
    assert!(
        server.stats().morsels_dispatched > before.morsels_dispatched,
        "the pinned materializing scan was expected to run on the pool"
    );

    // Commit new matching rows while the cursor drains.
    let writer = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            for i in 0..50i64 {
                server
                    .load_rows(
                        "Items",
                        vec![vec![
                            Value::Int(1),
                            Value::Int(200_000 + i),
                            Value::str("gamma"),
                        ]],
                    )
                    .expect("racing insert");
            }
        })
    };
    let mut seen = 0usize;
    while let Some(batch) = cursor.next_batch().unwrap() {
        for row in &batch {
            match row[0] {
                // 20 pre-bulk gamma rows carry ids < 100_000.
                Value::Int(id) => assert!(id < 200_000, "post-pin row {id} leaked"),
                ref other => panic!("unexpected id value {other:?}"),
            }
        }
        seen += batch.len();
    }
    writer.join().expect("writer thread");
    assert_eq!(seen, 20 + 12_000, "pinned cursor row count");

    // A fresh query sees the racing rows.
    let live = conn
        .query("SELECT COUNT(*) FROM Items WHERE I_tag = 'gamma'")
        .unwrap();
    assert_eq!(live.rows[0][0], Value::Int(20 + 12_000 + 50));
}

// ---------------------------------------------------------------------------
// Cardinality-threshold demotion
// ---------------------------------------------------------------------------

/// A minimal tenant-specific deployment for the demotion and isolation
/// tests: one table with a low-cardinality tag column, two tenants, no
/// conversion functions.
fn items_server(engine_config: EngineConfig) -> Arc<MtBase> {
    let server = MtBase::new(engine_config);
    let ddl = "CREATE TABLE Items SPECIFIC (
        I_item_id INTEGER NOT NULL SPECIFIC,
        I_tag VARCHAR(32) NOT NULL COMPARABLE
    )";
    match mtsql::parse_statement(ddl).expect("DDL parses") {
        Statement::CreateTable(ct) => server.create_table(&ct).expect("create table"),
        _ => unreachable!(),
    }
    for t in 1..=2 {
        server.register_tenant(t).expect("register tenant");
    }
    server.grant_read_all(1).expect("grant read");
    // 40 rows cycling over 4 tags per tenant: comfortably dictionary-encoded.
    let tags = ["alpha", "beta", "gamma", "delta"];
    let rows: Vec<Vec<Value>> = (0..80)
        .map(|i| {
            vec![
                Value::Int(i % 2 + 1),
                Value::Int(i),
                Value::str(tags[(i % 4) as usize]),
            ]
        })
        .collect();
    server.load_rows("Items", rows).expect("load Items");
    server
}

/// The {dict, no-dict} × {columnar, row} cross the isolation tests sweep —
/// snapshot semantics are a logical property and must not depend on the
/// physical layout.
fn isolation_cells() -> Vec<(&'static str, EngineConfig)> {
    let base = EngineConfig::default;
    vec![
        ("dict/columnar", base()),
        ("nodict/columnar", base().without_dictionary_encoding()),
        ("dict/row", base().without_columnar_scan()),
        (
            "nodict/row",
            base().without_columnar_scan().without_dictionary_encoding(),
        ),
    ]
}

/// Inserting past the distinct-value threshold demotes the dictionary column
/// mid-table without changing query results, and a prepared statement bound
/// across the demotion keeps returning correct rows from its cached plan.
#[test]
fn demotion_mid_table_preserves_results_and_prepared_statements() {
    let server = items_server(EngineConfig::default());
    assert!(
        server.stats().dict_columns > 0,
        "the tag column must start dictionary-encoded: {:?}",
        server.stats()
    );

    let mut conn = server.connect(1);
    conn.execute("SET SCOPE = \"IN (1, 2)\"").unwrap();
    let count_alpha = "SELECT COUNT(*) FROM Items WHERE I_tag = 'alpha'";
    let before = conn.query(count_alpha).unwrap();
    assert_eq!(before.rows[0][0], Value::Int(20));

    // Prepare (and execute once) before the demotion, so the plan is cached.
    let mut stmt = conn
        .prepare("SELECT I_item_id FROM Items WHERE I_tag = ? ORDER BY I_item_id")
        .unwrap();
    let prepared_before = stmt.execute_with(&[Value::str("beta")]).unwrap();
    assert_eq!(prepared_before.rows.len(), 20);

    // Blow past DICT_MAX_DISTINCT with unique tags in tenant 1's bucket.
    let overflow: Vec<Vec<Value>> = (0..mtengine::table::DICT_MAX_DISTINCT as i64 + 8)
        .map(|i| {
            vec![
                Value::Int(1),
                Value::Int(1000 + i),
                Value::str(format!("unique-{i:05}")),
            ]
        })
        .collect();
    server.load_rows("Items", overflow).expect("overflow load");
    assert_eq!(
        server.stats().dict_columns,
        1,
        "tenant 1's tag column demotes; tenant 2's stays encoded: {:?}",
        server.stats()
    );

    // One-shot results are unchanged for the old rows and see the new ones.
    let after = conn.query(count_alpha).unwrap();
    assert_eq!(after, before, "demotion changed query results");
    let uniques = conn
        .query("SELECT COUNT(*) FROM Items WHERE I_tag LIKE 'unique-%'")
        .unwrap();
    assert_eq!(
        uniques.rows[0][0],
        Value::Int(mtengine::table::DICT_MAX_DISTINCT as i64 + 8)
    );

    // The statement prepared before the demotion still binds and returns
    // correct rows — both for dictionary-era and post-demotion values.
    let prepared_after = stmt.execute_with(&[Value::str("beta")]).unwrap();
    assert_eq!(
        prepared_after, prepared_before,
        "prepared beta rows drifted"
    );
    let prepared_unique = stmt.execute_with(&[Value::str("unique-00003")]).unwrap();
    assert_eq!(prepared_unique.rows, vec![vec![Value::Int(1003)]]);
    assert!(
        stmt.last_query_stats().prepared_cache_hits > 0,
        "re-execution must come from the plan cache: {:?}",
        stmt.last_query_stats()
    );
}

// ---------------------------------------------------------------------------
// Writers racing scanners & cursor snapshot isolation
// ---------------------------------------------------------------------------

/// A writer appends whole batches (one row per tag, atomically — one WAL-style
/// transaction per `load_rows`) while a scanner races it with one-shot
/// queries. Every scan must observe a batch-atomic snapshot: the per-tag
/// counts are always identical, never a half-applied batch — in every cell of
/// the layout cross.
#[test]
fn scanner_racing_writer_only_observes_whole_batches() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let tags = ["alpha", "beta", "gamma", "delta"];
    for (label, engine_config) in isolation_cells() {
        let server = items_server(engine_config);
        let done = Arc::new(AtomicBool::new(false));
        let writer = {
            let server = Arc::clone(&server);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                for batch in 0..50i64 {
                    let rows: Vec<Vec<Value>> = tags
                        .iter()
                        .enumerate()
                        .map(|(t, tag)| {
                            vec![
                                Value::Int(1),
                                Value::Int(10_000 + batch * 4 + t as i64),
                                Value::str(*tag),
                            ]
                        })
                        .collect();
                    server.load_rows("Items", rows).expect("racing batch");
                }
                done.store(true, Ordering::SeqCst);
            })
        };

        let mut conn = server.connect(1);
        conn.execute(SCOPE).expect("scope statement");
        let mut scans = 0u64;
        loop {
            let finished = done.load(Ordering::SeqCst);
            let rs = conn
                .query("SELECT I_tag, COUNT(*) FROM Items GROUP BY I_tag")
                .unwrap_or_else(|e| panic!("{label}: racing scan failed: {e}"));
            assert_eq!(rs.rows.len(), 4, "{label}: a tag group went missing");
            let first = &rs.rows[0][1];
            for row in &rs.rows {
                assert_eq!(
                    &row[1], first,
                    "{label}: scan observed a half-applied batch: {:?}",
                    rs.rows
                );
            }
            scans += 1;
            if finished {
                break;
            }
        }
        writer.join().expect("writer thread");
        assert!(scans > 0);
        let total = conn.query("SELECT COUNT(*) FROM Items").unwrap();
        assert_eq!(
            total.rows[0][0],
            Value::Int(80 + 50 * 4),
            "{label}: final row count"
        );
    }
}

/// A cursor opened before a concurrent INSERT never yields the new rows —
/// streaming cursors are bounded by the open-time watermark, blocking plans
/// materialize at open — in every cell of the layout cross, even when the
/// writer commits *while* the cursor is being drained.
#[test]
fn cursor_opened_before_insert_never_observes_it() {
    for (label, engine_config) in isolation_cells() {
        let server = items_server(engine_config);
        let mut conn = server.connect(1);
        conn.execute(SCOPE).expect("scope statement");

        // Streaming shape (scan–filter–project): drained batch-at-a-time
        // while a racing writer commits between fetches.
        let mut stmt = conn
            .prepare("SELECT I_item_id FROM Items WHERE I_tag = 'alpha'")
            .unwrap();
        let mut cursor = stmt.cursor_with_batch(4).unwrap();
        assert!(cursor.is_streaming(), "{label}: expected a streaming plan");
        let writer = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for i in 0..100i64 {
                    server
                        .load_rows(
                            "Items",
                            vec![vec![
                                Value::Int(1),
                                Value::Int(5_000 + i),
                                Value::str("alpha"),
                            ]],
                        )
                        .expect("racing insert");
                }
            })
        };
        let mut seen = Vec::new();
        while let Some(batch) = cursor.next_batch().unwrap() {
            for row in batch {
                match row[0] {
                    Value::Int(id) => seen.push(id),
                    ref other => panic!("{label}: unexpected id value {other:?}"),
                }
            }
        }
        writer.join().expect("writer thread");
        seen.sort_unstable();
        let expected: Vec<i64> = (0..80).filter(|i| i % 4 == 0).collect();
        assert_eq!(
            seen, expected,
            "{label}: pinned streaming cursor leaked post-open rows"
        );

        // A fresh one-shot query (and a fresh cursor) see the new rows.
        let live = conn
            .query("SELECT COUNT(*) FROM Items WHERE I_tag = 'alpha'")
            .unwrap();
        assert_eq!(live.rows[0][0], Value::Int(20 + 100), "{label}: live count");

        // Blocking shape (ORDER BY materializes at open): rows committed
        // after the open never appear either.
        let mut blocking = conn
            .prepare("SELECT I_item_id FROM Items WHERE I_tag = 'beta' ORDER BY I_item_id")
            .unwrap();
        let mut cursor = blocking.cursor().unwrap();
        assert!(!cursor.is_streaming(), "{label}: expected a blocking plan");
        server
            .load_rows(
                "Items",
                vec![vec![Value::Int(1), Value::Int(7_000), Value::str("beta")]],
            )
            .expect("post-open insert");
        let mut ids = Vec::new();
        while let Some(row) = cursor.next_row().unwrap() {
            match row[0] {
                Value::Int(id) => ids.push(id),
                ref other => panic!("{label}: unexpected id value {other:?}"),
            }
        }
        let expected: Vec<i64> = (0..80).filter(|i| i % 4 == 1).collect();
        assert_eq!(
            ids, expected,
            "{label}: pinned blocking cursor leaked post-open rows"
        );
    }
}

//! Umbrella crate for the MTBase reproduction.
//!
//! This crate simply re-exports the workspace members so that the examples and
//! integration tests in the repository root can use a single dependency. See
//! the individual crates for the actual implementation:
//!
//! * [`mtsql`] — SQL/MTSQL lexer, parser, AST and pretty-printer.
//! * [`mtcatalog`] — schema catalog, tenants, conversion functions, privileges.
//! * [`mtengine`] — the in-memory SQL execution engine substrate.
//! * [`mtrewrite`] — the MTSQL→SQL rewrite algorithm and its optimizations.
//! * [`mtbase`] — the middleware tying everything together.
//! * [`mth`] — the MT-H benchmark (TPC-H extension) generator and queries.

pub use mtbase;
pub use mtcatalog;
pub use mtengine;
pub use mth;
pub use mtrewrite;
pub use mtsql;

//! Plan execution: expression evaluation, joins, grouping/aggregation,
//! sub-queries and the operator-DAG walker.
//!
//! Queries are first lowered by [`crate::plan::Planner`] into a physical
//! [`Plan`] (scans with pushed-down conjuncts and partition pruning, hash /
//! nested-loop joins, aggregation, sort, limit); the [`Executor`] walks that
//! DAG. Every operator consumes and produces a [`Relation`] of
//! reference-counted [`SharedRow`]s, so relations flowing between operators
//! share row storage with the base tables instead of deep-cloning it.
//!
//! [`Plan::SeqScan`] evaluates its pushed conjuncts *during* the scan
//! (non-qualifying rows are never copied), skips partition buckets its
//! `ttid = k` / `ttid IN (...)` pruning predicates exclude, and — when
//! [`crate::EngineConfig::parallel_scan`] (or its `MT_THREADS` execution-time
//! override) allows — runs *morsel-driven*: the selected buckets are split
//! into fixed-size row-range morsels ([`crate::EngineConfig::morsel_rows`])
//! pulled by a scoped worker pool, each worker running the whole filter per
//! morsel — column kernels first, interpreted conjuncts on the
//! late-materialized survivors — and the per-morsel outputs merge in morsel
//! order, so the result is bit-identical to a serial scan. When the scan
//! feeds a `HashAggregate` directly, workers additionally fold their morsel
//! into a *partial aggregate state*; the partial states merge in morsel
//! order on the coordinator, parallelizing scan→filter→aggregate end to end.
//! Buckets stored in the columnar layout
//! ([`crate::EngineConfig::columnar_scan`]) are scanned *vectorized*: the
//! compiled predicates run as column kernels over a selection bitmap
//! (see [`crate::conjuncts::eval_vectorized`]) and only the qualifying row
//! ids are late-materialized into [`SharedRow`]s. Uncorrelated sub-queries
//! are evaluated once per query and cached; sub-query *plans* are cached
//! even for correlated sub-queries, which are re-executed per outer row.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use mtsql::ast::*;
use mtsql::visit::contains_subquery;

use crate::conjuncts::{
    between_matches, eval_vectorized, eval_vectorized_range, fast_filter_matches,
    fast_pred_matches, flip_comparison, has_columns, CompiledPred, Selection,
};
use crate::error::{err, EngineError, Result};
use crate::plan::{HashAggregate, JoinVariant, Plan, Planner, Project, SeqScan, SortKey};
use crate::schema::Schema;
use crate::table::{Bucket, BucketRead, Row, SharedRow, Snapshot};
use crate::value::{add_months, civil_from_days, parse_date, Value};
use crate::Engine;

pub use crate::conjuncts::{like_match, LikePattern};

/// Minimum number of selected-bucket rows before a scan fans out to worker
/// threads; below this the spawn overhead dominates the scan itself.
const PARALLEL_SCAN_MIN_ROWS: usize = 8192;

/// Minimum rows each worker should own — the thread count is capped so a
/// spawned thread always has enough work to amortize its spawn cost.
const PARALLEL_SCAN_MIN_ROWS_PER_WORKER: usize = 4096;

/// The process-wide execution-time parallel budget: the `MT_THREADS`
/// environment variable (a positive integer), when set, overrides
/// [`crate::EngineConfig::parallel_scan`] for every engine in the process —
/// benches and CI matrix legs force the worker pool on without touching
/// deployment configuration. Parsed once per process; EXPLAIN deliberately
/// keeps rendering from the *configured* budget so plan snapshots stay
/// stable under the override.
pub(crate) fn effective_parallel_budget(config: &crate::EngineConfig) -> usize {
    static OVERRIDE: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    OVERRIDE
        .get_or_init(|| {
            std::env::var("MT_THREADS")
                .ok()
                .and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or(config.parallel_scan)
}

/// The configured morsel size, with `0` falling back to the default.
pub(crate) fn morsel_rows(config: &crate::EngineConfig) -> usize {
    if config.morsel_rows == 0 {
        crate::DEFAULT_MORSEL_ROWS
    } else {
        config.morsel_rows
    }
}

/// Number of workers a scan over `total_rows` split into `morsel_count`
/// morsels uses under a parallel budget — `1` means serial. Shared by the
/// scan itself and the EXPLAIN renderer so both report the same decision.
/// Budgeting on morsels (not buckets) means a single oversized bucket still
/// spreads across the whole pool instead of monopolizing one worker.
pub(crate) fn scan_worker_count(budget: usize, morsel_count: usize, total_rows: usize) -> usize {
    if total_rows < PARALLEL_SCAN_MIN_ROWS {
        return 1;
    }
    budget
        .max(1)
        .min(morsel_count)
        .min((total_rows / PARALLEL_SCAN_MIN_ROWS_PER_WORKER).max(1))
}

/// One unit of pooled scan work: a row range of one selected bucket. Morsels
/// are bounded at the scan's per-bucket *visible* length, so a pooled scan
/// under a pinned snapshot never observes rows appended after the pin.
#[derive(Debug, Clone, Copy)]
struct Morsel {
    /// Index into the scan's selected-bucket list.
    bucket: usize,
    /// First row of the range.
    start: usize,
    /// One past the last row of the range.
    end: usize,
}

/// Split the selected buckets into fixed-size row-range morsels, in bucket
/// order. Morsels of one bucket are contiguous and ascending, so merging
/// per-morsel outputs in morsel order reproduces the serial row order
/// exactly.
fn build_morsels(selected: &[(&Bucket, usize)], step: usize) -> Vec<Morsel> {
    let step = step.max(1);
    let mut morsels = Vec::new();
    for (bucket, &(_, visible)) in selected.iter().enumerate() {
        let mut start = 0;
        while start < visible {
            let end = (start + step).min(visible);
            morsels.push(Morsel { bucket, start, end });
            start = end;
        }
    }
    morsels
}

/// The number of morsels [`build_morsels`] would produce, without building
/// them (serial-path bail-out sizing).
fn morsel_count(selected: &[(&Bucket, usize)], step: usize) -> usize {
    let step = step.max(1);
    selected.iter().map(|&(_, v)| v.div_ceil(step)).sum()
}

/// Run `work` over every morsel on a pool of `threads` scoped workers.
/// Workers *pull* morsels from a shared index — a slow morsel never stalls
/// the rest of the pool — and each worker evaluates through its own
/// [`Executor`] (the engine is shared and `Sync`; executor-local caches are
/// not). Results are returned in morsel order regardless of which worker
/// produced them; a panicking worker surfaces as a typed error; and when
/// several morsels fail, the error of the lowest morsel index wins — the one
/// the serial scan would have hit first.
fn run_morsel_pool<T, F>(
    engine: &Engine,
    params: &[Value],
    threads: usize,
    morsels: &[Morsel],
    work: F,
) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(&Executor, Morsel) -> Result<T> + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    let next = AtomicUsize::new(0);
    let joined = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (next, work) = (&next, &work);
                scope.spawn(move || {
                    let worker = Executor::with_params(engine, params.to_vec());
                    let mut done: Vec<(usize, Result<T>)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                        let Some(morsel) = morsels.get(i) else { break };
                        done.push((i, work(&worker, *morsel)));
                    }
                    done
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join())
            .collect::<Vec<std::thread::Result<_>>>()
    });
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None)
        .take(morsels.len())
        .collect();
    let mut first_err: Option<(usize, EngineError)> = None;
    for outcome in joined {
        let done = outcome.map_err(|_| {
            EngineError::with_kind(
                crate::EngineErrorKind::Poisoned,
                "parallel scan worker panicked",
            )
        })?;
        for (i, result) in done {
            match result {
                Ok(v) => slots[i] = Some(v),
                Err(e) => {
                    if first_err.as_ref().is_none_or(|f| i < f.0) {
                        first_err = Some((i, e));
                    }
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }
    let mut results = Vec::with_capacity(slots.len());
    for (i, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(v) => results.push(v),
            // Every morsel index is pulled exactly once by construction; an
            // empty slot means a worker died without reporting.
            None => {
                return Err(EngineError::with_kind(
                    crate::EngineErrorKind::Poisoned,
                    format!("morsel {i} was never completed by any worker"),
                ))
            }
        }
    }
    Ok(results)
}

/// Per-bucket state of [`Executor::repeated_bucket_rows`]: how many times
/// the bucket was scanned vectorized, or its once-materialized rows.
enum BucketScanState {
    /// Scanned this many times so far, still on the vectorized path.
    Scanned(u32),
    /// Materialized on the third scan; shared by every scan after.
    Rows(Rc<Vec<SharedRow>>),
}

/// Per-scan accounting fed into the engine counters afterwards.
#[derive(Debug, Default, Clone, Copy)]
struct ScanTally {
    /// Rows visited (row loops) or covered by column kernels.
    visited: u64,
    /// Rows whose predicates were evaluated column-at-a-time.
    vectorized: u64,
    /// Rows late-materialized from columnar buckets after qualifying.
    materialized: u64,
    /// Rows processed through dictionary code space (per-predicate code
    /// kernels, code-space grouping, dictionary-decoding materializations).
    dict: u64,
}

impl ScanTally {
    fn absorb(&mut self, other: ScanTally) {
        self.visited += other.visited;
        self.vectorized += other.vectorized;
        self.materialized += other.materialized;
        self.dict += other.dict;
    }
}

/// Sentinel group-key code for NULL slots in code-space grouping
/// (dictionaries are bounded far below it, so it can never collide with a
/// real code). Shared by the serial code-space grouping scan and the
/// morsel workers' per-morsel code memos.
const NULL_CODE: u32 = u32::MAX;

/// Select the partition buckets a scan visits under an optional pruning key
/// set, each paired with its *visible length* — the whole bucket normally,
/// or the rows visible at the executor's pinned snapshot — together with
/// the `(scanned, pruned)` bucket counts. Shared by every scan path so
/// bucket selection, snapshot bounding and partition accounting can never
/// drift apart. A snapshot that predates an open transaction's destructive
/// rewrite is served from the table's retained pre-rewrite shadow (see
/// [`crate::table::Table::read_at`]), so committed-floor readers never
/// observe uncommitted rewritten storage.
fn select_buckets<'t>(
    table: &'t crate::table::Table,
    prune_keys: &Option<std::collections::BTreeSet<i64>>,
    snapshot: Option<&Snapshot>,
) -> (Vec<(&'t Bucket, usize)>, u64, u64) {
    let view = table.read_at(snapshot);
    match prune_keys {
        Some(keys) => {
            let mut selected = Vec::new();
            let (mut scanned, mut pruned) = (0u64, 0u64);
            for (key, bucket) in view.partitions() {
                if keys.contains(&key) {
                    scanned += 1;
                    selected.push((bucket, view.visible_bucket_len(key).min(bucket.len())));
                } else {
                    pruned += 1;
                }
            }
            (selected, scanned, pruned)
        }
        None => {
            let selected: Vec<(&Bucket, usize)> = view
                .partitions()
                .map(|(k, b)| (b, view.visible_bucket_len(k).min(b.len())))
                .collect();
            let scanned = selected.len() as u64;
            (selected, scanned, 0)
        }
    }
}

/// Scan the first `visible` rows of one bucket with a filter of *fast*
/// predicates only. Pure (no engine access). Row buckets run the per-row
/// compiled filter; columnar buckets run the predicates as column kernels
/// over a selection bitmap and materialize the surviving row ids.
fn scan_bucket_fast(
    bucket: &Bucket,
    visible: usize,
    filter: &[CompiledPred],
    out: &mut Vec<SharedRow>,
) -> ScanTally {
    let mut tally = ScanTally::default();
    match bucket {
        Bucket::Rows(rows) => {
            let rows = &rows[..visible.min(rows.len())];
            tally.visited = rows.len() as u64;
            for row in rows {
                if fast_filter_matches(filter, row) {
                    out.push(SharedRow::clone(row));
                }
            }
        }
        Bucket::Columnar(cols) => {
            let visible = visible.min(cols.len());
            let mut sel = Selection::all(visible);
            for pred in filter {
                tally.dict += eval_vectorized(pred, cols, &mut sel);
            }
            tally.visited = visible as u64;
            tally.vectorized = visible as u64;
            tally.materialized = sel.count() as u64;
            if cols.dict_column_count() > 0 {
                // Qualifying rows decode their dictionary columns while
                // materializing.
                tally.dict += tally.materialized;
            }
            sel.for_each(|i| out.push(cols.materialize(i)));
        }
    }
    tally
}

/// A materialized intermediate result. Rows are shared with their producers;
/// cloning a relation (or filtering one) copies pointers, not values.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub schema: Schema,
    pub rows: Vec<SharedRow>,
}

/// Evaluation environment: the row currently in scope plus the chain of outer
/// rows for correlated sub-queries.
#[derive(Clone, Copy)]
pub struct Env<'a> {
    pub schema: &'a Schema,
    pub row: &'a [Value],
    pub parent: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    /// Borrowing column lookup: the resolved value plus whether it came from
    /// an outer (parent) environment. Comparison-only call sites use the
    /// borrow directly; owning sites clone the (cheap, `Arc`-interned) value.
    fn lookup_ref(&self, col: &ColumnRef) -> Option<(&'a Value, bool)> {
        if let Some(idx) = self.schema.resolve(col) {
            return Some((&self.row[idx], false));
        }
        self.parent
            .and_then(|p| p.lookup_ref(col))
            .map(|(v, _)| (v, true))
    }
}

/// Per-query executor borrowing the engine (tables, UDFs, statistics).
pub struct Executor<'e> {
    engine: &'e Engine,
    /// Bound parameter values; `Expr::Param(i)` evaluates to `params[i]`.
    /// Empty for statements without parameters — evaluating an unbound
    /// parameter is an error, and constant folding over an unbound parameter
    /// simply fails (so planning a parameterized query defers those
    /// predicates to execution time).
    params: Vec<Value>,
    /// Cache of uncorrelated sub-query results, keyed by their SQL text.
    subquery_cache: RefCell<HashMap<String, Rc<Relation>>>,
    /// Cache of sub-query plans (correlated sub-queries re-execute per outer
    /// row but are lowered only once).
    plan_cache: RefCell<HashMap<String, Rc<Plan>>>,
    /// LIKE patterns precompiled once per pattern text instead of once per row.
    like_cache: RefCell<HashMap<String, Arc<LikePattern>>>,
    /// Columnar buckets this executor has scanned before, keyed by bucket
    /// address (stable for the executor's lifetime — it borrows the engine).
    /// Scans of the same bucket are counted; from the third scan on the
    /// bucket's rows are materialized once and shared, so correlated
    /// sub-queries that re-scan the same bucket per outer row pay the
    /// columnar row-construction cost only once while queries scanning a
    /// bucket once or twice keep the fully vectorized, late-materializing
    /// path.
    bucket_row_cache: RefCell<HashMap<usize, BucketScanState>>,
    /// `true` while the executor detected an escape to an outer row during the
    /// currently executing sub-query (conservative correlation detection).
    correlation_witness: Cell<bool>,
    /// When set, every base-table scan of this executor is bounded at this
    /// snapshot: per-bucket visible lengths and the loose-row prefix resolve
    /// through the table's write marks (or an open transaction's pre-rewrite
    /// shadow), so neither serial scans nor pooled morsels ever observe rows
    /// the snapshot does not admit. Set by snapshot cursors before
    /// materializing blocking plans, by the per-statement committed-floor
    /// pin, and (as [`Snapshot::Txn`]) by in-transaction reads.
    snapshot: Option<Snapshot>,
}

impl<'e> Executor<'e> {
    /// Create an executor for one top-level query.
    pub fn new(engine: &'e Engine) -> Self {
        Executor::with_params(engine, Vec::new())
    }

    /// Create an executor with bound parameter values (`Expr::Param(i)`
    /// evaluates to `params[i]`).
    pub fn with_params(engine: &'e Engine, params: Vec<Value>) -> Self {
        Executor {
            engine,
            params,
            subquery_cache: RefCell::new(HashMap::new()),
            plan_cache: RefCell::new(HashMap::new()),
            like_cache: RefCell::new(HashMap::new()),
            bucket_row_cache: RefCell::new(HashMap::new()),
            correlation_witness: Cell::new(false),
            snapshot: None,
        }
    }

    /// Bound every scan of this executor at the given mutation-epoch
    /// watermark (snapshot-isolated cursors, per-statement floor pins).
    pub(crate) fn pin_snapshot(&mut self, epoch: u64) {
        self.snapshot = Some(Snapshot::At(epoch));
    }

    /// Bound every scan at the committed floor *plus* one transaction's own
    /// uncommitted epochs — the read-your-writes pin for statements running
    /// inside that transaction (other open transactions' staged rows stay
    /// invisible).
    pub(crate) fn pin_txn_snapshot(&mut self, floor: u64, own: Arc<BTreeSet<u64>>) {
        self.snapshot = Some(Snapshot::Txn { floor, own });
    }

    /// Materialized rows of a columnar bucket this executor scans
    /// *repeatedly*. The first two scans return `None` (stay vectorized — a
    /// query that scans a bucket once or twice with selective filters must
    /// not pay full materialization); the third scan materializes every row
    /// once (the returned flag is `true` exactly then, so the caller charges
    /// those constructions to the `late_materialized` counter); later scans
    /// reuse the rows for free. Three-or-more scans of one bucket within a
    /// single query only arise from per-outer-row re-execution of correlated
    /// sub-queries, where the rescan count dwarfs the one-time build.
    fn repeated_bucket_rows(
        &self,
        cols: &crate::table::ColumnBucket,
        visible: usize,
    ) -> Option<(Rc<Vec<SharedRow>>, bool)> {
        let key = cols as *const crate::table::ColumnBucket as usize;
        let mut cache = self.bucket_row_cache.borrow_mut();
        match cache.entry(key).or_insert(BucketScanState::Scanned(0)) {
            BucketScanState::Rows(rows) => Some((Rc::clone(rows), false)),
            BucketScanState::Scanned(prior) if *prior < 2 => {
                *prior += 1;
                None
            }
            slot => {
                // The visible bound is stable for the executor's lifetime
                // (the engine is borrowed for the whole query and the
                // snapshot never changes), so caching the bounded prefix is
                // safe.
                let rows = Rc::new(
                    (0..visible.min(cols.len()))
                        .map(|i| cols.materialize(i))
                        .collect::<Vec<_>>(),
                );
                *slot = BucketScanState::Rows(Rc::clone(&rows));
                Some((rows, true))
            }
        }
    }

    /// The compiled form of a LIKE pattern, cached per executor.
    fn compiled_like(&self, pattern: &str) -> Arc<LikePattern> {
        if let Some(hit) = self.like_cache.borrow().get(pattern) {
            return Arc::clone(hit);
        }
        let compiled = Arc::new(LikePattern::new(pattern));
        self.like_cache
            .borrow_mut()
            .insert(pattern.to_string(), Arc::clone(&compiled));
        compiled
    }

    // ------------------------------------------------------------------
    // Query execution: lower to a plan, walk the plan
    // ------------------------------------------------------------------

    /// Execute a query with an optional outer environment (for correlated
    /// sub-queries): lower it to a physical plan and walk that.
    pub fn execute_query(&self, query: &Query, outer: Option<&Env>) -> Result<Relation> {
        let plan = Planner::new(self.engine).plan_query(query)?;
        if crate::verify::verify_enabled(&self.engine.config) {
            let opts = crate::verify::VerifyOptions {
                param_count: Some(self.params.len()),
                // Correlated sub-queries reference enclosing-scope columns
                // that only resolve against the outer environment.
                outer: outer.is_some(),
                ..Default::default()
            };
            crate::verify::verify_plan_with(self.engine, &plan, opts)?;
            self.engine.counters.add_plans_verified(1);
        }
        self.execute_plan(&plan, outer)
    }

    /// Execute a physical plan.
    pub fn execute_plan(&self, plan: &Plan, outer: Option<&Env>) -> Result<Relation> {
        match plan {
            Plan::Empty { .. } => Ok(Relation {
                schema: Schema::new(),
                rows: vec![Vec::new().into()],
            }),
            Plan::SeqScan(scan) => self.exec_scan(scan, outer),
            Plan::Filter { input, predicates } => {
                let rel = self.execute_plan(input, outer)?;
                self.filter_relation(&rel, predicates, outer)
            }
            Plan::HashJoin {
                left,
                right,
                keys,
                residual,
                kind,
                ..
            } => match kind {
                JoinVariant::Plain(k) => {
                    let l = self.execute_plan(left, outer)?;
                    let r = self.execute_plan(right, outer)?;
                    self.hash_join(&l, &r, keys, residual, *k, outer)
                }
                variant => self.key_join(left, right, keys, residual, *variant, outer),
            },
            Plan::NestedLoopJoin {
                left,
                right,
                predicates,
                kind,
                ..
            } => {
                let l = self.execute_plan(left, outer)?;
                let r = self.execute_plan(right, outer)?;
                if predicates.is_empty() && *kind == JoinKind::Cross {
                    Ok(cross_product(&l, &r))
                } else {
                    self.nested_loop_join(&l, &r, predicates, *kind, outer)
                }
            }
            Plan::Subquery { input, schema, .. } => {
                let rel = self.execute_plan(input, outer)?;
                Ok(Relation {
                    schema: schema.clone(),
                    rows: rel.rows,
                })
            }
            Plan::Project(project) => self.exec_project(project, outer),
            Plan::HashAggregate(agg) => self.exec_hash_aggregate(agg, outer),
            Plan::Sort {
                input,
                keys,
                prune_to,
            } => {
                let mut rel = self.execute_plan(input, outer)?;
                sort_rows(&mut rel.rows, keys);
                if let Some(width) = prune_to {
                    // Strip the hidden sort-key columns appended by the
                    // projection head.
                    for row in &mut rel.rows {
                        *row = row[..*width].to_vec().into();
                    }
                }
                Ok(rel)
            }
            Plan::Limit { input, limit } => {
                let mut rel = self.execute_plan(input, outer)?;
                rel.rows.truncate(*limit as usize);
                Ok(rel)
            }
        }
    }

    /// Projection head: evaluate the output items (visible projection plus
    /// hidden sort keys) per row, then DISTINCT on the visible prefix.
    fn exec_project(&self, project: &Project, outer: Option<&Env>) -> Result<Relation> {
        let input = self.execute_plan(&project.input, outer)?;
        let mut rows: Vec<SharedRow> = Vec::with_capacity(input.rows.len());
        for row in &input.rows {
            let env = Env {
                schema: &input.schema,
                row,
                parent: outer,
            };
            rows.push(self.project_row(&project.items, &env)?.into());
        }
        if project.distinct {
            dedup_visible(&mut rows, project.visible_width);
        }
        Ok(Relation {
            schema: project.schema.clone(),
            rows,
        })
    }

    /// Grouping head: hash rows into groups (first-seen order), evaluate
    /// aggregates, HAVING and the output items per group. When the input is
    /// a base-table scan large enough for the worker pool, the whole
    /// scan→filter→group→fold pipeline runs morsel-parallel (see
    /// [`Executor::try_parallel_aggregate`]); when it is a serial scan whose
    /// group keys are dictionary-encoded columns, grouping runs in *code
    /// space* (see [`Executor::try_group_on_codes`]); otherwise rows are
    /// grouped by their evaluated key values.
    fn exec_hash_aggregate(&self, agg: &HashAggregate, outer: Option<&Env>) -> Result<Relation> {
        if let Some(rel) = self.try_parallel_aggregate(agg, outer)? {
            return Ok(rel);
        }
        let grouped = match self.try_group_on_codes(agg, outer)? {
            Some(grouped) => grouped,
            None => {
                let input = self.execute_plan(&agg.input, outer)?;
                self.group_by_values(agg, input, outer)?
            }
        };
        self.finish_aggregate(agg, grouped, outer)
    }

    /// The standard grouping path: evaluate the group expressions per input
    /// row and hash the key values, preserving first-seen group order. The
    /// index map *owns* each key (moved in, never cloned); lookups borrow
    /// the candidate key.
    fn group_by_values(
        &self,
        agg: &HashAggregate,
        input: Relation,
        outer: Option<&Env>,
    ) -> Result<GroupedInput> {
        let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut members: Vec<Vec<usize>> = Vec::new();
        for (i, row) in input.rows.iter().enumerate() {
            let env = Env {
                schema: &input.schema,
                row,
                parent: outer,
            };
            let key = agg
                .group_exprs
                .iter()
                .map(|e| self.eval(e, &env))
                .collect::<Result<Vec<_>>>()?;
            match group_index.get(key.as_slice()) {
                Some(&g) => members[g].push(i),
                None => {
                    members.push(vec![i]);
                    group_index.insert(key, members.len() - 1);
                }
            }
        }
        let mut keys: Vec<Vec<Value>> = vec![Vec::new(); members.len()];
        for (key, g) in group_index {
            keys[g] = key;
        }
        Ok(GroupedInput {
            input,
            keys,
            members,
        })
    }

    /// Evaluate aggregates, HAVING and the output items per group — the
    /// shared back half of hash aggregation, identical for both serial
    /// grouping paths.
    fn finish_aggregate(
        &self,
        agg: &HashAggregate,
        grouped: GroupedInput,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let GroupedInput {
            input,
            mut keys,
            mut members,
        } = grouped;
        // Aggregates without GROUP BY over empty input still produce one row.
        if members.is_empty() && agg.group_exprs.is_empty() {
            members.push(Vec::new());
            keys.push(Vec::new());
        }

        // A group with no members (global aggregate over an empty input) still
        // needs a representative row so that non-aggregated columns (e.g. the
        // constant factors of inlined conversion functions) resolve — to NULL.
        let null_row: SharedRow = vec![Value::Null; input.schema.len()].into();
        let mut agg_values: Vec<Vec<Value>> = Vec::with_capacity(keys.len());
        let mut reps: Vec<SharedRow> = Vec::with_capacity(keys.len());
        for group_members in &members {
            let mut per_group = Vec::with_capacity(agg.aggregates.len());
            for call in &agg.aggregates {
                per_group.push(self.eval_aggregate(call, &input, group_members, outer)?);
            }
            agg_values.push(per_group);
            reps.push(
                group_members
                    .first()
                    .map(|&i| SharedRow::clone(&input.rows[i]))
                    .unwrap_or_else(|| SharedRow::clone(&null_row)),
            );
        }
        self.emit_groups(agg, &input.schema, &keys, &agg_values, &reps, outer)
    }

    /// Evaluate HAVING and the output items per group and assemble the
    /// output relation — the shared back half of *every* aggregation path
    /// (serial and morsel-parallel), operating on precomputed per-group
    /// aggregate values and representative rows.
    fn emit_groups(
        &self,
        agg: &HashAggregate,
        schema: &Schema,
        keys: &[Vec<Value>],
        agg_values: &[Vec<Value>],
        reps: &[SharedRow],
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let mut rows: Vec<SharedRow> = Vec::new();
        for (g, key) in keys.iter().enumerate() {
            let gctx = GroupContext {
                group_exprs: &agg.group_exprs,
                group_key: key,
                aggregates: &agg.aggregates,
                agg_values: &agg_values[g],
                env: Env {
                    schema,
                    row: &reps[g],
                    parent: outer,
                },
            };
            if let Some(h) = &agg.having {
                if !self.eval_in_group(h, &gctx)?.as_bool().unwrap_or(false) {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(agg.items.len());
            for item in &agg.items {
                match item {
                    SelectItem::Wildcard => out_row.extend(gctx.env.row.iter().cloned()),
                    SelectItem::QualifiedWildcard(q) => {
                        for idx in gctx.env.schema.indices_of_qualifier(q) {
                            out_row.push(gctx.env.row[idx].clone());
                        }
                    }
                    SelectItem::Expr { expr, .. } => out_row.push(self.eval_in_group(expr, &gctx)?),
                }
            }
            rows.push(out_row.into());
        }
        if agg.distinct {
            dedup_visible(&mut rows, agg.visible_width);
        }
        Ok(Relation {
            schema: agg.schema.clone(),
            rows,
        })
    }

    /// Code-space grouping: when the aggregation input is a base-table scan
    /// over columnar buckets whose group keys are plain columns with at
    /// least one dictionary-encoded among them, perform the scan and the
    /// grouping in one pass — per bucket, rows map their group through a
    /// small `codes -> group` memo (one key *evaluation* per distinct code
    /// combination instead of one per row; Q1's `l_returnflag, l_linestatus`
    /// hashes two `u32`s per row instead of two strings).
    ///
    /// Returns `None` (deferring to the standard path) whenever any piece
    /// does not fit: non-column group keys, row-layout tables, interpreted
    /// conjuncts (their error/UDF evaluation order must stay identical to
    /// the hybrid scan), no dictionary-encoded group column anywhere, or a
    /// scan large enough to fan out to worker threads — this path scans
    /// serially, and losing the parallel fan-out would cost more than
    /// per-row key hashing saves, so such scans keep the standard
    /// scan-then-group pipeline. Buckets whose group columns were demoted
    /// below the scan still group correctly — they evaluate key values per
    /// row, same as the standard path — and buckets this executor re-scans
    /// repeatedly (correlated sub-queries) switch to the shared
    /// once-materialized row cache ([`Executor::repeated_bucket_rows`]),
    /// same as the standard path. Results are identical to the standard
    /// path by construction: rows are visited in bucket order, groups keep
    /// first-seen order, and the memoized key values are exactly the
    /// column values.
    fn try_group_on_codes(
        &self,
        agg: &HashAggregate,
        outer: Option<&Env>,
    ) -> Result<Option<GroupedInput>> {
        let _ = outer; // group keys are scan columns; outer rows never resolve them
        if !self.engine.config().dictionary_encoding || agg.group_exprs.is_empty() {
            return Ok(None);
        }
        let Plan::SeqScan(scan) = agg.input.as_ref() else {
            return Ok(None);
        };
        let Ok(table) = self.engine.database().table(&scan.table) else {
            return Ok(None);
        };
        if !table.is_columnar() {
            return Ok(None);
        }
        let mut group_cols: Vec<usize> = Vec::with_capacity(agg.group_exprs.len());
        for e in &agg.group_exprs {
            match e {
                Expr::Column(c) => match scan.schema.resolve(c) {
                    Some(idx) => group_cols.push(idx),
                    None => return Ok(None),
                },
                _ => return Ok(None),
            }
        }

        let prune_keys = self.effective_prune_keys(scan, table.partition_column());
        let bucket_filter = self.compile_bucket_filter(scan, prune_keys.is_some());
        if !bucket_filter.iter().all(CompiledPred::is_fast) {
            return Ok(None);
        }
        let loose_filter = if self.visible_loose_rows(table).is_empty() {
            Vec::new()
        } else {
            self.compile_full_scan_filter(scan)
        };
        if !loose_filter.iter().all(CompiledPred::is_fast) {
            return Ok(None);
        }

        let (selected, buckets_scanned, buckets_pruned) =
            select_buckets(table, &prune_keys, self.snapshot.as_ref());
        let any_dict_group = selected.iter().any(|&(b, _)| {
            b.as_columns()
                .is_some_and(|c| group_cols.iter().any(|&g| c.column(g).is_dict()))
        });
        if !any_dict_group {
            return Ok(None);
        }
        // A scan the worker pool would engage keeps the standard path — its
        // aggregation runs morsel-parallel end to end (or, when
        // `try_parallel_aggregate` declined for sub-query reasons, at least
        // its scan pools), and this one-pass grouping scan runs serially.
        let total_rows: usize = selected.iter().map(|&(_, v)| v).sum();
        let step = morsel_rows(&self.engine.config());
        if scan_worker_count(
            effective_parallel_budget(&self.engine.config()),
            morsel_count(&selected, step),
            total_rows,
        ) > 1
        {
            return Ok(None);
        }

        let mut rows: Vec<SharedRow> = Vec::new();
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut tally = ScanTally::default();

        // Shared group lookup: first-seen order, keyed by value — so groups
        // merge across buckets (each bucket has its own dictionary) exactly
        // like the standard path.
        let group_of = |key: Vec<Value>,
                        group_index: &mut HashMap<Vec<Value>, usize>,
                        keys: &mut Vec<Vec<Value>>,
                        members: &mut Vec<Vec<usize>>|
         -> usize {
            match group_index.get(key.as_slice()) {
                Some(&g) => g,
                None => {
                    keys.push(key.clone());
                    members.push(Vec::new());
                    group_index.insert(key, members.len() - 1);
                    members.len() - 1
                }
            }
        };

        for &(bucket, visible) in &selected {
            let Bucket::Columnar(cols) = bucket else {
                // Defensive: columnar tables only hold columnar buckets, but
                // a row bucket would group correctly by value regardless.
                for row in bucket.iter_rows().take(visible) {
                    tally.visited += 1;
                    if !fast_filter_matches(&bucket_filter, &row) {
                        continue;
                    }
                    let key: Vec<Value> = group_cols.iter().map(|&g| row[g].clone()).collect();
                    let g = group_of(key, &mut group_index, &mut keys, &mut members);
                    members[g].push(rows.len());
                    rows.push(row);
                }
                continue;
            };
            // Participate in the repeated-scan row cache (PR 3): a bucket
            // this executor re-scans per outer row (correlated sub-queries)
            // switches to its once-materialized rows instead of
            // re-vectorizing — grouping then evaluates key values per
            // cached row, exactly like the standard path over cached rows.
            if let Some((cached, freshly_built)) = self.repeated_bucket_rows(cols, visible) {
                tally.visited += cached.len() as u64;
                if freshly_built {
                    tally.materialized += cached.len() as u64;
                }
                for row in cached.iter() {
                    if !fast_filter_matches(&bucket_filter, row) {
                        continue;
                    }
                    let key: Vec<Value> = group_cols.iter().map(|&g| row[g].clone()).collect();
                    let g = group_of(key, &mut group_index, &mut keys, &mut members);
                    members[g].push(rows.len());
                    rows.push(SharedRow::clone(row));
                }
                continue;
            }
            let visible = visible.min(cols.len());
            let mut sel = Selection::all(visible);
            for pred in &bucket_filter {
                tally.dict += eval_vectorized(pred, cols, &mut sel);
            }
            tally.visited += visible as u64;
            tally.vectorized += visible as u64;
            if cols.dict_column_count() > 0 {
                tally.dict += sel.count() as u64;
            }
            let all_dict = group_cols.iter().all(|&g| cols.column(g).is_dict());
            if all_dict {
                // Code-space grouping: one key evaluation per distinct code
                // combination, one memo hit per row after that.
                let mut memo: HashMap<Vec<u32>, usize> = HashMap::new();
                sel.for_each(|i| {
                    let codes: Vec<u32> = group_cols
                        .iter()
                        .map(|&g| {
                            let col = cols.column(g);
                            if col.is_null(i) {
                                NULL_CODE
                            } else {
                                match col.data() {
                                    crate::table::ColumnVec::Dict(d) => d.code(i),
                                    _ => unreachable!("all_dict checked above"),
                                }
                            }
                        })
                        .collect();
                    let g = match memo.get(&codes) {
                        Some(&g) => g,
                        None => {
                            let key: Vec<Value> = group_cols
                                .iter()
                                .map(|&g| cols.column(g).value(i))
                                .collect();
                            let g = group_of(key, &mut group_index, &mut keys, &mut members);
                            memo.insert(codes, g);
                            g
                        }
                    };
                    members[g].push(rows.len());
                    rows.push(cols.materialize(i));
                    tally.materialized += 1;
                    tally.dict += 1;
                });
            } else {
                // A demoted bucket: evaluate key values per row, exactly
                // like the standard path would.
                sel.for_each(|i| {
                    let key: Vec<Value> = group_cols
                        .iter()
                        .map(|&g| cols.column(g).value(i))
                        .collect();
                    let g = group_of(key, &mut group_index, &mut keys, &mut members);
                    members[g].push(rows.len());
                    rows.push(cols.materialize(i));
                    tally.materialized += 1;
                });
            }
        }
        for row in self.visible_loose_rows(table) {
            tally.visited += 1;
            if !fast_filter_matches(&loose_filter, row) {
                continue;
            }
            let key: Vec<Value> = group_cols.iter().map(|&g| row[g].clone()).collect();
            let g = group_of(key, &mut group_index, &mut keys, &mut members);
            members[g].push(rows.len());
            rows.push(SharedRow::clone(row));
        }

        self.engine.note_rows_scanned(tally.visited);
        self.engine.note_partitions(buckets_scanned, buckets_pruned);
        self.engine
            .note_vectorized(tally.vectorized, tally.materialized);
        self.engine.note_dict_kernel_rows(tally.dict);
        Ok(Some(GroupedInput {
            input: Relation {
                schema: scan.schema.clone(),
                rows,
            },
            keys,
            members,
        }))
    }

    /// Morsel-parallel aggregation: when the aggregation input is a plain
    /// base-table scan large enough for the worker pool, run
    /// scan → filter → partial aggregation per morsel on the pool and merge
    /// the per-morsel partial states in morsel order — Q1/Q6-style
    /// scan-and-aggregate queries parallelize end to end instead of only at
    /// selection, and the input rows are never collected into one relation
    /// (each worker keeps at most a morsel's rows live). Merging in morsel
    /// order reproduces the serial path exactly: groups keep first-seen
    /// order and every aggregate's values fold in row order (float SUM/AVG
    /// are not associative, so fold order is part of result identity).
    /// Loose rows (bounded at the snapshot) fold in serially after the
    /// pool; HAVING, the output items and DISTINCT run on the coordinator
    /// via the shared [`Executor::emit_groups`] back half.
    ///
    /// Returns `None` — deferring to the serial paths — for correlated
    /// inputs (an outer row in scope), non-scan inputs, sub-query-bearing
    /// group or aggregate expressions (each worker would re-execute the
    /// sub-query against its own cold cache), and scans the pool would not
    /// engage anyway. UDFs in group keys or aggregate arguments are fine:
    /// they evaluate on the workers, and the engine's UDF registry is
    /// shared and thread-safe, so call/cache-hit totals stay exact.
    fn try_parallel_aggregate(
        &self,
        agg: &HashAggregate,
        outer: Option<&Env>,
    ) -> Result<Option<Relation>> {
        if outer.is_some() {
            return Ok(None);
        }
        let Plan::SeqScan(scan) = agg.input.as_ref() else {
            return Ok(None);
        };
        let Ok(table) = self.engine.database().table(&scan.table) else {
            return Ok(None);
        };
        if agg.group_exprs.iter().any(contains_subquery)
            || agg
                .aggregates
                .iter()
                .any(|c| c.args.iter().any(contains_subquery))
        {
            return Ok(None);
        }
        let budget = effective_parallel_budget(&self.engine.config());
        if budget <= 1 {
            return Ok(None);
        }
        let prune_keys = self.effective_prune_keys(scan, table.partition_column());
        let (selected, buckets_scanned, buckets_pruned) =
            select_buckets(table, &prune_keys, self.snapshot.as_ref());
        let total: usize = selected.iter().map(|&(_, v)| v).sum();
        let morsels = build_morsels(&selected, morsel_rows(&self.engine.config()));
        let threads = scan_worker_count(budget, morsels.len(), total);
        if threads <= 1 {
            return Ok(None);
        }
        let bucket_filter = self.compile_bucket_filter(scan, prune_keys.is_some());
        // Plain-column group keys unlock the per-morsel code memo over
        // dictionary-encoded buckets (the worker-side analogue of
        // `try_group_on_codes`).
        let group_cols: Option<Vec<usize>> = agg
            .group_exprs
            .iter()
            .map(|e| match e {
                Expr::Column(c) => scan.schema.resolve(c),
                _ => None,
            })
            .collect();

        let partials =
            run_morsel_pool(self.engine, &self.params, threads, &morsels, |worker, m| {
                worker.agg_morsel_partial(
                    selected[m.bucket].0,
                    m,
                    &bucket_filter,
                    agg,
                    &scan.schema,
                    group_cols.as_deref(),
                )
            })?;

        // Merge partial states in morsel order: first-seen group order and
        // per-group value order match the serial single pass exactly.
        let mut tally = ScanTally::default();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut merged = AggPartial::with_aggregates(agg.aggregates.len());
        let merges = partials.len() as u64;
        for partial in partials {
            tally.absorb(partial.tally);
            let AggPartial {
                keys,
                reps,
                counts,
                mut args,
                ..
            } = partial;
            for (p, key) in keys.into_iter().enumerate() {
                let g = merged.group_of(key, &mut index, &reps[p]);
                merged.counts[g] += counts[p];
                for (a, per_agg) in args.iter_mut().enumerate() {
                    merged.args[a][g].append(&mut per_agg[p]);
                }
            }
        }

        // Loose rows carry arbitrary partition keys; fold them in serially
        // (they are few — the write path spills them only until the next
        // bucket rebuild) with the same filter choice as the serial scan.
        let loose_filter = if prune_keys.is_none() {
            Some(bucket_filter)
        } else if self.visible_loose_rows(table).is_empty() {
            None
        } else {
            Some(self.compile_full_scan_filter(scan))
        };
        if let Some(loose_filter) = &loose_filter {
            for row in self.visible_loose_rows(table) {
                tally.visited += 1;
                if !self.filter_matches(loose_filter, &scan.schema, row, None)? {
                    continue;
                }
                let env = Env {
                    schema: &scan.schema,
                    row,
                    parent: None,
                };
                let key = agg
                    .group_exprs
                    .iter()
                    .map(|e| self.eval(e, &env))
                    .collect::<Result<Vec<_>>>()?;
                let g = merged.group_of(key, &mut index, row);
                self.accumulate_partial(agg, &mut merged, g, &env)?;
            }
        }

        self.engine.note_rows_scanned(tally.visited);
        self.engine.note_partitions(buckets_scanned, buckets_pruned);
        self.engine
            .note_vectorized(tally.vectorized, tally.materialized);
        self.engine.note_dict_kernel_rows(tally.dict);
        self.engine.note_parallel_scan();
        self.engine
            .note_morsel_scan(morsels.len() as u64, threads as u64);
        self.engine.note_partial_agg_merges(merges);

        let AggPartial {
            mut keys,
            mut reps,
            mut counts,
            mut args,
            ..
        } = merged;
        // Aggregates without GROUP BY over empty input still produce one
        // row, represented by an all-NULL row (same as the serial path).
        if keys.is_empty() && agg.group_exprs.is_empty() {
            keys.push(Vec::new());
            reps.push(vec![Value::Null; scan.schema.len()].into());
            counts.push(0);
            for per_agg in &mut args {
                per_agg.push(Vec::new());
            }
        }
        let mut agg_values: Vec<Vec<Value>> = Vec::with_capacity(keys.len());
        for g in 0..keys.len() {
            let mut per_group = Vec::with_capacity(agg.aggregates.len());
            for (a, call) in agg.aggregates.iter().enumerate() {
                per_group.push(self.fold_aggregate(
                    call,
                    std::mem::take(&mut args[a][g]),
                    counts[g] as usize,
                )?);
            }
            agg_values.push(per_group);
        }
        self.emit_groups(agg, &scan.schema, &keys, &agg_values, &reps, outer)
            .map(Some)
    }

    /// Scan one morsel and fold its qualifying rows into a partial
    /// aggregation state. Columnar buckets whose group columns are all
    /// dictionary-encoded (under an all-fast filter) group through a
    /// per-morsel `codes -> group` memo, exactly like the serial code-space
    /// path; everything else evaluates the group keys per row. Aggregate
    /// arguments evaluate per qualifying row (skipping NULLs), then the
    /// row buffer is dropped — a worker's live memory is bounded by the
    /// morsel size, not the scan size.
    fn agg_morsel_partial(
        &self,
        bucket: &Bucket,
        morsel: Morsel,
        filter: &[CompiledPred],
        agg: &HashAggregate,
        schema: &Schema,
        group_cols: Option<&[usize]>,
    ) -> Result<AggPartial> {
        let mut partial = AggPartial::with_aggregates(agg.aggregates.len());
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        if let (Bucket::Columnar(cols), Some(gcols)) = (bucket, group_cols) {
            let all_dict = !gcols.is_empty() && gcols.iter().all(|&g| cols.column(g).is_dict());
            if all_dict && filter.iter().all(CompiledPred::is_fast) {
                let Morsel { start, end, .. } = morsel;
                let mut sel = Selection::all(end - start);
                for pred in filter {
                    partial.tally.dict += eval_vectorized_range(pred, cols, start, &mut sel);
                }
                partial.tally.visited = (end - start) as u64;
                partial.tally.vectorized = (end - start) as u64;
                if cols.dict_column_count() > 0 {
                    partial.tally.dict += sel.count() as u64;
                }
                let mut memo: HashMap<Vec<u32>, usize> = HashMap::new();
                let mut survivors: Vec<usize> = Vec::with_capacity(sel.count());
                sel.for_each(|i| survivors.push(start + i));
                for i in survivors {
                    let codes: Vec<u32> = gcols
                        .iter()
                        .map(|&g| {
                            let col = cols.column(g);
                            if col.is_null(i) {
                                NULL_CODE
                            } else {
                                match col.data() {
                                    crate::table::ColumnVec::Dict(d) => d.code(i),
                                    _ => unreachable!("all_dict checked above"),
                                }
                            }
                        })
                        .collect();
                    let row = cols.materialize(i);
                    partial.tally.materialized += 1;
                    partial.tally.dict += 1;
                    let g = match memo.get(&codes) {
                        Some(&g) => g,
                        None => {
                            let key: Vec<Value> =
                                gcols.iter().map(|&g| cols.column(g).value(i)).collect();
                            let g = partial.group_of(key, &mut index, &row);
                            memo.insert(codes, g);
                            g
                        }
                    };
                    let env = Env {
                        schema,
                        row: &row,
                        parent: None,
                    };
                    self.accumulate_partial(agg, &mut partial, g, &env)?;
                }
                return Ok(partial);
            }
        }
        // Generic: scan the morsel (hybrid filter included), then group by
        // evaluated key values.
        let mut rows_buf: Vec<SharedRow> = Vec::new();
        partial.tally = self.scan_morsel(bucket, morsel, filter, schema, &mut rows_buf)?;
        for row in rows_buf {
            let env = Env {
                schema,
                row: &row,
                parent: None,
            };
            let key = agg
                .group_exprs
                .iter()
                .map(|e| self.eval(e, &env))
                .collect::<Result<Vec<_>>>()?;
            let g = partial.group_of(key, &mut index, &row);
            self.accumulate_partial(agg, &mut partial, g, &env)?;
        }
        Ok(partial)
    }

    /// Fold one qualifying row into group `g` of a partial state: bump the
    /// member count and append each aggregate's non-null argument value (in
    /// row order).
    fn accumulate_partial(
        &self,
        agg: &HashAggregate,
        partial: &mut AggPartial,
        g: usize,
        env: &Env,
    ) -> Result<()> {
        partial.counts[g] += 1;
        for (a, call) in agg.aggregates.iter().enumerate() {
            let Some(arg) = call.args.first() else {
                continue;
            };
            let v = self.eval(arg, env)?;
            if !v.is_null() {
                partial.args[a][g].push(v);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Scans
    // ------------------------------------------------------------------

    /// Execute one base-table scan: skip partition buckets the plan's pruning
    /// keys exclude, evaluate the pushed filter per visited row (vectorized
    /// for columnar buckets), and share (rather than copy) every qualifying
    /// row.
    fn exec_scan(&self, scan: &SeqScan, outer: Option<&Env>) -> Result<Relation> {
        let table = self.engine.database().table(&scan.table)?;
        let prune_keys = self.effective_prune_keys(scan, table.partition_column());

        let mut rows: Vec<SharedRow> = Vec::new();
        let mut tally = ScanTally::default();
        let (selected, buckets_scanned, buckets_pruned) =
            select_buckets(table, &prune_keys, self.snapshot.as_ref());
        let bucket_filter = self.compile_bucket_filter(scan, prune_keys.is_some());
        self.scan_buckets(
            &selected,
            &bucket_filter,
            &scan.schema,
            outer,
            &mut rows,
            &mut tally,
        )?;

        // Loose rows carry arbitrary partition keys, so the full pushed
        // filter (including pruning predicates) applies to them; the pruned
        // branch compiles it only when loose rows exist.
        let full_filter = if prune_keys.is_none() {
            // The un-pruned bucket filter already is the full pushed filter.
            Some(bucket_filter)
        } else if self.visible_loose_rows(table).is_empty() {
            None
        } else {
            Some(self.compile_full_scan_filter(scan))
        };
        if let Some(full_filter) = &full_filter {
            for row in self.visible_loose_rows(table) {
                tally.visited += 1;
                if self.filter_matches(full_filter, &scan.schema, row, outer)? {
                    rows.push(SharedRow::clone(row));
                }
            }
        }

        self.engine.note_rows_scanned(tally.visited);
        self.engine.note_partitions(buckets_scanned, buckets_pruned);
        self.engine
            .note_vectorized(tally.vectorized, tally.materialized);
        self.engine.note_dict_kernel_rows(tally.dict);
        Ok(Relation {
            schema: scan.schema.clone(),
            rows,
        })
    }

    /// The scan's effective partition-key set: the statically planned keys
    /// intersected with the key sets its parameter-dependent pruning
    /// conjuncts fold to now that parameters are bound. A conjunct whose
    /// parameters are (still) unbound simply contributes nothing — the
    /// conjunct is also part of the scan's residual filter, so correctness
    /// never depends on this pruning. `None` scans every bucket.
    ///
    /// The common case (no parameter-dependent pruning) borrows the plan's
    /// static key set — correlated sub-queries re-execute their scans per
    /// outer row, so this path must not allocate.
    pub(crate) fn effective_prune_keys<'s>(
        &self,
        scan: &'s SeqScan,
        partition_col: Option<usize>,
    ) -> std::borrow::Cow<'s, Option<std::collections::BTreeSet<i64>>> {
        use std::borrow::Cow;
        if scan.param_pruning.is_empty() || self.params.is_empty() {
            return Cow::Borrowed(&scan.prune_keys);
        }
        let Some(pidx) = partition_col else {
            return Cow::Borrowed(&scan.prune_keys);
        };
        let mut keys = scan.prune_keys.clone();
        let fold = |e: &Expr| self.fold_const(e);
        for c in &scan.param_pruning {
            if let Some(k) =
                crate::conjuncts::partition_keys_of_conjunct(c, &scan.schema, pidx, &fold)
            {
                keys = Some(match keys {
                    None => k,
                    Some(prev) => prev.intersection(&k).copied().collect(),
                });
            }
        }
        Cow::Owned(keys)
    }

    /// The table's loose rows, bounded at the executor's pinned snapshot.
    /// Like `select_buckets`, a snapshot predating an open transaction's
    /// rewrite reads the retained pre-rewrite shadow.
    fn visible_loose_rows<'t>(&self, table: &'t crate::table::Table) -> &'t [SharedRow] {
        let view = table.read_at(self.snapshot.as_ref());
        let loose = view.loose_rows();
        &loose[..view.visible_loose_len().min(loose.len())]
    }

    /// Scan the selected buckets, serially or morsel-driven on a scoped
    /// worker pool: the buckets split into fixed-size row-range morsels
    /// pulled by the workers, each worker runs the whole filter per morsel
    /// (column kernels first, interpreted conjuncts on the late-materialized
    /// survivors), and per-morsel outputs merge in morsel order — results
    /// and row order are identical to the serial scan by construction.
    /// Filters with interpreted conjuncts pool too (each worker evaluates
    /// through its own executor); only correlated scans under an outer row
    /// with interpreted conjuncts stay serial, because those conjuncts must
    /// resolve against the coordinator's environment chain. Columnar buckets
    /// are scanned vectorized on every path.
    fn scan_buckets(
        &self,
        selected: &[(&Bucket, usize)],
        filter: &[CompiledPred],
        schema: &Schema,
        outer: Option<&Env>,
        rows: &mut Vec<SharedRow>,
        tally: &mut ScanTally,
    ) -> Result<()> {
        let total: usize = selected.iter().map(|&(_, v)| v).sum();
        let budget = effective_parallel_budget(&self.engine.config());
        let fast = filter.iter().all(CompiledPred::is_fast);
        let pool = if budget > 1 && (fast || outer.is_none()) {
            let morsels = build_morsels(selected, morsel_rows(&self.engine.config()));
            let threads = scan_worker_count(budget, morsels.len(), total);
            (threads > 1).then_some((morsels, threads))
        } else {
            None
        };
        if let Some((morsels, threads)) = pool {
            let results =
                run_morsel_pool(self.engine, &self.params, threads, &morsels, |worker, m| {
                    let mut local: Vec<SharedRow> = Vec::new();
                    let t =
                        worker.scan_morsel(selected[m.bucket].0, m, filter, schema, &mut local)?;
                    Ok((local, t))
                })?;
            for (local, morsel_tally) in results {
                rows.extend(local);
                tally.absorb(morsel_tally);
            }
            self.engine.note_parallel_scan();
            self.engine
                .note_morsel_scan(morsels.len() as u64, threads as u64);
        } else if fast {
            for &(bucket, visible) in selected {
                tally.absorb(self.scan_bucket_fast_serial(bucket, visible, filter, rows)?);
            }
        } else {
            for &(bucket, visible) in selected {
                tally.absorb(
                    self.scan_bucket_interpreted(bucket, visible, filter, schema, outer, rows)?,
                );
            }
        }
        Ok(())
    }

    /// Scan one morsel — a row range of one bucket — through the whole
    /// filter: fast predicates run as column kernels over the range (row
    /// buckets evaluate the compiled filter per row), interpreted conjuncts
    /// run on the surviving late-materialized rows, same hybrid order as the
    /// serial columnar scan. Morsel-pool workers call this with their own
    /// executor; the range is pre-bounded at the scan's snapshot watermark
    /// by morsel construction. Deliberately bypasses the repeated-scan row
    /// cache — each pooled scan sees a fresh worker executor, so the cache
    /// could never reach its engagement threshold and would only skew
    /// the materialization accounting.
    fn scan_morsel(
        &self,
        bucket: &Bucket,
        morsel: Morsel,
        filter: &[CompiledPred],
        schema: &Schema,
        out: &mut Vec<SharedRow>,
    ) -> Result<ScanTally> {
        let mut tally = ScanTally::default();
        let Morsel { start, end, .. } = morsel;
        match bucket {
            Bucket::Rows(rows) => {
                tally.visited = (end - start) as u64;
                for row in &rows[start..end] {
                    if self.filter_matches(filter, schema, row, None)? {
                        out.push(SharedRow::clone(row));
                    }
                }
            }
            Bucket::Columnar(cols) => {
                let mut sel = Selection::all(end - start);
                for pred in filter.iter().filter(|p| p.is_fast()) {
                    tally.dict += eval_vectorized_range(pred, cols, start, &mut sel);
                }
                tally.visited = (end - start) as u64;
                tally.vectorized = (end - start) as u64;
                if cols.dict_column_count() > 0 {
                    tally.dict += sel.count() as u64;
                }
                let interpreted: Vec<&CompiledPred> =
                    filter.iter().filter(|p| !p.is_fast()).collect();
                let mut survivors: Vec<usize> = Vec::with_capacity(sel.count());
                sel.for_each(|i| survivors.push(start + i));
                for i in survivors {
                    let row = cols.materialize(i);
                    tally.materialized += 1;
                    let mut ok = true;
                    for pred in &interpreted {
                        if !self.filter_matches(std::slice::from_ref(*pred), schema, &row, None)? {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        out.push(row);
                    }
                }
            }
        }
        Ok(tally)
    }

    /// Serial fast-filter scan of one bucket: like [`scan_bucket_fast`], but
    /// a columnar bucket this executor scans repeatedly switches to its
    /// once-materialized row cache (see [`Executor::repeated_bucket_rows`]).
    fn scan_bucket_fast_serial(
        &self,
        bucket: &Bucket,
        visible: usize,
        filter: &[CompiledPred],
        out: &mut Vec<SharedRow>,
    ) -> Result<ScanTally> {
        if let Bucket::Columnar(cols) = bucket {
            if let Some((cached, freshly_built)) = self.repeated_bucket_rows(cols, visible) {
                return self.scan_cached_rows(&cached, freshly_built, filter, None, out);
            }
        }
        Ok(scan_bucket_fast(bucket, visible, filter, out))
    }

    /// Scan the once-materialized rows of a repeatedly-scanned columnar
    /// bucket. Conjuncts are evaluated in the same order as the hybrid
    /// columnar path — fast forms first, interpreted ones after — so a
    /// query's error/UDF behaviour on the columnar layout does not depend
    /// on how many times the bucket was rescanned before the cache engaged.
    fn scan_cached_rows(
        &self,
        cached: &[SharedRow],
        freshly_built: bool,
        filter: &[CompiledPred],
        interpreted_env: Option<(&Schema, Option<&Env>)>,
        out: &mut Vec<SharedRow>,
    ) -> Result<ScanTally> {
        let tally = ScanTally {
            visited: cached.len() as u64,
            vectorized: 0,
            materialized: if freshly_built {
                cached.len() as u64
            } else {
                0
            },
            dict: 0,
        };
        let interpreted: Vec<&CompiledPred> = filter.iter().filter(|p| !p.is_fast()).collect();
        'rows: for row in cached {
            for pred in filter.iter().filter(|p| p.is_fast()) {
                if !fast_pred_matches(pred, row) {
                    continue 'rows;
                }
            }
            if let Some((schema, outer)) = interpreted_env {
                for pred in &interpreted {
                    if !self.filter_matches(std::slice::from_ref(*pred), schema, row, outer)? {
                        continue 'rows;
                    }
                }
            }
            out.push(SharedRow::clone(row));
        }
        Ok(tally)
    }

    /// Scan one bucket with a filter containing interpreted
    /// ([`CompiledPred::Generic`]) conjuncts. Row buckets evaluate the whole
    /// filter per row; columnar buckets run a *hybrid* scan — the fast
    /// predicates narrow the selection as column kernels first, and only the
    /// surviving rows are materialized and checked against the interpreted
    /// conjuncts. The conjuncts are side-effect-free boolean filters under
    /// AND, so the reordering cannot change the qualifying row set; what it
    /// *can* change is error/UDF behaviour — an interpreted conjunct listed
    /// before a fast one is never evaluated (and thus cannot raise an
    /// evaluation error or count UDF calls) for rows the fast conjunct
    /// rejects, whereas the row path evaluates strictly in list order.
    fn scan_bucket_interpreted(
        &self,
        bucket: &Bucket,
        visible: usize,
        filter: &[CompiledPred],
        schema: &Schema,
        outer: Option<&Env>,
        rows: &mut Vec<SharedRow>,
    ) -> Result<ScanTally> {
        let mut tally = ScanTally::default();
        match bucket {
            Bucket::Rows(bucket_rows) => {
                for row in &bucket_rows[..visible.min(bucket_rows.len())] {
                    tally.visited += 1;
                    if self.filter_matches(filter, schema, row, outer)? {
                        rows.push(SharedRow::clone(row));
                    }
                }
            }
            Bucket::Columnar(cols) => {
                if let Some((cached, freshly_built)) = self.repeated_bucket_rows(cols, visible) {
                    tally.absorb(self.scan_cached_rows(
                        &cached,
                        freshly_built,
                        filter,
                        Some((schema, outer)),
                        rows,
                    )?);
                    return Ok(tally);
                }
                let visible = visible.min(cols.len());
                let mut sel = Selection::all(visible);
                for pred in filter.iter().filter(|p| p.is_fast()) {
                    tally.dict += eval_vectorized(pred, cols, &mut sel);
                }
                tally.visited += visible as u64;
                tally.vectorized += visible as u64;
                if cols.dict_column_count() > 0 {
                    tally.dict += sel.count() as u64;
                }
                let interpreted: Vec<&CompiledPred> =
                    filter.iter().filter(|p| !p.is_fast()).collect();
                let mut survivors: Vec<usize> = Vec::with_capacity(sel.count());
                sel.for_each(|i| survivors.push(i));
                for i in survivors {
                    let row = cols.materialize(i);
                    tally.materialized += 1;
                    let mut ok = true;
                    for pred in &interpreted {
                        if !self.filter_matches(std::slice::from_ref(*pred), schema, &row, outer)? {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        rows.push(row);
                    }
                }
            }
        }
        Ok(tally)
    }

    /// The full pushed filter of a scan — pruning predicates followed by the
    /// residual ones — as applied to loose rows and un-pruned scans.
    pub(crate) fn compile_full_scan_filter(&self, scan: &SeqScan) -> Vec<CompiledPred> {
        let mut preds = self.compile_filter(&scan.pruning, &scan.schema);
        preds.extend(self.compile_filter(&scan.residual, &scan.schema));
        preds
    }

    /// The filter applied to rows *inside* the scanned partition buckets:
    /// when pruning selected the buckets, rows satisfy the pruning
    /// predicates by construction (the bucket key *is* the partition value)
    /// and only the residual conjuncts run; otherwise the full pushed
    /// filter applies. Shared by the batch scan, the code-space grouping
    /// scan and the streaming cursor so the choice can never drift apart.
    pub(crate) fn compile_bucket_filter(&self, scan: &SeqScan, pruned: bool) -> Vec<CompiledPred> {
        if pruned {
            self.compile_filter(&scan.residual, &scan.schema)
        } else {
            self.compile_full_scan_filter(scan)
        }
    }

    /// Does this scan's per-bucket filter compile entirely to fast predicate
    /// forms? Fast filters run on the parallel fan-out path and — for
    /// columnar buckets — fully as column kernels. (Used by the EXPLAIN
    /// renderer.)
    pub(crate) fn scan_compiles_fast(&self, scan: &SeqScan) -> bool {
        let filter = if scan.prune_keys.is_some() {
            self.compile_filter(&scan.residual, &scan.schema)
        } else {
            self.compile_full_scan_filter(scan)
        };
        filter.iter().all(CompiledPred::is_fast)
    }

    /// Evaluate a column- and sub-query-free expression to a constant. Also
    /// used by the planner to fold partition-key predicates, so pruning
    /// recognises every constant form the scan filter would (functions and
    /// UDFs over literals included).
    pub(crate) fn fold_const(&self, expr: &Expr) -> Option<Value> {
        if has_columns(expr) || contains_subquery(expr) {
            return None;
        }
        let schema = Schema::new();
        let env = Env {
            schema: &schema,
            row: &[],
            parent: None,
        };
        self.eval(expr, &env).ok()
    }

    fn filter_relation(
        &self,
        rel: &Relation,
        predicates: &[Expr],
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let compiled = self.compile_filter(predicates, &rel.schema);
        let mut rows = Vec::with_capacity(rel.rows.len());
        for row in &rel.rows {
            if self.filter_matches(&compiled, &rel.schema, row, outer)? {
                rows.push(SharedRow::clone(row));
            }
        }
        Ok(Relation {
            schema: rel.schema.clone(),
            rows,
        })
    }

    // ------------------------------------------------------------------
    // Compiled scan filters
    // ------------------------------------------------------------------

    /// Compile conjuncts into the fast per-row predicate forms where possible
    /// (pre-resolved column index, pre-folded constants, precompiled LIKE
    /// patterns); everything else falls back to interpreted evaluation.
    pub(crate) fn compile_filter(&self, conjuncts: &[Expr], schema: &Schema) -> Vec<CompiledPred> {
        conjuncts
            .iter()
            .map(|c| self.compile_pred(c, schema))
            .collect()
    }

    fn compile_pred(&self, conjunct: &Expr, schema: &Schema) -> CompiledPred {
        let column_index = |e: &Expr| match e {
            Expr::Column(c) => schema.resolve(c),
            _ => None,
        };
        match conjunct {
            Expr::BinaryOp { left, op, right }
                if matches!(
                    op,
                    BinaryOperator::Eq
                        | BinaryOperator::NotEq
                        | BinaryOperator::Lt
                        | BinaryOperator::LtEq
                        | BinaryOperator::Gt
                        | BinaryOperator::GtEq
                ) =>
            {
                if let (Some(idx), Some(value)) = (column_index(left), self.fold_const(right)) {
                    return CompiledPred::Compare {
                        idx,
                        op: *op,
                        value,
                    };
                }
                if let (Some(idx), Some(value)) = (column_index(right), self.fold_const(left)) {
                    return CompiledPred::Compare {
                        idx,
                        op: flip_comparison(*op),
                        value,
                    };
                }
                CompiledPred::Generic(conjunct.clone())
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                if let Some(idx) = column_index(expr) {
                    let values: Option<Vec<Value>> =
                        list.iter().map(|i| self.fold_const(i)).collect();
                    if let Some(values) = values {
                        return CompiledPred::InSet {
                            idx,
                            values,
                            negated: *negated,
                        };
                    }
                }
                CompiledPred::Generic(conjunct.clone())
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                if let (Some(idx), Some(lo), Some(hi)) = (
                    column_index(expr),
                    self.fold_const(low),
                    self.fold_const(high),
                ) {
                    return CompiledPred::Between {
                        idx,
                        lo,
                        hi,
                        negated: *negated,
                    };
                }
                CompiledPred::Generic(conjunct.clone())
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                if let (Some(idx), Expr::Literal(Literal::String(p))) =
                    (column_index(expr), pattern.as_ref())
                {
                    return CompiledPred::Like {
                        idx,
                        pattern: self.compiled_like(p),
                        negated: *negated,
                    };
                }
                CompiledPred::Generic(conjunct.clone())
            }
            other => CompiledPred::Generic(other.clone()),
        }
    }

    /// `true` when every compiled conjunct accepts the row. The fast forms
    /// compare against borrowed values; only the generic fallback builds an
    /// evaluation environment.
    pub(crate) fn filter_matches(
        &self,
        filter: &[CompiledPred],
        schema: &Schema,
        row: &[Value],
        outer: Option<&Env>,
    ) -> Result<bool> {
        for pred in filter {
            let ok = match pred {
                CompiledPred::Generic(expr) => {
                    let env = Env {
                        schema,
                        row,
                        parent: outer,
                    };
                    self.eval(expr, &env)?.as_bool().unwrap_or(false)
                }
                fast => fast_pred_matches(fast, row),
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn hash_join(
        &self,
        left: &Relation,
        right: &Relation,
        keys: &[(Expr, Expr)],
        residual: &[Expr],
        kind: JoinKind,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let schema = left.schema.concat(&right.schema);
        // Build hash table on the right input.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, row) in right.rows.iter().enumerate() {
            let env = Env {
                schema: &right.schema,
                row,
                parent: outer,
            };
            let key = keys
                .iter()
                .map(|(_, r)| self.eval(r, &env))
                .collect::<Result<Vec<_>>>()?;
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(i);
        }
        let right_width = right.schema.len();
        let mut rows = Vec::new();
        for lrow in &left.rows {
            let lenv = Env {
                schema: &left.schema,
                row: lrow,
                parent: outer,
            };
            let key = keys
                .iter()
                .map(|(l, _)| self.eval(l, &lenv))
                .collect::<Result<Vec<_>>>()?;
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(candidates) = table.get(&key) {
                    for &ri in candidates {
                        let combined = concat_rows(lrow, &right.rows[ri]);
                        if residual.is_empty() || {
                            let env = Env {
                                schema: &schema,
                                row: &combined,
                                parent: outer,
                            };
                            let mut ok = true;
                            for r in residual {
                                if !self.eval(r, &env)?.as_bool().unwrap_or(false) {
                                    ok = false;
                                    break;
                                }
                            }
                            ok
                        } {
                            matched = true;
                            rows.push(combined.into());
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                rows.push(null_extend(lrow, right_width));
            }
        }
        Ok(Relation { schema, rows })
    }

    /// Execute a decorrelated semi-/anti-/aggregate-join (see
    /// [`crate::decorrelate`]): materialize the build (right) side once,
    /// project its keys into a hash map (NULL keys skipped — they equal
    /// nothing), and filter the probe (left) side by key membership,
    /// emitting probe rows unchanged and in order. When the probe side is a
    /// base-table scan with plain column keys, the probe runs *inside* the
    /// scan pipeline ([`Executor::key_join_scan`]); otherwise the probe plan
    /// materializes and filters row-wise through the environment chain.
    fn key_join(
        &self,
        left: &Plan,
        right: &Plan,
        keys: &[(Expr, Expr)],
        residual: &[Expr],
        variant: JoinVariant,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let build = self.execute_plan(right, outer)?;
        let mut map: HashMap<Vec<Value>, usize> = HashMap::with_capacity(build.rows.len());
        for (i, row) in build.rows.iter().enumerate() {
            let env = Env {
                schema: &build.schema,
                row,
                parent: outer,
            };
            let key = keys
                .iter()
                .map(|(_, r)| self.eval(r, &env))
                .collect::<Result<Vec<_>>>()?;
            if key.iter().any(Value::is_null) {
                continue;
            }
            map.entry(key).or_insert(i);
        }
        self.engine.note_subquery_unnested(1);

        if let Plan::SeqScan(scan) = left {
            if let Some(rel) =
                self.key_join_scan(scan, keys, residual, variant, &build, &map, outer)?
            {
                return Ok(rel);
            }
        }
        let l = self.execute_plan(left, outer)?;
        let combined = l.schema.concat(&build.schema);
        let mut rows = Vec::new();
        for lrow in &l.rows {
            let env = Env {
                schema: &l.schema,
                row: lrow,
                parent: outer,
            };
            let key = keys
                .iter()
                .map(|(p, _)| self.eval(p, &env))
                .collect::<Result<Vec<_>>>()?;
            if self.key_probe_matches(
                &key, variant, &map, &build, residual, lrow, &combined, outer,
            )? {
                rows.push(SharedRow::clone(lrow));
            }
        }
        Ok(Relation {
            schema: l.schema,
            rows,
        })
    }

    /// Membership outcome of one probe row against the build-key map. The
    /// `Single` variant looks up its (unique) build row, NULL-extends on a
    /// miss, and evaluates the rewritten comparison over the concatenated
    /// row — a miss therefore compares against NULL aggregates and fails,
    /// matching the interpreted aggregate over an empty inner set.
    #[allow(clippy::too_many_arguments)]
    fn key_probe_matches(
        &self,
        key: &[Value],
        variant: JoinVariant,
        map: &HashMap<Vec<Value>, usize>,
        build: &Relation,
        residual: &[Expr],
        lrow: &[Value],
        combined: &Schema,
        outer: Option<&Env>,
    ) -> Result<bool> {
        let has_null = key.iter().any(Value::is_null);
        match variant {
            JoinVariant::Semi => Ok(!has_null && map.contains_key(key)),
            JoinVariant::Anti => Ok(has_null || !map.contains_key(key)),
            JoinVariant::Single => {
                let hit = if has_null {
                    None
                } else {
                    map.get(key).copied()
                };
                let row = match hit {
                    Some(i) => concat_rows(lrow, &build.rows[i]),
                    None => {
                        let mut r = Vec::with_capacity(lrow.len() + build.schema.len());
                        r.extend_from_slice(lrow);
                        r.extend(std::iter::repeat_n(Value::Null, build.schema.len()));
                        r
                    }
                };
                let env = Env {
                    schema: combined,
                    row: &row,
                    parent: outer,
                };
                for r in residual {
                    if !self.eval(r, &env)?.as_bool().unwrap_or(false) {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            JoinVariant::Plain(_) => unreachable!("plain joins use hash_join"),
        }
    }

    /// Probe a decorrelated join inside the probe-side scan itself:
    /// snapshot-bounded bucket selection, the scan's compiled filter — plus,
    /// for semi joins, the build-key columns injected as membership kernels
    /// ([`CompiledPred::KeySet`], code space on dictionary-encoded keys), so
    /// non-matching rows are never materialized — and the PR 7 morsel pool
    /// with the key probe running per morsel on the workers. Returns `None`
    /// when a probe key is not a plain scan column; the caller falls back to
    /// materialize-then-filter (correctness never depends on this path).
    #[allow(clippy::too_many_arguments)]
    fn key_join_scan(
        &self,
        scan: &SeqScan,
        keys: &[(Expr, Expr)],
        residual: &[Expr],
        variant: JoinVariant,
        build: &Relation,
        map: &HashMap<Vec<Value>, usize>,
        outer: Option<&Env>,
    ) -> Result<Option<Relation>> {
        let mut key_cols = Vec::with_capacity(keys.len());
        for (probe, _) in keys {
            let Expr::Column(c) = probe else {
                return Ok(None);
            };
            let Some(idx) = scan.schema.resolve(c) else {
                return Ok(None);
            };
            key_cols.push(idx);
        }

        let table = self.engine.database().table(&scan.table)?;
        let prune_keys = self.effective_prune_keys(scan, table.partition_column());
        let (selected, buckets_scanned, buckets_pruned) =
            select_buckets(table, &prune_keys, self.snapshot.as_ref());
        let mut bucket_filter = self.compile_bucket_filter(scan, prune_keys.is_some());
        // Per-column build-key sets are a superset filter for multi-key
        // joins; the exact tuple probe below still runs on the survivors.
        // Anti/aggregate joins keep (or NULL-extend) non-matching rows, so
        // only semi joins may pre-filter.
        if variant == JoinVariant::Semi {
            for (i, &idx) in key_cols.iter().enumerate() {
                // The only legal key-set injection site: a decorrelated
                // probe's own scan columns. Under verification, re-check the
                // resolved index against the scan schema before the kernel
                // is installed (the static verifier cannot see this far).
                if crate::verify::verify_enabled(&self.engine.config) && idx >= scan.schema.len() {
                    return Err(crate::verify::PlanError {
                        class: crate::verify::PlanErrorClass::Variant,
                        node: format!("SeqScan {}", scan.table),
                        detail: format!(
                            "key-set kernel column {idx} out of probe schema width {}",
                            scan.schema.len()
                        ),
                    }
                    .into());
                }
                let set: HashSet<Value> = map.keys().map(|k| k[i].clone()).collect();
                bucket_filter.push(CompiledPred::KeySet {
                    idx,
                    set: Arc::new(set),
                });
            }
        }

        let combined = scan.schema.concat(&build.schema);
        let probe_key = |key: &mut Vec<Value>, row: &[Value]| {
            key.clear();
            key.extend(key_cols.iter().map(|&i| row[i].clone()));
        };
        let total: usize = selected.iter().map(|&(_, v)| v).sum();
        let budget = effective_parallel_budget(&self.engine.config());
        let fast = bucket_filter.iter().all(CompiledPred::is_fast);
        let mut rows: Vec<SharedRow> = Vec::new();
        let mut tally = ScanTally::default();
        // Same pool gate as `scan_buckets`; the probe itself is pool-safe by
        // construction (keys read by index, and the rewritten residual only
        // references the probe and build schemas — see `decorrelate`).
        let pool = if budget > 1 && (fast || outer.is_none()) {
            let morsels = build_morsels(&selected, morsel_rows(&self.engine.config()));
            let threads = scan_worker_count(budget, morsels.len(), total);
            (threads > 1).then_some((morsels, threads))
        } else {
            None
        };
        if let Some((morsels, threads)) = pool {
            let results =
                run_morsel_pool(self.engine, &self.params, threads, &morsels, |worker, m| {
                    let mut local: Vec<SharedRow> = Vec::new();
                    let t = worker.scan_morsel(
                        selected[m.bucket].0,
                        m,
                        &bucket_filter,
                        &scan.schema,
                        &mut local,
                    )?;
                    let mut kept: Vec<SharedRow> = Vec::with_capacity(local.len());
                    let mut key: Vec<Value> = Vec::with_capacity(key_cols.len());
                    for row in local {
                        probe_key(&mut key, &row);
                        if worker.key_probe_matches(
                            &key, variant, map, build, residual, &row, &combined, None,
                        )? {
                            kept.push(row);
                        }
                    }
                    Ok((kept, t))
                })?;
            for (local, t) in results {
                rows.extend(local);
                tally.absorb(t);
            }
            self.engine.note_parallel_scan();
            self.engine
                .note_morsel_scan(morsels.len() as u64, threads as u64);
        } else {
            let mut scanned: Vec<SharedRow> = Vec::new();
            if fast {
                for &(bucket, visible) in &selected {
                    tally.absorb(self.scan_bucket_fast_serial(
                        bucket,
                        visible,
                        &bucket_filter,
                        &mut scanned,
                    )?);
                }
            } else {
                for &(bucket, visible) in &selected {
                    tally.absorb(self.scan_bucket_interpreted(
                        bucket,
                        visible,
                        &bucket_filter,
                        &scan.schema,
                        outer,
                        &mut scanned,
                    )?);
                }
            }
            let mut key: Vec<Value> = Vec::with_capacity(key_cols.len());
            for row in scanned {
                probe_key(&mut key, &row);
                if self.key_probe_matches(
                    &key, variant, map, build, residual, &row, &combined, outer,
                )? {
                    rows.push(row);
                }
            }
        }

        // Loose rows: full pushed filter (the bucket filter already is the
        // full filter when nothing was pruned), then the exact key probe.
        let full_filter = if prune_keys.is_none() {
            Some(bucket_filter)
        } else if self.visible_loose_rows(table).is_empty() {
            None
        } else {
            Some(self.compile_full_scan_filter(scan))
        };
        if let Some(full_filter) = &full_filter {
            let mut key: Vec<Value> = Vec::with_capacity(key_cols.len());
            for row in self.visible_loose_rows(table) {
                tally.visited += 1;
                if self.filter_matches(full_filter, &scan.schema, row, outer)? {
                    probe_key(&mut key, row);
                    if self.key_probe_matches(
                        &key, variant, map, build, residual, row, &combined, outer,
                    )? {
                        rows.push(SharedRow::clone(row));
                    }
                }
            }
        }

        self.engine.note_rows_scanned(tally.visited);
        self.engine.note_partitions(buckets_scanned, buckets_pruned);
        self.engine
            .note_vectorized(tally.vectorized, tally.materialized);
        self.engine.note_dict_kernel_rows(tally.dict);
        Ok(Some(Relation {
            schema: scan.schema.clone(),
            rows,
        }))
    }

    fn nested_loop_join(
        &self,
        left: &Relation,
        right: &Relation,
        conjuncts: &[Expr],
        kind: JoinKind,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let schema = left.schema.concat(&right.schema);
        let right_width = right.schema.len();
        let mut rows = Vec::new();
        for lrow in &left.rows {
            let mut matched = false;
            for rrow in &right.rows {
                let combined = concat_rows(lrow, rrow);
                let env = Env {
                    schema: &schema,
                    row: &combined,
                    parent: outer,
                };
                let mut ok = true;
                for c in conjuncts {
                    if !self.eval(c, &env)?.as_bool().unwrap_or(false) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    matched = true;
                    rows.push(combined.into());
                }
            }
            if !matched && kind == JoinKind::Left {
                rows.push(null_extend(lrow, right_width));
            }
        }
        Ok(Relation { schema, rows })
    }

    // ------------------------------------------------------------------
    // Aggregates
    // ------------------------------------------------------------------

    /// Evaluate one aggregate over a group's member rows: collect the
    /// argument's non-null values in row order, then fold them via
    /// [`Executor::fold_aggregate`].
    fn eval_aggregate(
        &self,
        agg: &FunctionCall,
        input: &Relation,
        members: &[usize],
        outer: Option<&Env>,
    ) -> Result<Value> {
        // COUNT(*) — no argument; folds from the member count alone.
        let Some(arg) = agg.args.first() else {
            return self.fold_aggregate(agg, Vec::new(), members.len());
        };
        let mut values = Vec::with_capacity(members.len());
        for &i in members {
            let env = Env {
                schema: &input.schema,
                row: &input.rows[i],
                parent: outer,
            };
            let v = self.eval(arg, &env)?;
            if !v.is_null() {
                values.push(v);
            }
        }
        self.fold_aggregate(agg, values, members.len())
    }

    /// Fold an aggregate over its collected non-null argument values (in
    /// row order — float SUM/AVG are not associative, so the order is part
    /// of result identity). The morsel-parallel path concatenates per-morsel
    /// value lists in morsel order and folds here once per group, so DISTINCT
    /// dedup (first occurrence wins) and the fold itself are shared verbatim
    /// with the serial path.
    fn fold_aggregate(
        &self,
        agg: &FunctionCall,
        mut values: Vec<Value>,
        member_count: usize,
    ) -> Result<Value> {
        let name = agg.name.to_ascii_uppercase();
        if agg.args.is_empty() {
            if name != "COUNT" {
                return err(format!("aggregate `{name}` requires an argument"));
            }
            return Ok(Value::Int(member_count as i64));
        }
        if agg.distinct {
            let mut seen = std::collections::HashSet::new();
            values.retain(|v| seen.insert(v.clone()));
        }
        match name.as_str() {
            "COUNT" => Ok(Value::Int(values.len() as i64)),
            "SUM" => {
                if values.is_empty() {
                    return Ok(Value::Null);
                }
                let mut acc = Value::Int(0);
                for v in &values {
                    acc = acc.add(v)?;
                }
                Ok(acc)
            }
            "AVG" => {
                if values.is_empty() {
                    return Ok(Value::Null);
                }
                let mut acc = 0.0;
                for v in &values {
                    acc += v
                        .as_f64()
                        .ok_or_else(|| EngineError::new("AVG over non-numeric value"))?;
                }
                Ok(Value::Float(acc / values.len() as f64))
            }
            "MIN" => Ok(values
                .into_iter()
                .reduce(|a, b| {
                    if b.compare(&a) == Some(Ordering::Less) {
                        b
                    } else {
                        a
                    }
                })
                .unwrap_or(Value::Null)),
            "MAX" => Ok(values
                .into_iter()
                .reduce(|a, b| {
                    if b.compare(&a) == Some(Ordering::Greater) {
                        b
                    } else {
                        a
                    }
                })
                .unwrap_or(Value::Null)),
            other => err(format!("unsupported aggregate `{other}`")),
        }
    }

    fn eval_in_group(&self, expr: &Expr, ctx: &GroupContext) -> Result<Value> {
        // Group-by expressions evaluate to the group key.
        for (i, g) in ctx.group_exprs.iter().enumerate() {
            if g == expr {
                return Ok(ctx.group_key[i].clone());
            }
        }
        // Aggregates evaluate to their precomputed value.
        if let Expr::Function(fc) = expr {
            if fc.is_aggregate() {
                for (i, a) in ctx.aggregates.iter().enumerate() {
                    if a == fc {
                        return Ok(ctx.agg_values[i].clone());
                    }
                }
                return err(format!("aggregate `{}` was not precomputed", fc.name));
            }
        }
        match expr {
            Expr::Column(_) | Expr::Literal(_) => self.eval(expr, &ctx.env),
            Expr::BinaryOp { left, op, right } => {
                let l = self.eval_in_group(left, ctx)?;
                let r = self.eval_in_group(right, ctx)?;
                apply_binary(*op, l, r)
            }
            Expr::UnaryOp { op, expr: inner } => {
                let v = self.eval_in_group(inner, ctx)?;
                apply_unary(*op, v)
            }
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => {
                let operand_val = operand
                    .as_ref()
                    .map(|o| self.eval_in_group(o, ctx))
                    .transpose()?;
                for (cond, out) in when_then {
                    let hit = match &operand_val {
                        Some(op_val) => {
                            let c = self.eval_in_group(cond, ctx)?;
                            op_val.sql_eq(&c).unwrap_or(false)
                        }
                        None => self.eval_in_group(cond, ctx)?.as_bool().unwrap_or(false),
                    };
                    if hit {
                        return self.eval_in_group(out, ctx);
                    }
                }
                match else_expr {
                    Some(e) => self.eval_in_group(e, ctx),
                    None => Ok(Value::Null),
                }
            }
            Expr::Function(fc) => {
                let args = fc
                    .args
                    .iter()
                    .map(|a| self.eval_in_group(a, ctx))
                    .collect::<Result<Vec<_>>>()?;
                self.call_scalar(&fc.name, &args)
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval_in_group(expr, ctx)?;
                let lo = self.eval_in_group(low, ctx)?;
                let hi = self.eval_in_group(high, ctx)?;
                Ok(Value::Bool(between_matches(&v, &lo, &hi, *negated)))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval_in_group(expr, ctx)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let mut found = false;
                for item in list {
                    if v.sql_eq(&self.eval_in_group(item, ctx)?) == Some(true) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval_in_group(expr, ctx)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval_in_group(expr, ctx)?;
                let outcome = match v.as_str() {
                    None => None,
                    Some(text) => self
                        .eval_in_group(pattern, ctx)?
                        .as_str()
                        .map(|p| self.compiled_like(p).matches(text)),
                };
                Ok(Value::Bool(outcome.map(|m| m != *negated).unwrap_or(false)))
            }
            Expr::Cast {
                expr: inner,
                data_type,
            } => {
                let v = self.eval_in_group(inner, ctx)?;
                cast_value(v, *data_type)
            }
            // Everything else (sub-queries, EXTRACT/SUBSTRING over group
            // values, ...) falls back to row-level evaluation against the
            // group's representative row.
            _ => self.eval(expr, &ctx.env),
        }
    }

    // ------------------------------------------------------------------
    // Scalar expression evaluation
    // ------------------------------------------------------------------

    /// Evaluate an expression in an environment.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Value> {
        match expr {
            Expr::Literal(l) => literal_value(l),
            Expr::Param(index) => match self.params.get(*index) {
                Some(v) => Ok(v.clone()),
                None => err(format!(
                    "parameter ${} is not bound ({} value(s) bound)",
                    index + 1,
                    self.params.len()
                )),
            },
            Expr::Column(c) => match env.lookup_ref(c) {
                Some((v, escaped)) => {
                    if escaped {
                        // Escaped to an outer row: this (sub-)query is
                        // correlated.
                        self.correlation_witness.set(true);
                    }
                    Ok(v.clone())
                }
                None => err(format!("unknown column `{}`", c.to_display())),
            },
            Expr::BinaryOp { left, op, right } => {
                // Short-circuit AND/OR on the left operand.
                match op {
                    BinaryOperator::And => {
                        let l = self.eval(left, env)?;
                        if l.as_bool() == Some(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = self.eval(right, env)?;
                        return Ok(Value::Bool(
                            l.as_bool().unwrap_or(false) && r.as_bool().unwrap_or(false),
                        ));
                    }
                    BinaryOperator::Or => {
                        let l = self.eval(left, env)?;
                        if l.as_bool() == Some(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = self.eval(right, env)?;
                        return Ok(Value::Bool(
                            l.as_bool().unwrap_or(false) || r.as_bool().unwrap_or(false),
                        ));
                    }
                    _ => {}
                }
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                apply_binary(*op, l, r)
            }
            Expr::UnaryOp { op, expr } => {
                let v = self.eval(expr, env)?;
                apply_unary(*op, v)
            }
            Expr::Function(fc) => {
                if fc.is_aggregate() {
                    return err(format!(
                        "aggregate `{}` used outside of an aggregation context",
                        fc.name
                    ));
                }
                let args = fc
                    .args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>>>()?;
                self.call_scalar(&fc.name, &args)
            }
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => {
                let operand_val = operand.as_ref().map(|o| self.eval(o, env)).transpose()?;
                for (cond, out) in when_then {
                    let hit = match &operand_val {
                        Some(op_val) => {
                            let c = self.eval(cond, env)?;
                            op_val.sql_eq(&c).unwrap_or(false)
                        }
                        None => self.eval(cond, env)?.as_bool().unwrap_or(false),
                    };
                    if hit {
                        return self.eval(out, env);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, env),
                    None => Ok(Value::Null),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, env)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let mut found = false;
                for item in list {
                    let iv = self.eval(item, env)?;
                    if v.sql_eq(&iv) == Some(true) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                // SQL three-valued logic: a NULL operand makes the outcome
                // UNKNOWN, which satisfies neither BETWEEN nor NOT BETWEEN.
                let v = self.eval(expr, env)?;
                let lo = self.eval(low, env)?;
                let hi = self.eval(high, env)?;
                Ok(Value::Bool(between_matches(&v, &lo, &hi, *negated)))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                // Literal patterns (the common case) are compiled once per
                // executor; dynamic patterns are compiled per evaluation.
                let outcome = match v.as_str() {
                    None => None,
                    Some(text) => match pattern.as_ref() {
                        Expr::Literal(Literal::String(p)) => {
                            Some(self.compiled_like(p).matches(text))
                        }
                        dynamic => self
                            .eval(dynamic, env)?
                            .as_str()
                            .map(|pat| LikePattern::new(pat).matches(text)),
                    },
                };
                Ok(Value::Bool(outcome.map(|m| m != *negated).unwrap_or(false)))
            }
            Expr::Extract { field, expr } => {
                let v = self.eval(expr, env)?;
                match v {
                    Value::Date(d) => {
                        let (y, m, day) = civil_from_days(d);
                        Ok(Value::Int(match field {
                            DateField::Year => y as i64,
                            DateField::Month => m as i64,
                            DateField::Day => day as i64,
                        }))
                    }
                    Value::Null => Ok(Value::Null),
                    other => err(format!("EXTRACT from non-date value {other:?}")),
                }
            }
            Expr::Substring {
                expr,
                start,
                length,
            } => {
                let v = self.eval(expr, env)?;
                let s = match v {
                    Value::Str(s) => s.to_string(),
                    Value::Null => return Ok(Value::Null),
                    other => other.to_string(),
                };
                let start = self.eval(start, env)?.as_i64().unwrap_or(1).max(1) as usize;
                let chars: Vec<char> = s.chars().collect();
                let from = (start - 1).min(chars.len());
                let to = match length {
                    Some(len) => {
                        let l = self.eval(len, env)?.as_i64().unwrap_or(0).max(0) as usize;
                        (from + l).min(chars.len())
                    }
                    None => chars.len(),
                };
                Ok(Value::str(chars[from..to].iter().collect::<String>()))
            }
            Expr::Cast { expr, data_type } => {
                let v = self.eval(expr, env)?;
                cast_value(v, *data_type)
            }
            Expr::Exists { query, negated } => {
                let rel = self.execute_subquery(query, env)?;
                Ok(Value::Bool(rel.rows.is_empty() == *negated))
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let rel = self.execute_subquery(query, env)?;
                let mut found = false;
                for row in &rel.rows {
                    if let Some(candidate) = row.first() {
                        if v.sql_eq(candidate) == Some(true) {
                            found = true;
                            break;
                        }
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::ScalarSubquery(query) => {
                let rel = self.execute_subquery(query, env)?;
                match rel.rows.first() {
                    Some(row) => Ok(row.first().cloned().unwrap_or(Value::Null)),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluate a scalar (non-aggregate) function: engine built-ins first,
    /// then registered UDFs.
    fn call_scalar(&self, name: &str, args: &[Value]) -> Result<Value> {
        match name.to_ascii_uppercase().as_str() {
            "CONCAT" => {
                let mut out = String::new();
                for a in args {
                    if a.is_null() {
                        return Ok(Value::Null);
                    }
                    out.push_str(&a.to_string());
                }
                Ok(Value::str(out))
            }
            "CHAR_LENGTH" | "LENGTH" => match args.first() {
                Some(Value::Str(s)) => Ok(Value::Int(s.chars().count() as i64)),
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => Ok(Value::Int(other.to_string().chars().count() as i64)),
            },
            "COALESCE" => Ok(args
                .iter()
                .find(|a| !a.is_null())
                .cloned()
                .unwrap_or(Value::Null)),
            "ABS" => match args.first() {
                Some(Value::Int(i)) => Ok(Value::Int(i.abs())),
                Some(Value::Float(f)) => Ok(Value::Float(f.abs())),
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => err(format!("ABS of non-numeric {other:?}")),
            },
            _ => self.engine.udfs().call(name, args),
        }
    }

    /// Execute a sub-query appearing inside an expression, caching the result
    /// when it turned out to be uncorrelated. The *plan* is cached either way,
    /// so a correlated sub-query re-executed per outer row is lowered once.
    fn execute_subquery(&self, query: &Query, env: &Env) -> Result<Rc<Relation>> {
        let key = query.to_string();
        if let Some(hit) = self.subquery_cache.borrow().get(&key) {
            return Ok(Rc::clone(hit));
        }
        let cached_plan = self.plan_cache.borrow().get(&key).cloned();
        let plan = match cached_plan {
            Some(plan) => plan,
            None => {
                let plan = Rc::new(Planner::new(self.engine).plan_query(query)?);
                if crate::verify::verify_enabled(&self.engine.config) {
                    // Verified once per distinct sub-query text (the plan
                    // cache makes re-executions skip this), leniently: outer
                    // scope columns resolve in the enclosing environment.
                    let opts = crate::verify::VerifyOptions {
                        param_count: Some(self.params.len()),
                        outer: true,
                        ..Default::default()
                    };
                    crate::verify::verify_plan_with(self.engine, &plan, opts)?;
                    self.engine.counters.add_plans_verified(1);
                }
                self.plan_cache
                    .borrow_mut()
                    .insert(key.clone(), Rc::clone(&plan));
                plan
            }
        };
        let saved = self.correlation_witness.replace(false);
        let rel = Rc::new(self.execute_plan(&plan, Some(env))?);
        let correlated = self.correlation_witness.get();
        self.correlation_witness.set(saved || correlated);
        if !correlated {
            self.subquery_cache
                .borrow_mut()
                .insert(key, Rc::clone(&rel));
        }
        Ok(rel)
    }

    pub(crate) fn project_row(&self, projection: &[SelectItem], env: &Env) -> Result<Row> {
        let mut out = Vec::with_capacity(projection.len());
        for item in projection {
            match item {
                SelectItem::Wildcard => out.extend(env.row.iter().cloned()),
                SelectItem::QualifiedWildcard(q) => {
                    for idx in env.schema.indices_of_qualifier(q) {
                        out.push(env.row[idx].clone());
                    }
                }
                SelectItem::Expr { expr, .. } => out.push(self.eval(expr, env)?),
            }
        }
        Ok(out)
    }
}

/// Grouped aggregation input: the input relation plus group keys and
/// per-group member row indices, in first-seen group order. Produced by
/// either grouping path (by value, or in dictionary code space) and consumed
/// by the shared aggregate/HAVING/projection back half.
struct GroupedInput {
    input: Relation,
    keys: Vec<Vec<Value>>,
    members: Vec<Vec<usize>>,
}

/// Partial aggregation state of one morsel (and the coordinator's merge
/// target): groups in first-seen order, a representative (first) row per
/// group, member counts, and — per aggregate — the non-null argument values
/// in row order. Merging partials in morsel order reproduces the serial
/// path's first-seen group order and exact fold order.
#[derive(Default)]
struct AggPartial {
    tally: ScanTally,
    keys: Vec<Vec<Value>>,
    reps: Vec<SharedRow>,
    counts: Vec<u64>,
    /// `args[a][g]` = non-null values of aggregate `a`'s argument in group
    /// `g`, in row order. Aggregates without arguments (`COUNT(*)`) keep
    /// empty lists and fold from the member count alone.
    args: Vec<Vec<Vec<Value>>>,
}

impl AggPartial {
    /// Empty state sized for `n` aggregates.
    fn with_aggregates(n: usize) -> Self {
        AggPartial {
            args: vec![Vec::new(); n],
            ..AggPartial::default()
        }
    }

    /// Group index for `key`, creating the group — with `rep` as its
    /// representative row — on first sight. `index` is the caller's
    /// key-to-group map (kept outside so merge loops can reuse it).
    fn group_of(
        &mut self,
        key: Vec<Value>,
        index: &mut HashMap<Vec<Value>, usize>,
        rep: &SharedRow,
    ) -> usize {
        match index.get(key.as_slice()) {
            Some(&g) => g,
            None => {
                self.keys.push(key.clone());
                self.reps.push(SharedRow::clone(rep));
                self.counts.push(0);
                for per_agg in &mut self.args {
                    per_agg.push(Vec::new());
                }
                index.insert(key, self.keys.len() - 1);
                self.keys.len() - 1
            }
        }
    }
}

/// Group-evaluation context: key values, precomputed aggregates and a
/// representative row for functionally dependent columns.
struct GroupContext<'a> {
    group_exprs: &'a [Expr],
    group_key: &'a [Value],
    aggregates: &'a [FunctionCall],
    agg_values: &'a [Value],
    env: Env<'a>,
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Sort shared rows in place by pre-resolved key columns: comparisons borrow
/// the row values directly — no per-row key extraction or cloning.
fn sort_rows(rows: &mut [SharedRow], keys: &[SortKey]) {
    if keys.is_empty() {
        return;
    }
    rows.sort_by(|a, b| {
        for key in keys {
            let cmp = a[key.col].compare(&b[key.col]).unwrap_or(Ordering::Equal);
            let cmp = if key.asc { cmp } else { cmp.reverse() };
            if cmp != Ordering::Equal {
                return cmp;
            }
        }
        Ordering::Equal
    });
}

/// DISTINCT on the visible prefix of each row (hidden sort-key columns do not
/// participate), keeping the first occurrence.
fn dedup_visible(rows: &mut Vec<SharedRow>, width: usize) {
    let mut seen = std::collections::HashSet::new();
    rows.retain(|row| seen.insert(row[..width].to_vec()));
}

pub(crate) fn literal_value(l: &Literal) -> Result<Value> {
    Ok(match l {
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Bool(*b),
        Literal::Integer(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::String(s) => Value::str(s.clone()),
        Literal::Date(d) => Value::Date(parse_date(d)?),
        Literal::Interval { value, unit } => match unit {
            // Intervals participate in date arithmetic; days become plain
            // integers, months/years are applied via `add_months` below.
            IntervalUnit::Day => Value::Int(*value),
            IntervalUnit::Month => Value::Int(*value * 30),
            IntervalUnit::Year => Value::Int(*value * 365),
        },
    })
}

/// Apply a binary operator to two values.
pub fn apply_binary(op: BinaryOperator, l: Value, r: Value) -> Result<Value> {
    use BinaryOperator::*;
    match op {
        Plus => add_with_calendar(l, r),
        Minus => sub_with_calendar(l, r),
        Multiply => l.mul(&r),
        Divide => l.div(&r),
        Modulo => l.modulo(&r),
        Concat => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => Ok(Value::str(format!("{a}{b}"))),
        },
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let cmp = l.compare(&r);
            let result = match cmp {
                None => return Ok(Value::Bool(false)),
                Some(ordering) => match op {
                    Eq => ordering == Ordering::Equal,
                    NotEq => ordering != Ordering::Equal,
                    Lt => ordering == Ordering::Less,
                    LtEq => ordering != Ordering::Greater,
                    Gt => ordering == Ordering::Greater,
                    GtEq => ordering != Ordering::Less,
                    _ => unreachable!(),
                },
            };
            Ok(Value::Bool(result))
        }
        And | Or => {
            let lb = l.as_bool().unwrap_or(false);
            let rb = r.as_bool().unwrap_or(false);
            Ok(Value::Bool(if op == And { lb && rb } else { lb || rb }))
        }
    }
}

/// Date-aware addition: adding an interval expressed in months/years uses
/// calendar arithmetic. Intervals reach us as integer day counts (see
/// [`literal_value`]), so month/year intervals are recognised by multiples of
/// 30/365 only when added to dates; this matches how the TPC-H queries use
/// them (`+ INTERVAL '1' YEAR`, `+ INTERVAL '3' MONTH`).
fn add_with_calendar(l: Value, r: Value) -> Result<Value> {
    match (&l, &r) {
        (Value::Date(d), Value::Int(n)) => Ok(Value::Date(interval_shift(*d, *n))),
        (Value::Int(n), Value::Date(d)) => Ok(Value::Date(interval_shift(*d, *n))),
        _ => l.add(&r),
    }
}

fn sub_with_calendar(l: Value, r: Value) -> Result<Value> {
    match (&l, &r) {
        (Value::Date(d), Value::Int(n)) => Ok(Value::Date(interval_shift(*d, -*n))),
        _ => l.sub(&r),
    }
}

/// Shift a date by an interval encoded as days; multiples of 365/30 are
/// treated as calendar years/months so that month-end boundaries stay exact.
fn interval_shift(date: i32, encoded_days: i64) -> i32 {
    let negative = encoded_days < 0;
    let abs = encoded_days.unsigned_abs() as i32;

    if abs != 0 && abs % 365 == 0 {
        add_months(date, (abs / 365) * 12 * if negative { -1 } else { 1 })
    } else if abs != 0 && abs % 30 == 0 {
        add_months(date, (abs / 30) * if negative { -1 } else { 1 })
    } else {
        date + if negative { -abs } else { abs }
    }
}

pub(crate) fn apply_unary(op: UnaryOperator, v: Value) -> Result<Value> {
    match op {
        UnaryOperator::Not => match v.as_bool() {
            Some(b) => Ok(Value::Bool(!b)),
            None => Ok(Value::Bool(false)),
        },
        UnaryOperator::Minus => v.neg(),
        UnaryOperator::Plus => Ok(v),
    }
}

pub(crate) fn cast_value(v: Value, ty: DataType) -> Result<Value> {
    match ty {
        DataType::Integer | DataType::BigInt => match v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| EngineError::new(format!("cannot cast '{s}' to integer"))),
            other => Ok(Value::Int(other.as_i64().unwrap_or(0))),
        },
        DataType::Double | DataType::Decimal(_, _) => match v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| EngineError::new(format!("cannot cast '{s}' to double"))),
            other => Ok(Value::Float(other.as_f64().unwrap_or(0.0))),
        },
        DataType::Varchar(_) | DataType::Char(_) => Ok(match v {
            Value::Null => Value::Null,
            other => Value::str(other.to_string()),
        }),
        DataType::Date => match v {
            Value::Date(_) | Value::Null => Ok(v),
            Value::Str(s) => Value::date_from_str(&s),
            other => err(format!("cannot cast {other:?} to date")),
        },
        DataType::Boolean => Ok(match v.as_bool() {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        }),
    }
}

fn cross_product(left: &Relation, right: &Relation) -> Relation {
    let schema = left.schema.concat(&right.schema);
    let mut rows = Vec::with_capacity(left.rows.len() * right.rows.len());
    for l in &left.rows {
        for r in &right.rows {
            rows.push(concat_rows(l, r).into());
        }
    }
    Relation { schema, rows }
}

/// Concatenate two rows into a fresh build-time row.
fn concat_rows(left: &[Value], right: &[Value]) -> Row {
    let mut combined = Vec::with_capacity(left.len() + right.len());
    combined.extend_from_slice(left);
    combined.extend_from_slice(right);
    combined
}

/// A left row extended with NULLs for an unmatched outer join.
fn null_extend(left: &[Value], right_width: usize) -> SharedRow {
    let mut combined = Vec::with_capacity(left.len() + right_width);
    combined.extend_from_slice(left);
    combined.extend(std::iter::repeat_n(Value::Null, right_width));
    combined.into()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("ECONOMY ANODIZED STEEL", "%ANODIZED%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("special%case", "special%case"));
    }

    #[test]
    fn interval_shift_years_and_months() {
        let base = parse_date("1995-01-31").unwrap();
        // one calendar month
        assert_eq!(interval_shift(base, 30), parse_date("1995-02-28").unwrap());
        // one calendar year
        assert_eq!(interval_shift(base, 365), parse_date("1996-01-31").unwrap());
        // plain days
        assert_eq!(interval_shift(base, 7), base + 7);
    }

    #[test]
    fn binary_comparison_with_null_is_false() {
        let v = apply_binary(BinaryOperator::Eq, Value::Null, Value::Int(1)).unwrap();
        assert_eq!(v, Value::Bool(false));
    }

    #[test]
    fn sort_rows_borrows_key_columns() {
        let mut rows: Vec<SharedRow> = vec![
            vec![Value::Int(2), Value::str("b")].into(),
            vec![Value::Int(1), Value::str("c")].into(),
            vec![Value::Int(1), Value::str("a")].into(),
        ];
        sort_rows(
            &mut rows,
            &[
                SortKey { col: 0, asc: true },
                SortKey { col: 1, asc: false },
            ],
        );
        assert_eq!(rows[0][1], Value::str("c"));
        assert_eq!(rows[1][1], Value::str("a"));
        assert_eq!(rows[2][0], Value::Int(2));
    }

    #[test]
    fn morsels_split_within_buckets_and_respect_visible_bounds() {
        let big = Bucket::Rows(
            (0..10_000)
                .map(|i| SharedRow::from(vec![Value::Int(i)]))
                .collect(),
        );
        let small = Bucket::Rows(
            (0..100)
                .map(|i| SharedRow::from(vec![Value::Int(i)]))
                .collect(),
        );
        // The second bucket's visible length is snapshot-bounded below its
        // physical length; morsels must never cross the watermark.
        let selected: Vec<(&Bucket, usize)> = vec![(&big, 10_000), (&small, 60)];
        let morsels = build_morsels(&selected, 4096);
        assert_eq!(morsels.len(), 4, "3 for the big bucket + 1 small");
        assert_eq!((morsels[0].start, morsels[0].end), (0, 4096));
        assert_eq!((morsels[2].start, morsels[2].end), (8192, 10_000));
        assert_eq!(
            (morsels[3].bucket, morsels[3].start, morsels[3].end),
            (1, 0, 60)
        );
        assert_eq!(morsel_count(&selected, 4096), morsels.len());
        // A fully invisible bucket contributes no morsels at all.
        assert_eq!(morsel_count(&[(&small, 0)], 4096), 0);
    }

    #[test]
    fn worker_count_budgets_on_morsels_not_buckets() {
        // One oversized bucket used to cap the pool at a single worker
        // (bucket-count cap); budgeting on morsel count spreads it across
        // the whole pool.
        assert_eq!(scan_worker_count(4, 5, 20_000), 4);
        assert_eq!(scan_worker_count(4, 1, 20_000), 1);
        // The engagement floor still keeps small scans serial.
        assert_eq!(scan_worker_count(4, 2, 8_000), 1);
        // And every worker must own enough rows to amortize its spawn.
        assert_eq!(scan_worker_count(8, 8, 9_000), 2);
    }

    #[test]
    fn dedup_visible_ignores_hidden_columns() {
        let mut rows: Vec<SharedRow> = vec![
            vec![Value::Int(1), Value::Int(100)].into(),
            vec![Value::Int(1), Value::Int(200)].into(),
            vec![Value::Int(2), Value::Int(300)].into(),
        ];
        dedup_visible(&mut rows, 1);
        assert_eq!(rows.len(), 2);
        // first occurrence wins
        assert_eq!(rows[0][1], Value::Int(100));
    }
}

//! Query execution: expression evaluation, joins, grouping/aggregation,
//! sub-queries and DML.
//!
//! The executor is a straightforward materializing interpreter: every operator
//! consumes and produces `(Schema, Vec<Row>)`. Equi-joins are executed as hash
//! joins, other joins as filtered nested loops; single-table predicates are
//! pushed below joins. Uncorrelated sub-queries are evaluated once per query
//! and cached.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::rc::Rc;

use mtsql::ast::*;

use crate::error::{err, EngineError, Result};
use crate::schema::Schema;
use crate::table::Row;
use crate::value::{add_months, civil_from_days, parse_date, Value};
use crate::Engine;

/// A materialized intermediate result.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub schema: Schema,
    pub rows: Vec<Row>,
}

/// Evaluation environment: the row currently in scope plus the chain of outer
/// rows for correlated sub-queries.
#[derive(Clone, Copy)]
pub struct Env<'a> {
    pub schema: &'a Schema,
    pub row: &'a Row,
    pub parent: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    fn lookup(&self, col: &ColumnRef) -> Option<Value> {
        if let Some(idx) = self.schema.resolve(col) {
            return Some(self.row[idx].clone());
        }
        self.parent.and_then(|p| p.lookup(col))
    }

    fn resolves_locally(&self, col: &ColumnRef) -> bool {
        self.schema.resolve(col).is_some()
    }
}

/// Per-query executor borrowing the engine (tables, UDFs, statistics).
pub struct Executor<'e> {
    engine: &'e Engine,
    /// Cache of uncorrelated sub-query results, keyed by their SQL text.
    subquery_cache: RefCell<HashMap<String, Rc<Relation>>>,
    /// `true` while the executor detected an escape to an outer row during the
    /// currently executing sub-query (conservative correlation detection).
    correlation_witness: Cell<bool>,
}

impl<'e> Executor<'e> {
    /// Create an executor for one top-level query.
    pub fn new(engine: &'e Engine) -> Self {
        Executor {
            engine,
            subquery_cache: RefCell::new(HashMap::new()),
            correlation_witness: Cell::new(false),
        }
    }

    // ------------------------------------------------------------------
    // Query execution
    // ------------------------------------------------------------------

    /// Execute a query with an optional outer environment (for correlated
    /// sub-queries).
    pub fn execute_query(&self, query: &Query, outer: Option<&Env>) -> Result<Relation> {
        let select = &query.body;
        let input = self.execute_from_where(select, outer)?;

        let aggregates = collect_aggregates(select, &query.order_by);
        let grouped = !select.group_by.is_empty() || !aggregates.is_empty();

        let mut out = if grouped {
            self.execute_grouped(query, input, aggregates, outer)?
        } else {
            self.execute_projection(query, input, outer)?
        };

        if query.limit.is_some() || !query.order_by.is_empty() {
            // ordering already applied inside the two paths; only limit here
            if let Some(limit) = query.limit {
                out.rows.truncate(limit as usize);
            }
        }
        Ok(out)
    }

    /// Non-aggregate path: projection, DISTINCT, ORDER BY.
    fn execute_projection(
        &self,
        query: &Query,
        input: Relation,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let select = &query.body;
        let out_schema = projection_schema(&select.projection, &input.schema)?;
        let aliases = alias_map(&select.projection);
        let order_exprs: Vec<Expr> = query
            .order_by
            .iter()
            .map(|o| substitute_aliases(&o.expr, &aliases))
            .collect();

        let mut produced: Vec<(Row, Vec<Value>)> = Vec::with_capacity(input.rows.len());
        for row in &input.rows {
            let env = Env {
                schema: &input.schema,
                row,
                parent: outer,
            };
            let out_row = self.project_row(&select.projection, &env)?;
            let keys = order_exprs
                .iter()
                .map(|e| self.eval(e, &env))
                .collect::<Result<Vec<_>>>()?;
            produced.push((out_row, keys));
        }

        if select.distinct {
            let mut seen = std::collections::HashSet::new();
            produced.retain(|(row, _)| seen.insert(row.clone()));
        }
        sort_by_keys(&mut produced, &query.order_by);

        Ok(Relation {
            schema: out_schema,
            rows: produced.into_iter().map(|(r, _)| r).collect(),
        })
    }

    /// Aggregate path: grouping, aggregate evaluation, HAVING, ORDER BY.
    fn execute_grouped(
        &self,
        query: &Query,
        input: Relation,
        aggregates: Vec<FunctionCall>,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let select = &query.body;
        let aliases = alias_map(&select.projection);
        let group_exprs: Vec<Expr> = select
            .group_by
            .iter()
            .map(|e| substitute_aliases(e, &aliases))
            .collect();

        // Build groups preserving first-seen order.
        let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        for (i, row) in input.rows.iter().enumerate() {
            let env = Env {
                schema: &input.schema,
                row,
                parent: outer,
            };
            let key = group_exprs
                .iter()
                .map(|e| self.eval(e, &env))
                .collect::<Result<Vec<_>>>()?;
            match group_index.get(&key) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    group_index.insert(key.clone(), groups.len());
                    groups.push((key, vec![i]));
                }
            }
        }
        // Aggregates without GROUP BY over empty input still produce one row.
        if groups.is_empty() && select.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        let out_schema = projection_schema(&select.projection, &input.schema)?;
        let having_expr = select
            .having
            .as_ref()
            .map(|h| substitute_aliases(h, &aliases));
        let order_exprs: Vec<Expr> = query
            .order_by
            .iter()
            .map(|o| substitute_aliases(&o.expr, &aliases))
            .collect();

        // A group with no members (global aggregate over an empty input) still
        // needs a representative row so that non-aggregated columns (e.g. the
        // constant factors of inlined conversion functions) resolve — to NULL.
        let null_row: Row = vec![Value::Null; input.schema.len()];
        let mut produced: Vec<(Row, Vec<Value>)> = Vec::new();
        for (key, members) in &groups {
            // Compute aggregate values for this group.
            let mut agg_values = Vec::with_capacity(aggregates.len());
            for agg in &aggregates {
                agg_values.push(self.eval_aggregate(agg, &input, members, outer)?);
            }
            let first_row = members.first().map(|&i| &input.rows[i]).unwrap_or(&null_row);
            let first_schema = &input.schema;
            let gctx = GroupContext {
                group_exprs: &group_exprs,
                group_key: key,
                aggregates: &aggregates,
                agg_values: &agg_values,
                env: Env {
                    schema: first_schema,
                    row: first_row,
                    parent: outer,
                },
            };
            if let Some(h) = &having_expr {
                let keep = self
                    .eval_in_group(h, &gctx)?
                    .as_bool()
                    .unwrap_or(false);
                if !keep {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(select.projection.len());
            for item in &select.projection {
                match item {
                    SelectItem::Wildcard => out_row.extend(gctx.env.row.iter().cloned()),
                    SelectItem::QualifiedWildcard(q) => {
                        for idx in gctx.env.schema.indices_of_qualifier(q) {
                            out_row.push(gctx.env.row[idx].clone());
                        }
                    }
                    SelectItem::Expr { expr, .. } => out_row.push(self.eval_in_group(expr, &gctx)?),
                }
            }
            let keys = order_exprs
                .iter()
                .map(|e| self.eval_in_group(e, &gctx))
                .collect::<Result<Vec<_>>>()?;
            produced.push((out_row, keys));
        }

        if select.distinct {
            let mut seen = std::collections::HashSet::new();
            produced.retain(|(row, _)| seen.insert(row.clone()));
        }
        sort_by_keys(&mut produced, &query.order_by);

        Ok(Relation {
            schema: out_schema,
            rows: produced.into_iter().map(|(r, _)| r).collect(),
        })
    }

    // ------------------------------------------------------------------
    // FROM / WHERE
    // ------------------------------------------------------------------

    fn execute_from_where(&self, select: &Select, outer: Option<&Env>) -> Result<Relation> {
        if select.from.is_empty() {
            // `SELECT expr` without FROM: a single empty row.
            return Ok(Relation {
                schema: Schema::new(),
                rows: vec![Vec::new()],
            });
        }

        let mut items: Vec<Relation> = Vec::with_capacity(select.from.len());
        for table_ref in &select.from {
            items.push(self.execute_table_ref(table_ref, outer)?);
        }

        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(sel) = &select.selection {
            split_conjuncts(sel, &mut conjuncts);
        }

        // Push single-item predicates (no sub-queries, fully resolvable in one
        // item, not resolvable via the outer env only) below the joins.
        let mut remaining: Vec<Expr> = Vec::new();
        'conj: for c in conjuncts {
            if !contains_subquery(&c) {
                for item in items.iter_mut() {
                    if expr_resolvable(&c, &item.schema) {
                        let filtered = self.filter_relation(item, &c, outer)?;
                        *item = filtered;
                        continue 'conj;
                    }
                }
            }
            remaining.push(c);
        }

        // Greedy hash-join ordering over the FROM items.
        let mut current = items.remove(0);
        while !items.is_empty() {
            let mut chosen: Option<(usize, Vec<(Expr, Expr)>)> = None;
            for (i, item) in items.iter().enumerate() {
                let keys = equi_join_keys(&remaining, &current.schema, &item.schema);
                if !keys.is_empty() {
                    chosen = Some((i, keys));
                    break;
                }
            }
            match chosen {
                Some((i, keys)) => {
                    let right = items.remove(i);
                    // Remove the consumed conjuncts.
                    remaining.retain(|c| {
                        !keys.iter().any(|(l, r)| {
                            matches!(c, Expr::BinaryOp { left, op: BinaryOperator::Eq, right: rr }
                                if (**left == *l && **rr == *r) || (**left == *r && **rr == *l))
                        })
                    });
                    current = self.hash_join(&current, &right, &keys, JoinKind::Inner, outer)?;
                }
                None => {
                    let right = items.remove(0);
                    current = cross_product(&current, &right);
                }
            }
            // Apply any predicates that became resolvable, to keep
            // intermediate results small.
            let mut still: Vec<Expr> = Vec::new();
            for c in remaining.drain(..) {
                if !contains_subquery(&c) && expr_resolvable(&c, &current.schema) {
                    current = self.filter_relation(&current, &c, outer)?;
                } else {
                    still.push(c);
                }
            }
            remaining = still;
        }

        // Apply whatever is left (correlated predicates, sub-queries, ...).
        for c in &remaining {
            current = self.filter_relation(&current, c, outer)?;
        }
        Ok(current)
    }

    fn execute_table_ref(&self, table_ref: &TableRef, outer: Option<&Env>) -> Result<Relation> {
        match table_ref {
            TableRef::Table { name, alias } => {
                let binding = alias.as_deref().unwrap_or(name);
                if let Some(view) = self.engine.database().view(name) {
                    let view = view.clone();
                    let rel = self.execute_query(&view, outer)?;
                    let names = rel.schema.names();
                    return Ok(Relation {
                        schema: Schema::qualified(binding, &names),
                        rows: rel.rows,
                    });
                }
                let table = self.engine.database().table(name)?;
                self.engine.note_rows_scanned(table.rows.len() as u64);
                Ok(Relation {
                    schema: Schema::qualified(binding, &table.columns),
                    rows: table.rows.clone(),
                })
            }
            TableRef::Derived { query, alias } => {
                let rel = self.execute_query(query, outer)?;
                let names = rel.schema.names();
                Ok(Relation {
                    schema: Schema::qualified(alias, &names),
                    rows: rel.rows,
                })
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.execute_table_ref(left, outer)?;
                let r = self.execute_table_ref(right, outer)?;
                match kind {
                    JoinKind::Cross => Ok(cross_product(&l, &r)),
                    JoinKind::Inner | JoinKind::Left => {
                        let mut conjuncts = Vec::new();
                        if let Some(cond) = on {
                            split_conjuncts(cond, &mut conjuncts);
                        }
                        let keys = equi_join_keys(&conjuncts, &l.schema, &r.schema);
                        let residual: Vec<Expr> = conjuncts
                            .into_iter()
                            .filter(|c| {
                                !keys.iter().any(|(lk, rk)| {
                                    matches!(c, Expr::BinaryOp { left, op: BinaryOperator::Eq, right }
                                        if (**left == *lk && **right == *rk)
                                            || (**left == *rk && **right == *lk))
                                })
                            })
                            .collect();
                        if keys.is_empty() {
                            self.nested_loop_join(&l, &r, &residual, *kind, outer)
                        } else {
                            let joined = self.hash_join_with_residual(
                                &l, &r, &keys, &residual, *kind, outer,
                            )?;
                            Ok(joined)
                        }
                    }
                }
            }
        }
    }

    fn filter_relation(&self, rel: &Relation, pred: &Expr, outer: Option<&Env>) -> Result<Relation> {
        let mut rows = Vec::with_capacity(rel.rows.len());
        for row in &rel.rows {
            let env = Env {
                schema: &rel.schema,
                row,
                parent: outer,
            };
            if self.eval(pred, &env)?.as_bool().unwrap_or(false) {
                rows.push(row.clone());
            }
        }
        Ok(Relation {
            schema: rel.schema.clone(),
            rows,
        })
    }

    fn hash_join(
        &self,
        left: &Relation,
        right: &Relation,
        keys: &[(Expr, Expr)],
        kind: JoinKind,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        self.hash_join_with_residual(left, right, keys, &[], kind, outer)
    }

    fn hash_join_with_residual(
        &self,
        left: &Relation,
        right: &Relation,
        keys: &[(Expr, Expr)],
        residual: &[Expr],
        kind: JoinKind,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let schema = left.schema.concat(&right.schema);
        // Build hash table on the right input.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, row) in right.rows.iter().enumerate() {
            let env = Env {
                schema: &right.schema,
                row,
                parent: outer,
            };
            let key = keys
                .iter()
                .map(|(_, r)| self.eval(r, &env))
                .collect::<Result<Vec<_>>>()?;
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(i);
        }
        let right_width = right.schema.len();
        let mut rows = Vec::new();
        for lrow in &left.rows {
            let lenv = Env {
                schema: &left.schema,
                row: lrow,
                parent: outer,
            };
            let key = keys
                .iter()
                .map(|(l, _)| self.eval(l, &lenv))
                .collect::<Result<Vec<_>>>()?;
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(candidates) = table.get(&key) {
                    for &ri in candidates {
                        let mut combined = lrow.clone();
                        combined.extend(right.rows[ri].iter().cloned());
                        if residual.is_empty() || {
                            let env = Env {
                                schema: &schema,
                                row: &combined,
                                parent: outer,
                            };
                            let mut ok = true;
                            for r in residual {
                                if !self.eval(r, &env)?.as_bool().unwrap_or(false) {
                                    ok = false;
                                    break;
                                }
                            }
                            ok
                        } {
                            matched = true;
                            rows.push(combined);
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat(Value::Null).take(right_width));
                rows.push(combined);
            }
        }
        Ok(Relation { schema, rows })
    }

    fn nested_loop_join(
        &self,
        left: &Relation,
        right: &Relation,
        conjuncts: &[Expr],
        kind: JoinKind,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let schema = left.schema.concat(&right.schema);
        let right_width = right.schema.len();
        let mut rows = Vec::new();
        for lrow in &left.rows {
            let mut matched = false;
            for rrow in &right.rows {
                let mut combined = lrow.clone();
                combined.extend(rrow.iter().cloned());
                let env = Env {
                    schema: &schema,
                    row: &combined,
                    parent: outer,
                };
                let mut ok = true;
                for c in conjuncts {
                    if !self.eval(c, &env)?.as_bool().unwrap_or(false) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    matched = true;
                    rows.push(combined);
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut combined = lrow.clone();
                combined.extend(std::iter::repeat(Value::Null).take(right_width));
                rows.push(combined);
            }
        }
        Ok(Relation { schema, rows })
    }

    // ------------------------------------------------------------------
    // Aggregates
    // ------------------------------------------------------------------

    fn eval_aggregate(
        &self,
        agg: &FunctionCall,
        input: &Relation,
        members: &[usize],
        outer: Option<&Env>,
    ) -> Result<Value> {
        let name = agg.name.to_ascii_uppercase();
        // COUNT(*) — no argument.
        if agg.args.is_empty() {
            if name != "COUNT" {
                return err(format!("aggregate `{name}` requires an argument"));
            }
            return Ok(Value::Int(members.len() as i64));
        }
        let arg = &agg.args[0];
        let mut values = Vec::with_capacity(members.len());
        for &i in members {
            let env = Env {
                schema: &input.schema,
                row: &input.rows[i],
                parent: outer,
            };
            let v = self.eval(arg, &env)?;
            if !v.is_null() {
                values.push(v);
            }
        }
        if agg.distinct {
            let mut seen = std::collections::HashSet::new();
            values.retain(|v| seen.insert(v.clone()));
        }
        match name.as_str() {
            "COUNT" => Ok(Value::Int(values.len() as i64)),
            "SUM" => {
                if values.is_empty() {
                    return Ok(Value::Null);
                }
                let mut acc = Value::Int(0);
                for v in &values {
                    acc = acc.add(v)?;
                }
                Ok(acc)
            }
            "AVG" => {
                if values.is_empty() {
                    return Ok(Value::Null);
                }
                let mut acc = 0.0;
                for v in &values {
                    acc += v.as_f64().ok_or_else(|| EngineError::new("AVG over non-numeric value"))?;
                }
                Ok(Value::Float(acc / values.len() as f64))
            }
            "MIN" => Ok(values
                .into_iter()
                .reduce(|a, b| {
                    if b.compare(&a) == Some(Ordering::Less) {
                        b
                    } else {
                        a
                    }
                })
                .unwrap_or(Value::Null)),
            "MAX" => Ok(values
                .into_iter()
                .reduce(|a, b| {
                    if b.compare(&a) == Some(Ordering::Greater) {
                        b
                    } else {
                        a
                    }
                })
                .unwrap_or(Value::Null)),
            other => err(format!("unsupported aggregate `{other}`")),
        }
    }

    fn eval_in_group(&self, expr: &Expr, ctx: &GroupContext) -> Result<Value> {
        // Group-by expressions evaluate to the group key.
        for (i, g) in ctx.group_exprs.iter().enumerate() {
            if g == expr {
                return Ok(ctx.group_key[i].clone());
            }
        }
        // Aggregates evaluate to their precomputed value.
        if let Expr::Function(fc) = expr {
            if fc.is_aggregate() {
                for (i, a) in ctx.aggregates.iter().enumerate() {
                    if a == fc {
                        return Ok(ctx.agg_values[i].clone());
                    }
                }
                return err(format!("aggregate `{}` was not precomputed", fc.name));
            }
        }
        match expr {
            Expr::Column(_) | Expr::Literal(_) => self.eval(expr, &ctx.env),
            Expr::BinaryOp { left, op, right } => {
                let l = self.eval_in_group(left, ctx)?;
                let r = self.eval_in_group(right, ctx)?;
                apply_binary(*op, l, r)
            }
            Expr::UnaryOp { op, expr: inner } => {
                let v = self.eval_in_group(inner, ctx)?;
                apply_unary(*op, v)
            }
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => {
                let operand_val = operand
                    .as_ref()
                    .map(|o| self.eval_in_group(o, ctx))
                    .transpose()?;
                for (cond, out) in when_then {
                    let hit = match &operand_val {
                        Some(op_val) => {
                            let c = self.eval_in_group(cond, ctx)?;
                            op_val.sql_eq(&c).unwrap_or(false)
                        }
                        None => self
                            .eval_in_group(cond, ctx)?
                            .as_bool()
                            .unwrap_or(false),
                    };
                    if hit {
                        return self.eval_in_group(out, ctx);
                    }
                }
                match else_expr {
                    Some(e) => self.eval_in_group(e, ctx),
                    None => Ok(Value::Null),
                }
            }
            Expr::Function(fc) => {
                let args = fc
                    .args
                    .iter()
                    .map(|a| self.eval_in_group(a, ctx))
                    .collect::<Result<Vec<_>>>()?;
                self.call_scalar(&fc.name, &args)
            }
            // Everything else (sub-queries etc.) falls back to row-level
            // evaluation against the group's representative row.
            _ => self.eval(expr, &ctx.env),
        }
    }

    // ------------------------------------------------------------------
    // Scalar expression evaluation
    // ------------------------------------------------------------------

    /// Evaluate an expression in an environment.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Value> {
        match expr {
            Expr::Literal(l) => literal_value(l),
            Expr::Column(c) => {
                if env.resolves_locally(c) {
                    Ok(env.row[env.schema.resolve(c).expect("checked")].clone())
                } else if let Some(v) = env.lookup(c) {
                    // Escaped to an outer row: this (sub-)query is correlated.
                    self.correlation_witness.set(true);
                    Ok(v)
                } else {
                    err(format!("unknown column `{}`", c.to_display()))
                }
            }
            Expr::BinaryOp { left, op, right } => {
                // Short-circuit AND/OR on the left operand.
                match op {
                    BinaryOperator::And => {
                        let l = self.eval(left, env)?;
                        if l.as_bool() == Some(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = self.eval(right, env)?;
                        return Ok(Value::Bool(
                            l.as_bool().unwrap_or(false) && r.as_bool().unwrap_or(false),
                        ));
                    }
                    BinaryOperator::Or => {
                        let l = self.eval(left, env)?;
                        if l.as_bool() == Some(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = self.eval(right, env)?;
                        return Ok(Value::Bool(
                            l.as_bool().unwrap_or(false) || r.as_bool().unwrap_or(false),
                        ));
                    }
                    _ => {}
                }
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                apply_binary(*op, l, r)
            }
            Expr::UnaryOp { op, expr } => {
                let v = self.eval(expr, env)?;
                apply_unary(*op, v)
            }
            Expr::Function(fc) => {
                if fc.is_aggregate() {
                    return err(format!(
                        "aggregate `{}` used outside of an aggregation context",
                        fc.name
                    ));
                }
                let args = fc
                    .args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>>>()?;
                self.call_scalar(&fc.name, &args)
            }
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => {
                let operand_val = operand.as_ref().map(|o| self.eval(o, env)).transpose()?;
                for (cond, out) in when_then {
                    let hit = match &operand_val {
                        Some(op_val) => {
                            let c = self.eval(cond, env)?;
                            op_val.sql_eq(&c).unwrap_or(false)
                        }
                        None => self.eval(cond, env)?.as_bool().unwrap_or(false),
                    };
                    if hit {
                        return self.eval(out, env);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, env),
                    None => Ok(Value::Null),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, env)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let mut found = false;
                for item in list {
                    let iv = self.eval(item, env)?;
                    if v.sql_eq(&iv) == Some(true) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                let lo = self.eval(low, env)?;
                let hi = self.eval(high, env)?;
                let inside = matches!(v.compare(&lo), Some(Ordering::Greater | Ordering::Equal))
                    && matches!(v.compare(&hi), Some(Ordering::Less | Ordering::Equal));
                Ok(Value::Bool(inside != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                let p = self.eval(pattern, env)?;
                match (v.as_str(), p.as_str()) {
                    (Some(text), Some(pat)) => Ok(Value::Bool(like_match(text, pat) != *negated)),
                    _ => Ok(Value::Bool(false)),
                }
            }
            Expr::Extract { field, expr } => {
                let v = self.eval(expr, env)?;
                match v {
                    Value::Date(d) => {
                        let (y, m, day) = civil_from_days(d);
                        Ok(Value::Int(match field {
                            DateField::Year => y as i64,
                            DateField::Month => m as i64,
                            DateField::Day => day as i64,
                        }))
                    }
                    Value::Null => Ok(Value::Null),
                    other => err(format!("EXTRACT from non-date value {other:?}")),
                }
            }
            Expr::Substring {
                expr,
                start,
                length,
            } => {
                let v = self.eval(expr, env)?;
                let s = match v {
                    Value::Str(s) => s,
                    Value::Null => return Ok(Value::Null),
                    other => other.to_string(),
                };
                let start = self.eval(start, env)?.as_i64().unwrap_or(1).max(1) as usize;
                let chars: Vec<char> = s.chars().collect();
                let from = (start - 1).min(chars.len());
                let to = match length {
                    Some(len) => {
                        let l = self.eval(len, env)?.as_i64().unwrap_or(0).max(0) as usize;
                        (from + l).min(chars.len())
                    }
                    None => chars.len(),
                };
                Ok(Value::Str(chars[from..to].iter().collect()))
            }
            Expr::Cast { expr, data_type } => {
                let v = self.eval(expr, env)?;
                cast_value(v, *data_type)
            }
            Expr::Exists { query, negated } => {
                let rel = self.execute_subquery(query, env)?;
                Ok(Value::Bool(!rel.rows.is_empty() != *negated))
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let rel = self.execute_subquery(query, env)?;
                let mut found = false;
                for row in &rel.rows {
                    if let Some(candidate) = row.first() {
                        if v.sql_eq(candidate) == Some(true) {
                            found = true;
                            break;
                        }
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::ScalarSubquery(query) => {
                let rel = self.execute_subquery(query, env)?;
                match rel.rows.first() {
                    Some(row) => Ok(row.first().cloned().unwrap_or(Value::Null)),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluate a scalar (non-aggregate) function: engine built-ins first,
    /// then registered UDFs.
    fn call_scalar(&self, name: &str, args: &[Value]) -> Result<Value> {
        match name.to_ascii_uppercase().as_str() {
            "CONCAT" => {
                let mut out = String::new();
                for a in args {
                    if a.is_null() {
                        return Ok(Value::Null);
                    }
                    out.push_str(&a.to_string());
                }
                Ok(Value::Str(out))
            }
            "CHAR_LENGTH" | "LENGTH" => match args.first() {
                Some(Value::Str(s)) => Ok(Value::Int(s.chars().count() as i64)),
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => Ok(Value::Int(other.to_string().chars().count() as i64)),
            },
            "COALESCE" => Ok(args
                .iter()
                .find(|a| !a.is_null())
                .cloned()
                .unwrap_or(Value::Null)),
            "ABS" => match args.first() {
                Some(Value::Int(i)) => Ok(Value::Int(i.abs())),
                Some(Value::Float(f)) => Ok(Value::Float(f.abs())),
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => err(format!("ABS of non-numeric {other:?}")),
            },
            _ => self.engine.udfs().call(name, args),
        }
    }

    /// Execute a sub-query appearing inside an expression, caching the result
    /// when it turned out to be uncorrelated.
    fn execute_subquery(&self, query: &Query, env: &Env) -> Result<Rc<Relation>> {
        let key = query.to_string();
        if let Some(hit) = self.subquery_cache.borrow().get(&key) {
            return Ok(Rc::clone(hit));
        }
        let saved = self.correlation_witness.replace(false);
        let rel = Rc::new(self.execute_query(query, Some(env))?);
        let correlated = self.correlation_witness.get();
        self.correlation_witness.set(saved || correlated);
        if !correlated {
            self.subquery_cache
                .borrow_mut()
                .insert(key, Rc::clone(&rel));
        }
        Ok(rel)
    }

    fn project_row(&self, projection: &[SelectItem], env: &Env) -> Result<Row> {
        let mut out = Vec::with_capacity(projection.len());
        for item in projection {
            match item {
                SelectItem::Wildcard => out.extend(env.row.iter().cloned()),
                SelectItem::QualifiedWildcard(q) => {
                    for idx in env.schema.indices_of_qualifier(q) {
                        out.push(env.row[idx].clone());
                    }
                }
                SelectItem::Expr { expr, .. } => out.push(self.eval(expr, env)?),
            }
        }
        Ok(out)
    }
}

/// Group-evaluation context: key values, precomputed aggregates and a
/// representative row for functionally dependent columns.
struct GroupContext<'a> {
    group_exprs: &'a [Expr],
    group_key: &'a [Value],
    aggregates: &'a [FunctionCall],
    agg_values: &'a [Value],
    env: Env<'a>,
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn literal_value(l: &Literal) -> Result<Value> {
    Ok(match l {
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Bool(*b),
        Literal::Integer(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::String(s) => Value::Str(s.clone()),
        Literal::Date(d) => Value::Date(parse_date(d)?),
        Literal::Interval { value, unit } => match unit {
            // Intervals participate in date arithmetic; days become plain
            // integers, months/years are applied via `add_months` below.
            IntervalUnit::Day => Value::Int(*value),
            IntervalUnit::Month => Value::Int(*value * 30),
            IntervalUnit::Year => Value::Int(*value * 365),
        },
    })
}

/// Apply a binary operator to two values.
pub fn apply_binary(op: BinaryOperator, l: Value, r: Value) -> Result<Value> {
    use BinaryOperator::*;
    match op {
        Plus => add_with_calendar(l, r),
        Minus => sub_with_calendar(l, r),
        Multiply => l.mul(&r),
        Divide => l.div(&r),
        Modulo => l.modulo(&r),
        Concat => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => Ok(Value::Str(format!("{a}{b}"))),
        },
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let cmp = l.compare(&r);
            let result = match cmp {
                None => return Ok(Value::Bool(false)),
                Some(ordering) => match op {
                    Eq => ordering == Ordering::Equal,
                    NotEq => ordering != Ordering::Equal,
                    Lt => ordering == Ordering::Less,
                    LtEq => ordering != Ordering::Greater,
                    Gt => ordering == Ordering::Greater,
                    GtEq => ordering != Ordering::Less,
                    _ => unreachable!(),
                },
            };
            Ok(Value::Bool(result))
        }
        And | Or => {
            let lb = l.as_bool().unwrap_or(false);
            let rb = r.as_bool().unwrap_or(false);
            Ok(Value::Bool(if op == And { lb && rb } else { lb || rb }))
        }
    }
}

/// Date-aware addition: adding an interval expressed in months/years uses
/// calendar arithmetic. Intervals reach us as integer day counts (see
/// [`literal_value`]), so month/year intervals are recognised by multiples of
/// 30/365 only when added to dates; this matches how the TPC-H queries use
/// them (`+ INTERVAL '1' YEAR`, `+ INTERVAL '3' MONTH`).
fn add_with_calendar(l: Value, r: Value) -> Result<Value> {
    match (&l, &r) {
        (Value::Date(d), Value::Int(n)) => Ok(Value::Date(interval_shift(*d, *n))),
        (Value::Int(n), Value::Date(d)) => Ok(Value::Date(interval_shift(*d, *n))),
        _ => l.add(&r),
    }
}

fn sub_with_calendar(l: Value, r: Value) -> Result<Value> {
    match (&l, &r) {
        (Value::Date(d), Value::Int(n)) => Ok(Value::Date(interval_shift(*d, -*n))),
        _ => l.sub(&r),
    }
}

/// Shift a date by an interval encoded as days; multiples of 365/30 are
/// treated as calendar years/months so that month-end boundaries stay exact.
fn interval_shift(date: i32, encoded_days: i64) -> i32 {
    let negative = encoded_days < 0;
    let abs = encoded_days.unsigned_abs() as i32;
    let shifted = if abs != 0 && abs % 365 == 0 {
        add_months(date, (abs / 365) * 12 * if negative { -1 } else { 1 })
    } else if abs != 0 && abs % 30 == 0 {
        add_months(date, (abs / 30) * if negative { -1 } else { 1 })
    } else {
        date + if negative { -abs } else { abs }
    };
    shifted
}

fn apply_unary(op: UnaryOperator, v: Value) -> Result<Value> {
    match op {
        UnaryOperator::Not => match v.as_bool() {
            Some(b) => Ok(Value::Bool(!b)),
            None => Ok(Value::Bool(false)),
        },
        UnaryOperator::Minus => v.neg(),
        UnaryOperator::Plus => Ok(v),
    }
}

fn cast_value(v: Value, ty: DataType) -> Result<Value> {
    match ty {
        DataType::Integer | DataType::BigInt => match v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| EngineError::new(format!("cannot cast '{s}' to integer"))),
            other => Ok(Value::Int(other.as_i64().unwrap_or(0))),
        },
        DataType::Double | DataType::Decimal(_, _) => match v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| EngineError::new(format!("cannot cast '{s}' to double"))),
            other => Ok(Value::Float(other.as_f64().unwrap_or(0.0))),
        },
        DataType::Varchar(_) | DataType::Char(_) => Ok(match v {
            Value::Null => Value::Null,
            other => Value::Str(other.to_string()),
        }),
        DataType::Date => match v {
            Value::Date(_) | Value::Null => Ok(v),
            Value::Str(s) => Value::date_from_str(&s),
            other => err(format!("cannot cast {other:?} to date")),
        },
        DataType::Boolean => Ok(match v.as_bool() {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        }),
    }
}

/// SQL LIKE pattern matching with `%` and `_` wildcards.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        if p.is_empty() {
            return t.is_empty();
        }
        match p[0] {
            '%' => {
                // Try consuming 0..=len characters.
                (0..=t.len()).any(|k| rec(&t[k..], &p[1..]))
            }
            '_' => !t.is_empty() && rec(&t[1..], &p[1..]),
            c => !t.is_empty() && t[0] == c && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

/// Break a predicate into its top-level AND conjuncts.
pub fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::BinaryOp {
            left,
            op: BinaryOperator::And,
            right,
        } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Does this expression contain a sub-query anywhere?
pub fn contains_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => true,
        Expr::BinaryOp { left, right, .. } => contains_subquery(left) || contains_subquery(right),
        Expr::UnaryOp { expr, .. } => contains_subquery(expr),
        Expr::Function(f) => f.args.iter().any(contains_subquery),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            operand.as_deref().is_some_and(contains_subquery)
                || when_then
                    .iter()
                    .any(|(w, t)| contains_subquery(w) || contains_subquery(t))
                || else_expr.as_deref().is_some_and(contains_subquery)
        }
        Expr::InList { expr, list, .. } => {
            contains_subquery(expr) || list.iter().any(contains_subquery)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_subquery(expr) || contains_subquery(low) || contains_subquery(high),
        Expr::Like { expr, pattern, .. } => contains_subquery(expr) || contains_subquery(pattern),
        Expr::IsNull { expr, .. } => contains_subquery(expr),
        Expr::Extract { expr, .. } => contains_subquery(expr),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            contains_subquery(expr)
                || contains_subquery(start)
                || length.as_deref().is_some_and(contains_subquery)
        }
        Expr::Cast { expr, .. } => contains_subquery(expr),
        Expr::Column(_) | Expr::Literal(_) => false,
    }
}

/// Collect every column reference in an expression.
pub fn collect_columns(expr: &Expr, out: &mut Vec<ColumnRef>) {
    match expr {
        Expr::Column(c) => out.push(c.clone()),
        Expr::Literal(_) => {}
        Expr::BinaryOp { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::UnaryOp { expr, .. } => collect_columns(expr, out),
        Expr::Function(f) => f.args.iter().for_each(|a| collect_columns(a, out)),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_columns(o, out);
            }
            for (w, t) in when_then {
                collect_columns(w, out);
                collect_columns(t, out);
            }
            if let Some(e) = else_expr {
                collect_columns(e, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, out);
            list.iter().for_each(|i| collect_columns(i, out));
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_columns(expr, out);
            collect_columns(low, out);
            collect_columns(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_columns(expr, out);
            collect_columns(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_columns(expr, out),
        Expr::Extract { expr, .. } => collect_columns(expr, out),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            collect_columns(expr, out);
            collect_columns(start, out);
            if let Some(l) = length {
                collect_columns(l, out);
            }
        }
        Expr::Cast { expr, .. } => collect_columns(expr, out),
        // Sub-queries keep their own scope; their inner columns do not count
        // towards the enclosing expression's requirements.
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => {
            if let Expr::InSubquery { expr, .. } = expr {
                collect_columns(expr, out);
            }
        }
    }
}

/// `true` when every column referenced by `expr` resolves in `schema`.
fn expr_resolvable(expr: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    cols.iter().all(|c| schema.resolve(c).is_some())
}

/// Find equi-join keys between two schemas among the conjuncts: conjuncts of
/// the form `lhs = rhs` where one side resolves fully in `left` and the other
/// fully in `right`. Returns pairs `(left key expr, right key expr)`.
fn equi_join_keys(conjuncts: &[Expr], left: &Schema, right: &Schema) -> Vec<(Expr, Expr)> {
    let mut keys = Vec::new();
    for c in conjuncts {
        if let Expr::BinaryOp {
            left: l,
            op: BinaryOperator::Eq,
            right: r,
        } = c
        {
            if contains_subquery(c) {
                continue;
            }
            let l_in_left = expr_resolvable(l, left) && has_columns(l);
            let l_in_right = expr_resolvable(l, right) && has_columns(l);
            let r_in_left = expr_resolvable(r, left) && has_columns(r);
            let r_in_right = expr_resolvable(r, right) && has_columns(r);
            if l_in_left && r_in_right && !l_in_right {
                keys.push(((**l).clone(), (**r).clone()));
            } else if r_in_left && l_in_right && !r_in_right {
                keys.push(((**r).clone(), (**l).clone()));
            }
        }
    }
    keys
}

fn has_columns(expr: &Expr) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    !cols.is_empty()
}

fn cross_product(left: &Relation, right: &Relation) -> Relation {
    let schema = left.schema.concat(&right.schema);
    let mut rows = Vec::with_capacity(left.rows.len() * right.rows.len());
    for l in &left.rows {
        for r in &right.rows {
            let mut combined = l.clone();
            combined.extend(r.iter().cloned());
            rows.push(combined);
        }
    }
    Relation { schema, rows }
}

/// Collect the distinct aggregate calls appearing in the projection, HAVING
/// and ORDER BY of a select.
fn collect_aggregates(select: &Select, order_by: &[OrderByItem]) -> Vec<FunctionCall> {
    let mut out: Vec<FunctionCall> = Vec::new();
    let aliases = alias_map(&select.projection);
    let mut visit = |expr: &Expr| {
        collect_aggregate_calls(expr, &mut out);
    };
    for item in &select.projection {
        if let SelectItem::Expr { expr, .. } = item {
            visit(expr);
        }
    }
    if let Some(h) = &select.having {
        visit(&substitute_aliases(h, &aliases));
    }
    for o in order_by {
        visit(&substitute_aliases(&o.expr, &aliases));
    }
    out
}

fn collect_aggregate_calls(expr: &Expr, out: &mut Vec<FunctionCall>) {
    match expr {
        Expr::Function(f) if f.is_aggregate() => {
            if !out.contains(f) {
                out.push(f.clone());
            }
        }
        Expr::Function(f) => f.args.iter().for_each(|a| collect_aggregate_calls(a, out)),
        Expr::BinaryOp { left, right, .. } => {
            collect_aggregate_calls(left, out);
            collect_aggregate_calls(right, out);
        }
        Expr::UnaryOp { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_aggregate_calls(o, out);
            }
            for (w, t) in when_then {
                collect_aggregate_calls(w, out);
                collect_aggregate_calls(t, out);
            }
            if let Some(e) = else_expr {
                collect_aggregate_calls(e, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregate_calls(expr, out);
            list.iter().for_each(|i| collect_aggregate_calls(i, out));
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(low, out);
            collect_aggregate_calls(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Extract { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(start, out);
            if let Some(l) = length {
                collect_aggregate_calls(l, out);
            }
        }
        Expr::Cast { expr, .. } => collect_aggregate_calls(expr, out),
        // Aggregates inside sub-queries belong to the sub-query.
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Column(_) | Expr::Literal(_) => {}
    }
}

/// Map projection aliases to their expressions.
fn alias_map(projection: &[SelectItem]) -> HashMap<String, Expr> {
    let mut map = HashMap::new();
    for item in projection {
        if let SelectItem::Expr {
            expr,
            alias: Some(alias),
        } = item
        {
            map.insert(alias.to_ascii_lowercase(), expr.clone());
        }
    }
    map
}

/// Replace unqualified column references that name a projection alias with the
/// aliased expression (SQL allows aliases in GROUP BY / ORDER BY).
fn substitute_aliases(expr: &Expr, aliases: &HashMap<String, Expr>) -> Expr {
    match expr {
        Expr::Column(c) if c.table.is_none() => {
            match aliases.get(&c.name.to_ascii_lowercase()) {
                Some(e) => e.clone(),
                None => expr.clone(),
            }
        }
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(substitute_aliases(left, aliases)),
            op: *op,
            right: Box::new(substitute_aliases(right, aliases)),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(substitute_aliases(expr, aliases)),
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| substitute_aliases(a, aliases))
                .collect(),
            distinct: f.distinct,
        }),
        other => other.clone(),
    }
}

/// Schema of the projection output: alias, column name or a synthesized name.
fn projection_schema(projection: &[SelectItem], input: &Schema) -> Result<Schema> {
    let mut names = Vec::new();
    for item in projection {
        match item {
            SelectItem::Wildcard => names.extend(input.cols.iter().map(|c| c.name.clone())),
            SelectItem::QualifiedWildcard(q) => {
                for idx in input.indices_of_qualifier(q) {
                    names.push(input.cols[idx].name.clone());
                }
            }
            SelectItem::Expr { expr, alias } => names.push(match alias {
                Some(a) => a.clone(),
                None => derived_name(expr),
            }),
        }
    }
    Ok(Schema::unqualified(&names))
}

fn derived_name(expr: &Expr) -> String {
    match expr {
        Expr::Column(c) => c.name.clone(),
        Expr::Function(f) => f.name.to_ascii_lowercase(),
        _ => "?column?".to_string(),
    }
}

fn sort_by_keys(rows: &mut [(Row, Vec<Value>)], order_by: &[OrderByItem]) {
    if order_by.is_empty() {
        return;
    }
    rows.sort_by(|a, b| {
        for (i, item) in order_by.iter().enumerate() {
            let cmp = a.1[i].compare(&b.1[i]).unwrap_or(Ordering::Equal);
            let cmp = if item.asc { cmp } else { cmp.reverse() };
            if cmp != Ordering::Equal {
                return cmp;
            }
        }
        Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("ECONOMY ANODIZED STEEL", "%ANODIZED%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("special%case", "special%case"));
    }

    #[test]
    fn conjunct_splitting() {
        let e = mtsql::parse_expression("a = 1 AND b = 2 AND (c = 3 OR d = 4)").unwrap();
        let mut out = Vec::new();
        split_conjuncts(&e, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn subquery_detection() {
        let e = mtsql::parse_expression("a = 1 AND EXISTS (SELECT 1 FROM t)").unwrap();
        assert!(contains_subquery(&e));
        let e = mtsql::parse_expression("a = 1 AND b < 3").unwrap();
        assert!(!contains_subquery(&e));
    }

    #[test]
    fn alias_substitution() {
        let aliases: HashMap<String, Expr> = [(
            "revenue".to_string(),
            mtsql::parse_expression("SUM(l_extendedprice)").unwrap(),
        )]
        .into_iter()
        .collect();
        let e = mtsql::parse_expression("revenue").unwrap();
        let s = substitute_aliases(&e, &aliases);
        assert!(matches!(s, Expr::Function(_)));
    }

    #[test]
    fn interval_shift_years_and_months() {
        let base = parse_date("1995-01-31").unwrap();
        // one calendar month
        assert_eq!(interval_shift(base, 30), parse_date("1995-02-28").unwrap());
        // one calendar year
        assert_eq!(interval_shift(base, 365), parse_date("1996-01-31").unwrap());
        // plain days
        assert_eq!(interval_shift(base, 7), base + 7);
    }

    #[test]
    fn binary_comparison_with_null_is_false() {
        let v = apply_binary(BinaryOperator::Eq, Value::Null, Value::Int(1)).unwrap();
        assert_eq!(v, Value::Bool(false));
    }
}

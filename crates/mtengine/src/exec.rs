//! Query execution: expression evaluation, joins, grouping/aggregation,
//! sub-queries and DML.
//!
//! The executor is a materializing interpreter: every operator consumes and
//! produces a [`Relation`] of reference-counted [`SharedRow`]s, so relations
//! flowing between operators share row storage with the base tables instead
//! of deep-cloning it. Base-table scans evaluate the single-table conjuncts
//! of the WHERE clause *during* the scan (non-qualifying rows are never
//! copied) and use `ttid = k` / `ttid IN (...)` conjuncts to skip entire
//! partition buckets of tenant-partitioned tables. Equi-joins are executed as
//! hash joins, other joins as filtered nested loops. Uncorrelated sub-queries
//! are evaluated once per query and cached.

use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

use mtsql::ast::*;

use crate::error::{err, EngineError, Result};
use crate::schema::Schema;
use crate::table::{Row, SharedRow, Table};
use crate::value::{add_months, civil_from_days, parse_date, Value};
use crate::Engine;

/// A materialized intermediate result. Rows are shared with their producers;
/// cloning a relation (or filtering one) copies pointers, not values.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    pub schema: Schema,
    pub rows: Vec<SharedRow>,
}

/// Evaluation environment: the row currently in scope plus the chain of outer
/// rows for correlated sub-queries.
#[derive(Clone, Copy)]
pub struct Env<'a> {
    pub schema: &'a Schema,
    pub row: &'a [Value],
    pub parent: Option<&'a Env<'a>>,
}

impl<'a> Env<'a> {
    /// Borrowing column lookup: the resolved value plus whether it came from
    /// an outer (parent) environment. Comparison-only call sites use the
    /// borrow directly; owning sites clone the (cheap, `Arc`-interned) value.
    fn lookup_ref(&self, col: &ColumnRef) -> Option<(&'a Value, bool)> {
        if let Some(idx) = self.schema.resolve(col) {
            return Some((&self.row[idx], false));
        }
        self.parent
            .and_then(|p| p.lookup_ref(col))
            .map(|(v, _)| (v, true))
    }
}

/// Per-query executor borrowing the engine (tables, UDFs, statistics).
pub struct Executor<'e> {
    engine: &'e Engine,
    /// Cache of uncorrelated sub-query results, keyed by their SQL text.
    subquery_cache: RefCell<HashMap<String, Rc<Relation>>>,
    /// LIKE patterns precompiled once per pattern text instead of once per row.
    like_cache: RefCell<HashMap<String, Rc<LikePattern>>>,
    /// `true` while the executor detected an escape to an outer row during the
    /// currently executing sub-query (conservative correlation detection).
    correlation_witness: Cell<bool>,
}

impl<'e> Executor<'e> {
    /// Create an executor for one top-level query.
    pub fn new(engine: &'e Engine) -> Self {
        Executor {
            engine,
            subquery_cache: RefCell::new(HashMap::new()),
            like_cache: RefCell::new(HashMap::new()),
            correlation_witness: Cell::new(false),
        }
    }

    /// The compiled form of a LIKE pattern, cached per executor.
    fn compiled_like(&self, pattern: &str) -> Rc<LikePattern> {
        if let Some(hit) = self.like_cache.borrow().get(pattern) {
            return Rc::clone(hit);
        }
        let compiled = Rc::new(LikePattern::new(pattern));
        self.like_cache
            .borrow_mut()
            .insert(pattern.to_string(), Rc::clone(&compiled));
        compiled
    }

    // ------------------------------------------------------------------
    // Query execution
    // ------------------------------------------------------------------

    /// Execute a query with an optional outer environment (for correlated
    /// sub-queries).
    pub fn execute_query(&self, query: &Query, outer: Option<&Env>) -> Result<Relation> {
        let select = &query.body;
        let input = self.execute_from_where(select, outer)?;

        let aggregates = collect_aggregates(select, &query.order_by);
        let grouped = !select.group_by.is_empty() || !aggregates.is_empty();

        let mut out = if grouped {
            self.execute_grouped(query, input, aggregates, outer)?
        } else {
            self.execute_projection(query, input, outer)?
        };

        if query.limit.is_some() || !query.order_by.is_empty() {
            // ordering already applied inside the two paths; only limit here
            if let Some(limit) = query.limit {
                out.rows.truncate(limit as usize);
            }
        }
        Ok(out)
    }

    /// Non-aggregate path: projection, DISTINCT, ORDER BY.
    fn execute_projection(
        &self,
        query: &Query,
        input: Relation,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let select = &query.body;
        let out_schema = projection_schema(&select.projection, &input.schema)?;
        let aliases = alias_map(&select.projection);
        let order_exprs: Vec<Expr> = query
            .order_by
            .iter()
            .map(|o| substitute_aliases(&o.expr, &aliases))
            .collect();

        let mut produced: Vec<(Row, Vec<Value>)> = Vec::with_capacity(input.rows.len());
        for row in &input.rows {
            let env = Env {
                schema: &input.schema,
                row,
                parent: outer,
            };
            let out_row = self.project_row(&select.projection, &env)?;
            let keys = order_exprs
                .iter()
                .map(|e| self.eval(e, &env))
                .collect::<Result<Vec<_>>>()?;
            produced.push((out_row, keys));
        }

        if select.distinct {
            let mut seen = std::collections::HashSet::new();
            produced.retain(|(row, _)| seen.insert(row.clone()));
        }
        sort_by_keys(&mut produced, &query.order_by);

        Ok(Relation {
            schema: out_schema,
            rows: produced.into_iter().map(|(r, _)| r.into()).collect(),
        })
    }

    /// Aggregate path: grouping, aggregate evaluation, HAVING, ORDER BY.
    fn execute_grouped(
        &self,
        query: &Query,
        input: Relation,
        aggregates: Vec<FunctionCall>,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let select = &query.body;
        let aliases = alias_map(&select.projection);
        let group_exprs: Vec<Expr> = select
            .group_by
            .iter()
            .map(|e| substitute_aliases(e, &aliases))
            .collect();

        // Build groups preserving first-seen order.
        let mut group_index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        for (i, row) in input.rows.iter().enumerate() {
            let env = Env {
                schema: &input.schema,
                row,
                parent: outer,
            };
            let key = group_exprs
                .iter()
                .map(|e| self.eval(e, &env))
                .collect::<Result<Vec<_>>>()?;
            match group_index.get(&key) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    group_index.insert(key.clone(), groups.len());
                    groups.push((key, vec![i]));
                }
            }
        }
        // Aggregates without GROUP BY over empty input still produce one row.
        if groups.is_empty() && select.group_by.is_empty() {
            groups.push((Vec::new(), Vec::new()));
        }

        let out_schema = projection_schema(&select.projection, &input.schema)?;
        let having_expr = select
            .having
            .as_ref()
            .map(|h| substitute_aliases(h, &aliases));
        let order_exprs: Vec<Expr> = query
            .order_by
            .iter()
            .map(|o| substitute_aliases(&o.expr, &aliases))
            .collect();

        // A group with no members (global aggregate over an empty input) still
        // needs a representative row so that non-aggregated columns (e.g. the
        // constant factors of inlined conversion functions) resolve — to NULL.
        let null_row: Row = vec![Value::Null; input.schema.len()];
        let mut produced: Vec<(Row, Vec<Value>)> = Vec::new();
        for (key, members) in &groups {
            // Compute aggregate values for this group.
            let mut agg_values = Vec::with_capacity(aggregates.len());
            for agg in &aggregates {
                agg_values.push(self.eval_aggregate(agg, &input, members, outer)?);
            }
            let first_row: &[Value] = members
                .first()
                .map(|&i| input.rows[i].as_ref())
                .unwrap_or(&null_row);
            let first_schema = &input.schema;
            let gctx = GroupContext {
                group_exprs: &group_exprs,
                group_key: key,
                aggregates: &aggregates,
                agg_values: &agg_values,
                env: Env {
                    schema: first_schema,
                    row: first_row,
                    parent: outer,
                },
            };
            if let Some(h) = &having_expr {
                let keep = self.eval_in_group(h, &gctx)?.as_bool().unwrap_or(false);
                if !keep {
                    continue;
                }
            }
            let mut out_row = Vec::with_capacity(select.projection.len());
            for item in &select.projection {
                match item {
                    SelectItem::Wildcard => out_row.extend(gctx.env.row.iter().cloned()),
                    SelectItem::QualifiedWildcard(q) => {
                        for idx in gctx.env.schema.indices_of_qualifier(q) {
                            out_row.push(gctx.env.row[idx].clone());
                        }
                    }
                    SelectItem::Expr { expr, .. } => out_row.push(self.eval_in_group(expr, &gctx)?),
                }
            }
            let keys = order_exprs
                .iter()
                .map(|e| self.eval_in_group(e, &gctx))
                .collect::<Result<Vec<_>>>()?;
            produced.push((out_row, keys));
        }

        if select.distinct {
            let mut seen = std::collections::HashSet::new();
            produced.retain(|(row, _)| seen.insert(row.clone()));
        }
        sort_by_keys(&mut produced, &query.order_by);

        Ok(Relation {
            schema: out_schema,
            rows: produced.into_iter().map(|(r, _)| r.into()).collect(),
        })
    }

    // ------------------------------------------------------------------
    // FROM / WHERE
    // ------------------------------------------------------------------

    fn execute_from_where(&self, select: &Select, outer: Option<&Env>) -> Result<Relation> {
        if select.from.is_empty() {
            // `SELECT expr` without FROM: a single empty row.
            return Ok(Relation {
                schema: Schema::new(),
                rows: vec![Vec::new().into()],
            });
        }

        let mut conjuncts: Vec<Expr> = Vec::new();
        if let Some(sel) = &select.selection {
            split_conjuncts(sel, &mut conjuncts);
        }

        // Scan each FROM item with its single-item predicates (no sub-queries,
        // fully resolvable in that item) pushed into the scan itself: base
        // tables evaluate them row-by-row without materializing non-qualifying
        // rows, and `ttid` scope conjuncts prune whole partition buckets.
        // Consumed conjuncts are removed from the list; FROM order decides
        // which item claims an ambiguous (multi-resolvable) conjunct, exactly
        // like the post-materialization pushdown did before.
        let mut items: Vec<Relation> = Vec::with_capacity(select.from.len());
        for table_ref in &select.from {
            items.push(self.execute_table_ref_filtered(table_ref, &mut conjuncts, outer)?);
        }

        let mut remaining: Vec<Expr> = conjuncts;

        // Greedy hash-join ordering over the FROM items.
        let mut current = items.remove(0);
        while !items.is_empty() {
            let mut chosen: Option<(usize, Vec<(Expr, Expr)>)> = None;
            for (i, item) in items.iter().enumerate() {
                let keys = equi_join_keys(&remaining, &current.schema, &item.schema);
                if !keys.is_empty() {
                    chosen = Some((i, keys));
                    break;
                }
            }
            match chosen {
                Some((i, keys)) => {
                    let right = items.remove(i);
                    // Remove the consumed conjuncts.
                    remaining.retain(|c| {
                        !keys.iter().any(|(l, r)| {
                            matches!(c, Expr::BinaryOp { left, op: BinaryOperator::Eq, right: rr }
                                if (**left == *l && **rr == *r) || (**left == *r && **rr == *l))
                        })
                    });
                    current = self.hash_join(&current, &right, &keys, JoinKind::Inner, outer)?;
                }
                None => {
                    let right = items.remove(0);
                    current = cross_product(&current, &right);
                }
            }
            // Apply any predicates that became resolvable, to keep
            // intermediate results small.
            let mut still: Vec<Expr> = Vec::new();
            for c in remaining.drain(..) {
                if !contains_subquery(&c) && expr_resolvable(&c, &current.schema) {
                    current = self.filter_relation(&current, &c, outer)?;
                } else {
                    still.push(c);
                }
            }
            remaining = still;
        }

        // Apply whatever is left (correlated predicates, sub-queries, ...).
        for c in &remaining {
            current = self.filter_relation(&current, c, outer)?;
        }
        Ok(current)
    }

    fn execute_table_ref(&self, table_ref: &TableRef, outer: Option<&Env>) -> Result<Relation> {
        let mut no_filters = Vec::new();
        self.execute_table_ref_filtered(table_ref, &mut no_filters, outer)
    }

    /// Execute a FROM item with a pool of candidate filter conjuncts. Every
    /// conjunct that is fully resolvable against the item (and sub-query free)
    /// is *consumed* from `conjuncts` and applied as early as possible: at
    /// scan time for base tables (including partition pruning on `ttid`
    /// predicates), immediately after materialization for views, derived
    /// tables and joins.
    fn execute_table_ref_filtered(
        &self,
        table_ref: &TableRef,
        conjuncts: &mut Vec<Expr>,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        match table_ref {
            TableRef::Table { name, alias } => {
                let binding = alias.as_deref().unwrap_or(name);
                if let Some(view) = self.engine.database().view(name) {
                    let view = view.clone();
                    let rel = self.execute_query(&view, outer)?;
                    let names = rel.schema.names();
                    let rel = Relation {
                        schema: Schema::qualified(binding, &names),
                        rows: rel.rows,
                    };
                    return self.apply_pushed_filters(rel, conjuncts, outer);
                }
                let table = self.engine.database().table(name)?;
                let schema = Schema::qualified(binding, &table.columns);
                let pushed = take_applicable(conjuncts, &schema);
                self.scan_table(table, schema, &pushed, outer)
            }
            TableRef::Derived { query, alias } => {
                let rel = self.execute_query(query, outer)?;
                let names = rel.schema.names();
                let rel = Relation {
                    schema: Schema::qualified(alias, &names),
                    rows: rel.rows,
                };
                self.apply_pushed_filters(rel, conjuncts, outer)
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let mut on_conjuncts = Vec::new();
                if let Some(cond) = on {
                    split_conjuncts(cond, &mut on_conjuncts);
                }
                let (l, r) = match kind {
                    JoinKind::Inner => {
                        // Single-side ON conjuncts of an inner join may be
                        // evaluated below the join; the left leg claims
                        // ambiguous ones first, matching how unqualified
                        // names resolve on the combined schema.
                        let l = self.execute_table_ref_filtered(left, &mut on_conjuncts, outer)?;
                        let r = self.execute_table_ref_filtered(right, &mut on_conjuncts, outer)?;
                        (l, r)
                    }
                    JoinKind::Left => {
                        // The preserved (left) side must not be pre-filtered
                        // by ON predicates; right-side-only predicates may be
                        // pushed into the right scan (non-matching right rows
                        // are simply absent, left rows still null-extend).
                        let l = self.execute_table_ref(left, outer)?;
                        let mut right_only: Vec<Expr> = Vec::new();
                        if let Some(rschema) = self.base_table_schema(right) {
                            on_conjuncts.retain(|c| {
                                let push = !contains_subquery(c)
                                    && expr_resolvable(c, &rschema)
                                    && !expr_resolvable(c, &l.schema);
                                if push {
                                    right_only.push(c.clone());
                                }
                                !push
                            });
                        }
                        let r = self.execute_table_ref_filtered(right, &mut right_only, outer)?;
                        // Anything the right leg could not consume keeps its
                        // place in the ON clause.
                        on_conjuncts.append(&mut right_only);
                        (l, r)
                    }
                    JoinKind::Cross => {
                        let l = self.execute_table_ref(left, outer)?;
                        let r = self.execute_table_ref(right, outer)?;
                        let rel = cross_product(&l, &r);
                        return self.apply_pushed_filters(rel, conjuncts, outer);
                    }
                };
                let keys = equi_join_keys(&on_conjuncts, &l.schema, &r.schema);
                let residual: Vec<Expr> = on_conjuncts
                    .into_iter()
                    .filter(|c| {
                        !keys.iter().any(|(lk, rk)| {
                            matches!(c, Expr::BinaryOp { left, op: BinaryOperator::Eq, right }
                                if (**left == *lk && **right == *rk)
                                    || (**left == *rk && **right == *lk))
                        })
                    })
                    .collect();
                let joined = if keys.is_empty() {
                    self.nested_loop_join(&l, &r, &residual, *kind, outer)?
                } else {
                    self.hash_join_with_residual(&l, &r, &keys, &residual, *kind, outer)?
                };
                self.apply_pushed_filters(joined, conjuncts, outer)
            }
        }
    }

    /// Schema of a FROM item when it is a plain base table (not a view);
    /// usable for pushability checks without executing the item.
    fn base_table_schema(&self, table_ref: &TableRef) -> Option<Schema> {
        match table_ref {
            TableRef::Table { name, alias } if self.engine.database().view(name).is_none() => {
                let binding = alias.as_deref().unwrap_or(name);
                let table = self.engine.database().table(name).ok()?;
                Some(Schema::qualified(binding, &table.columns))
            }
            _ => None,
        }
    }

    /// Apply (and consume) every pushable conjunct that resolves against an
    /// already-materialized relation.
    fn apply_pushed_filters(
        &self,
        rel: Relation,
        conjuncts: &mut Vec<Expr>,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let applicable = take_applicable(conjuncts, &rel.schema);
        if applicable.is_empty() {
            return Ok(rel);
        }
        let filter = self.compile_filter(&applicable, &rel.schema);
        let mut rows = Vec::with_capacity(rel.rows.len());
        for row in &rel.rows {
            if self.filter_matches(&filter, &rel.schema, row, outer)? {
                rows.push(SharedRow::clone(row));
            }
        }
        Ok(Relation {
            schema: rel.schema,
            rows,
        })
    }

    /// Scan one base table: prune partition buckets using `ttid` conjuncts,
    /// evaluate the remaining pushed filters per row, and share (rather than
    /// copy) every qualifying row.
    fn scan_table(
        &self,
        table: &Table,
        schema: Schema,
        pushed: &[Expr],
        outer: Option<&Env>,
    ) -> Result<Relation> {
        // Partition pruning: intersect the key sets implied by every pushed
        // `ttid = k` / `ttid IN (...)` conjunct.
        let mut prune_keys: Option<BTreeSet<i64>> = None;
        let mut pruning_preds: Vec<&Expr> = Vec::new();
        if self.engine.config().partition_pruning {
            if let Some(pidx) = table.partition_column() {
                for c in pushed {
                    if let Some(keys) = self.partition_keys_of_conjunct(c, &schema, pidx) {
                        pruning_preds.push(c);
                        prune_keys = Some(match prune_keys {
                            None => keys,
                            Some(prev) => prev.intersection(&keys).copied().collect(),
                        });
                    }
                }
            }
        }
        // Filters evaluated per visited row. Rows inside a selected bucket
        // satisfy the pruning predicates by construction (the bucket key *is*
        // the ttid value), so those predicates are skipped for bucketed rows
        // and only re-checked for loose rows, which carry arbitrary keys.
        let residual: Vec<Expr> = pushed
            .iter()
            .filter(|c| !pruning_preds.contains(c))
            .cloned()
            .collect();
        let residual_filter = self.compile_filter(&residual, &schema);
        let full_filter = self.compile_filter(pushed, &schema);

        let mut rows: Vec<SharedRow> = Vec::new();
        let mut visited: u64 = 0;
        let mut buckets_scanned: u64 = 0;
        let mut buckets_pruned: u64 = 0;

        match &prune_keys {
            Some(keys) => {
                for (key, bucket) in table.partitions() {
                    if !keys.contains(&key) {
                        buckets_pruned += 1;
                        continue;
                    }
                    buckets_scanned += 1;
                    for row in bucket {
                        visited += 1;
                        if self.filter_matches(&residual_filter, &schema, row, outer)? {
                            rows.push(SharedRow::clone(row));
                        }
                    }
                }
                for row in table.loose_rows() {
                    visited += 1;
                    if self.filter_matches(&full_filter, &schema, row, outer)? {
                        rows.push(SharedRow::clone(row));
                    }
                }
            }
            None => {
                buckets_scanned = table.partition_count() as u64;
                for row in table.rows() {
                    visited += 1;
                    if self.filter_matches(&full_filter, &schema, row, outer)? {
                        rows.push(SharedRow::clone(row));
                    }
                }
            }
        }

        self.engine.note_rows_scanned(visited);
        self.engine.note_partitions(buckets_scanned, buckets_pruned);
        Ok(Relation { schema, rows })
    }

    /// The set of partition keys a conjunct restricts the partition column
    /// to, or `None` when the conjunct is not a recognizable key predicate.
    fn partition_keys_of_conjunct(
        &self,
        conjunct: &Expr,
        schema: &Schema,
        partition_col: usize,
    ) -> Option<BTreeSet<i64>> {
        let is_partition_column =
            |e: &Expr| matches!(e, Expr::Column(c) if schema.resolve(c) == Some(partition_col));
        match conjunct {
            Expr::BinaryOp {
                left,
                op: BinaryOperator::Eq,
                right,
            } => {
                let key_expr = if is_partition_column(left) {
                    right
                } else if is_partition_column(right) {
                    left
                } else {
                    return None;
                };
                match self.fold_const(key_expr)? {
                    Value::Int(k) => Some([k].into_iter().collect()),
                    _ => None,
                }
            }
            Expr::InList {
                expr,
                list,
                negated: false,
            } if is_partition_column(expr) => {
                let mut keys = BTreeSet::new();
                for item in list {
                    match self.fold_const(item)? {
                        Value::Int(k) => {
                            keys.insert(k);
                        }
                        _ => return None,
                    }
                }
                Some(keys)
            }
            _ => None,
        }
    }

    /// Evaluate a column- and sub-query-free expression to a constant.
    fn fold_const(&self, expr: &Expr) -> Option<Value> {
        if has_columns(expr) || contains_subquery(expr) {
            return None;
        }
        let schema = Schema::new();
        let env = Env {
            schema: &schema,
            row: &[],
            parent: None,
        };
        self.eval(expr, &env).ok()
    }

    fn filter_relation(
        &self,
        rel: &Relation,
        pred: &Expr,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let compiled = self.compile_filter(std::slice::from_ref(pred), &rel.schema);
        let mut rows = Vec::with_capacity(rel.rows.len());
        for row in &rel.rows {
            if self.filter_matches(&compiled, &rel.schema, row, outer)? {
                rows.push(SharedRow::clone(row));
            }
        }
        Ok(Relation {
            schema: rel.schema.clone(),
            rows,
        })
    }

    // ------------------------------------------------------------------
    // Compiled scan filters
    // ------------------------------------------------------------------

    /// Compile conjuncts into the fast per-row predicate forms where possible
    /// (pre-resolved column index, pre-folded constants, precompiled LIKE
    /// patterns); everything else falls back to interpreted evaluation.
    fn compile_filter(&self, conjuncts: &[Expr], schema: &Schema) -> Vec<CompiledPred> {
        conjuncts
            .iter()
            .map(|c| self.compile_pred(c, schema))
            .collect()
    }

    fn compile_pred(&self, conjunct: &Expr, schema: &Schema) -> CompiledPred {
        let column_index = |e: &Expr| match e {
            Expr::Column(c) => schema.resolve(c),
            _ => None,
        };
        match conjunct {
            Expr::BinaryOp { left, op, right }
                if matches!(
                    op,
                    BinaryOperator::Eq
                        | BinaryOperator::NotEq
                        | BinaryOperator::Lt
                        | BinaryOperator::LtEq
                        | BinaryOperator::Gt
                        | BinaryOperator::GtEq
                ) =>
            {
                if let (Some(idx), Some(value)) = (column_index(left), self.fold_const(right)) {
                    return CompiledPred::Compare {
                        idx,
                        op: *op,
                        value,
                    };
                }
                if let (Some(idx), Some(value)) = (column_index(right), self.fold_const(left)) {
                    return CompiledPred::Compare {
                        idx,
                        op: flip_comparison(*op),
                        value,
                    };
                }
                CompiledPred::Generic(conjunct.clone())
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                if let Some(idx) = column_index(expr) {
                    let values: Option<Vec<Value>> =
                        list.iter().map(|i| self.fold_const(i)).collect();
                    if let Some(values) = values {
                        return CompiledPred::InSet {
                            idx,
                            values,
                            negated: *negated,
                        };
                    }
                }
                CompiledPred::Generic(conjunct.clone())
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                if let (Some(idx), Some(lo), Some(hi)) = (
                    column_index(expr),
                    self.fold_const(low),
                    self.fold_const(high),
                ) {
                    return CompiledPred::Between {
                        idx,
                        lo,
                        hi,
                        negated: *negated,
                    };
                }
                CompiledPred::Generic(conjunct.clone())
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                if let (Some(idx), Expr::Literal(Literal::String(p))) =
                    (column_index(expr), pattern.as_ref())
                {
                    return CompiledPred::Like {
                        idx,
                        pattern: self.compiled_like(p),
                        negated: *negated,
                    };
                }
                CompiledPred::Generic(conjunct.clone())
            }
            other => CompiledPred::Generic(other.clone()),
        }
    }

    /// `true` when every compiled conjunct accepts the row. The fast forms
    /// compare against borrowed values; only the generic fallback builds an
    /// evaluation environment.
    fn filter_matches(
        &self,
        filter: &[CompiledPred],
        schema: &Schema,
        row: &[Value],
        outer: Option<&Env>,
    ) -> Result<bool> {
        for pred in filter {
            let ok = match pred {
                CompiledPred::Compare { idx, op, value } => match row[*idx].compare(value) {
                    None => false,
                    Some(ord) => match op {
                        BinaryOperator::Eq => ord == Ordering::Equal,
                        BinaryOperator::NotEq => ord != Ordering::Equal,
                        BinaryOperator::Lt => ord == Ordering::Less,
                        BinaryOperator::LtEq => ord != Ordering::Greater,
                        BinaryOperator::Gt => ord == Ordering::Greater,
                        BinaryOperator::GtEq => ord != Ordering::Less,
                        _ => unreachable!("compile_pred only emits comparisons"),
                    },
                },
                CompiledPred::InSet {
                    idx,
                    values,
                    negated,
                } => {
                    let v = &row[*idx];
                    if v.is_null() {
                        false
                    } else {
                        let found = values.iter().any(|i| v.sql_eq(i) == Some(true));
                        found != *negated
                    }
                }
                CompiledPred::Between {
                    idx,
                    lo,
                    hi,
                    negated,
                } => {
                    let v = &row[*idx];
                    let inside = matches!(v.compare(lo), Some(Ordering::Greater | Ordering::Equal))
                        && matches!(v.compare(hi), Some(Ordering::Less | Ordering::Equal));
                    inside != *negated
                }
                CompiledPred::Like {
                    idx,
                    pattern,
                    negated,
                } => match row[*idx].as_str() {
                    Some(text) => pattern.matches(text) != *negated,
                    None => false,
                },
                CompiledPred::Generic(expr) => {
                    let env = Env {
                        schema,
                        row,
                        parent: outer,
                    };
                    self.eval(expr, &env)?.as_bool().unwrap_or(false)
                }
            };
            if !ok {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn hash_join(
        &self,
        left: &Relation,
        right: &Relation,
        keys: &[(Expr, Expr)],
        kind: JoinKind,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        self.hash_join_with_residual(left, right, keys, &[], kind, outer)
    }

    fn hash_join_with_residual(
        &self,
        left: &Relation,
        right: &Relation,
        keys: &[(Expr, Expr)],
        residual: &[Expr],
        kind: JoinKind,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let schema = left.schema.concat(&right.schema);
        // Build hash table on the right input.
        let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, row) in right.rows.iter().enumerate() {
            let env = Env {
                schema: &right.schema,
                row,
                parent: outer,
            };
            let key = keys
                .iter()
                .map(|(_, r)| self.eval(r, &env))
                .collect::<Result<Vec<_>>>()?;
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(i);
        }
        let right_width = right.schema.len();
        let mut rows = Vec::new();
        for lrow in &left.rows {
            let lenv = Env {
                schema: &left.schema,
                row: lrow,
                parent: outer,
            };
            let key = keys
                .iter()
                .map(|(l, _)| self.eval(l, &lenv))
                .collect::<Result<Vec<_>>>()?;
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(candidates) = table.get(&key) {
                    for &ri in candidates {
                        let combined = concat_rows(lrow, &right.rows[ri]);
                        if residual.is_empty() || {
                            let env = Env {
                                schema: &schema,
                                row: &combined,
                                parent: outer,
                            };
                            let mut ok = true;
                            for r in residual {
                                if !self.eval(r, &env)?.as_bool().unwrap_or(false) {
                                    ok = false;
                                    break;
                                }
                            }
                            ok
                        } {
                            matched = true;
                            rows.push(combined.into());
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                rows.push(null_extend(lrow, right_width));
            }
        }
        Ok(Relation { schema, rows })
    }

    fn nested_loop_join(
        &self,
        left: &Relation,
        right: &Relation,
        conjuncts: &[Expr],
        kind: JoinKind,
        outer: Option<&Env>,
    ) -> Result<Relation> {
        let schema = left.schema.concat(&right.schema);
        let right_width = right.schema.len();
        let mut rows = Vec::new();
        for lrow in &left.rows {
            let mut matched = false;
            for rrow in &right.rows {
                let combined = concat_rows(lrow, rrow);
                let env = Env {
                    schema: &schema,
                    row: &combined,
                    parent: outer,
                };
                let mut ok = true;
                for c in conjuncts {
                    if !self.eval(c, &env)?.as_bool().unwrap_or(false) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    matched = true;
                    rows.push(combined.into());
                }
            }
            if !matched && kind == JoinKind::Left {
                rows.push(null_extend(lrow, right_width));
            }
        }
        Ok(Relation { schema, rows })
    }

    // ------------------------------------------------------------------
    // Aggregates
    // ------------------------------------------------------------------

    fn eval_aggregate(
        &self,
        agg: &FunctionCall,
        input: &Relation,
        members: &[usize],
        outer: Option<&Env>,
    ) -> Result<Value> {
        let name = agg.name.to_ascii_uppercase();
        // COUNT(*) — no argument.
        if agg.args.is_empty() {
            if name != "COUNT" {
                return err(format!("aggregate `{name}` requires an argument"));
            }
            return Ok(Value::Int(members.len() as i64));
        }
        let arg = &agg.args[0];
        let mut values = Vec::with_capacity(members.len());
        for &i in members {
            let env = Env {
                schema: &input.schema,
                row: &input.rows[i],
                parent: outer,
            };
            let v = self.eval(arg, &env)?;
            if !v.is_null() {
                values.push(v);
            }
        }
        if agg.distinct {
            let mut seen = std::collections::HashSet::new();
            values.retain(|v| seen.insert(v.clone()));
        }
        match name.as_str() {
            "COUNT" => Ok(Value::Int(values.len() as i64)),
            "SUM" => {
                if values.is_empty() {
                    return Ok(Value::Null);
                }
                let mut acc = Value::Int(0);
                for v in &values {
                    acc = acc.add(v)?;
                }
                Ok(acc)
            }
            "AVG" => {
                if values.is_empty() {
                    return Ok(Value::Null);
                }
                let mut acc = 0.0;
                for v in &values {
                    acc += v
                        .as_f64()
                        .ok_or_else(|| EngineError::new("AVG over non-numeric value"))?;
                }
                Ok(Value::Float(acc / values.len() as f64))
            }
            "MIN" => Ok(values
                .into_iter()
                .reduce(|a, b| {
                    if b.compare(&a) == Some(Ordering::Less) {
                        b
                    } else {
                        a
                    }
                })
                .unwrap_or(Value::Null)),
            "MAX" => Ok(values
                .into_iter()
                .reduce(|a, b| {
                    if b.compare(&a) == Some(Ordering::Greater) {
                        b
                    } else {
                        a
                    }
                })
                .unwrap_or(Value::Null)),
            other => err(format!("unsupported aggregate `{other}`")),
        }
    }

    fn eval_in_group(&self, expr: &Expr, ctx: &GroupContext) -> Result<Value> {
        // Group-by expressions evaluate to the group key.
        for (i, g) in ctx.group_exprs.iter().enumerate() {
            if g == expr {
                return Ok(ctx.group_key[i].clone());
            }
        }
        // Aggregates evaluate to their precomputed value.
        if let Expr::Function(fc) = expr {
            if fc.is_aggregate() {
                for (i, a) in ctx.aggregates.iter().enumerate() {
                    if a == fc {
                        return Ok(ctx.agg_values[i].clone());
                    }
                }
                return err(format!("aggregate `{}` was not precomputed", fc.name));
            }
        }
        match expr {
            Expr::Column(_) | Expr::Literal(_) => self.eval(expr, &ctx.env),
            Expr::BinaryOp { left, op, right } => {
                let l = self.eval_in_group(left, ctx)?;
                let r = self.eval_in_group(right, ctx)?;
                apply_binary(*op, l, r)
            }
            Expr::UnaryOp { op, expr: inner } => {
                let v = self.eval_in_group(inner, ctx)?;
                apply_unary(*op, v)
            }
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => {
                let operand_val = operand
                    .as_ref()
                    .map(|o| self.eval_in_group(o, ctx))
                    .transpose()?;
                for (cond, out) in when_then {
                    let hit = match &operand_val {
                        Some(op_val) => {
                            let c = self.eval_in_group(cond, ctx)?;
                            op_val.sql_eq(&c).unwrap_or(false)
                        }
                        None => self.eval_in_group(cond, ctx)?.as_bool().unwrap_or(false),
                    };
                    if hit {
                        return self.eval_in_group(out, ctx);
                    }
                }
                match else_expr {
                    Some(e) => self.eval_in_group(e, ctx),
                    None => Ok(Value::Null),
                }
            }
            Expr::Function(fc) => {
                let args = fc
                    .args
                    .iter()
                    .map(|a| self.eval_in_group(a, ctx))
                    .collect::<Result<Vec<_>>>()?;
                self.call_scalar(&fc.name, &args)
            }
            // Everything else (sub-queries etc.) falls back to row-level
            // evaluation against the group's representative row.
            _ => self.eval(expr, &ctx.env),
        }
    }

    // ------------------------------------------------------------------
    // Scalar expression evaluation
    // ------------------------------------------------------------------

    /// Evaluate an expression in an environment.
    pub fn eval(&self, expr: &Expr, env: &Env) -> Result<Value> {
        match expr {
            Expr::Literal(l) => literal_value(l),
            Expr::Column(c) => match env.lookup_ref(c) {
                Some((v, escaped)) => {
                    if escaped {
                        // Escaped to an outer row: this (sub-)query is
                        // correlated.
                        self.correlation_witness.set(true);
                    }
                    Ok(v.clone())
                }
                None => err(format!("unknown column `{}`", c.to_display())),
            },
            Expr::BinaryOp { left, op, right } => {
                // Short-circuit AND/OR on the left operand.
                match op {
                    BinaryOperator::And => {
                        let l = self.eval(left, env)?;
                        if l.as_bool() == Some(false) {
                            return Ok(Value::Bool(false));
                        }
                        let r = self.eval(right, env)?;
                        return Ok(Value::Bool(
                            l.as_bool().unwrap_or(false) && r.as_bool().unwrap_or(false),
                        ));
                    }
                    BinaryOperator::Or => {
                        let l = self.eval(left, env)?;
                        if l.as_bool() == Some(true) {
                            return Ok(Value::Bool(true));
                        }
                        let r = self.eval(right, env)?;
                        return Ok(Value::Bool(
                            l.as_bool().unwrap_or(false) || r.as_bool().unwrap_or(false),
                        ));
                    }
                    _ => {}
                }
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                apply_binary(*op, l, r)
            }
            Expr::UnaryOp { op, expr } => {
                let v = self.eval(expr, env)?;
                apply_unary(*op, v)
            }
            Expr::Function(fc) => {
                if fc.is_aggregate() {
                    return err(format!(
                        "aggregate `{}` used outside of an aggregation context",
                        fc.name
                    ));
                }
                let args = fc
                    .args
                    .iter()
                    .map(|a| self.eval(a, env))
                    .collect::<Result<Vec<_>>>()?;
                self.call_scalar(&fc.name, &args)
            }
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => {
                let operand_val = operand.as_ref().map(|o| self.eval(o, env)).transpose()?;
                for (cond, out) in when_then {
                    let hit = match &operand_val {
                        Some(op_val) => {
                            let c = self.eval(cond, env)?;
                            op_val.sql_eq(&c).unwrap_or(false)
                        }
                        None => self.eval(cond, env)?.as_bool().unwrap_or(false),
                    };
                    if hit {
                        return self.eval(out, env);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, env),
                    None => Ok(Value::Null),
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = self.eval(expr, env)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let mut found = false;
                for item in list {
                    let iv = self.eval(item, env)?;
                    if v.sql_eq(&iv) == Some(true) {
                        found = true;
                        break;
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                let lo = self.eval(low, env)?;
                let hi = self.eval(high, env)?;
                let inside = matches!(v.compare(&lo), Some(Ordering::Greater | Ordering::Equal))
                    && matches!(v.compare(&hi), Some(Ordering::Less | Ordering::Equal));
                Ok(Value::Bool(inside != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                // Literal patterns (the common case) are compiled once per
                // executor; dynamic patterns are compiled per evaluation.
                let outcome = match v.as_str() {
                    None => None,
                    Some(text) => match pattern.as_ref() {
                        Expr::Literal(Literal::String(p)) => {
                            Some(self.compiled_like(p).matches(text))
                        }
                        dynamic => self
                            .eval(dynamic, env)?
                            .as_str()
                            .map(|pat| LikePattern::new(pat).matches(text)),
                    },
                };
                Ok(Value::Bool(outcome.map(|m| m != *negated).unwrap_or(false)))
            }
            Expr::Extract { field, expr } => {
                let v = self.eval(expr, env)?;
                match v {
                    Value::Date(d) => {
                        let (y, m, day) = civil_from_days(d);
                        Ok(Value::Int(match field {
                            DateField::Year => y as i64,
                            DateField::Month => m as i64,
                            DateField::Day => day as i64,
                        }))
                    }
                    Value::Null => Ok(Value::Null),
                    other => err(format!("EXTRACT from non-date value {other:?}")),
                }
            }
            Expr::Substring {
                expr,
                start,
                length,
            } => {
                let v = self.eval(expr, env)?;
                let s = match v {
                    Value::Str(s) => s.to_string(),
                    Value::Null => return Ok(Value::Null),
                    other => other.to_string(),
                };
                let start = self.eval(start, env)?.as_i64().unwrap_or(1).max(1) as usize;
                let chars: Vec<char> = s.chars().collect();
                let from = (start - 1).min(chars.len());
                let to = match length {
                    Some(len) => {
                        let l = self.eval(len, env)?.as_i64().unwrap_or(0).max(0) as usize;
                        (from + l).min(chars.len())
                    }
                    None => chars.len(),
                };
                Ok(Value::str(chars[from..to].iter().collect::<String>()))
            }
            Expr::Cast { expr, data_type } => {
                let v = self.eval(expr, env)?;
                cast_value(v, *data_type)
            }
            Expr::Exists { query, negated } => {
                let rel = self.execute_subquery(query, env)?;
                Ok(Value::Bool(rel.rows.is_empty() == *negated))
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let v = self.eval(expr, env)?;
                if v.is_null() {
                    return Ok(Value::Bool(false));
                }
                let rel = self.execute_subquery(query, env)?;
                let mut found = false;
                for row in &rel.rows {
                    if let Some(candidate) = row.first() {
                        if v.sql_eq(candidate) == Some(true) {
                            found = true;
                            break;
                        }
                    }
                }
                Ok(Value::Bool(found != *negated))
            }
            Expr::ScalarSubquery(query) => {
                let rel = self.execute_subquery(query, env)?;
                match rel.rows.first() {
                    Some(row) => Ok(row.first().cloned().unwrap_or(Value::Null)),
                    None => Ok(Value::Null),
                }
            }
        }
    }

    /// Evaluate a scalar (non-aggregate) function: engine built-ins first,
    /// then registered UDFs.
    fn call_scalar(&self, name: &str, args: &[Value]) -> Result<Value> {
        match name.to_ascii_uppercase().as_str() {
            "CONCAT" => {
                let mut out = String::new();
                for a in args {
                    if a.is_null() {
                        return Ok(Value::Null);
                    }
                    out.push_str(&a.to_string());
                }
                Ok(Value::str(out))
            }
            "CHAR_LENGTH" | "LENGTH" => match args.first() {
                Some(Value::Str(s)) => Ok(Value::Int(s.chars().count() as i64)),
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => Ok(Value::Int(other.to_string().chars().count() as i64)),
            },
            "COALESCE" => Ok(args
                .iter()
                .find(|a| !a.is_null())
                .cloned()
                .unwrap_or(Value::Null)),
            "ABS" => match args.first() {
                Some(Value::Int(i)) => Ok(Value::Int(i.abs())),
                Some(Value::Float(f)) => Ok(Value::Float(f.abs())),
                Some(Value::Null) | None => Ok(Value::Null),
                Some(other) => err(format!("ABS of non-numeric {other:?}")),
            },
            _ => self.engine.udfs().call(name, args),
        }
    }

    /// Execute a sub-query appearing inside an expression, caching the result
    /// when it turned out to be uncorrelated.
    fn execute_subquery(&self, query: &Query, env: &Env) -> Result<Rc<Relation>> {
        let key = query.to_string();
        if let Some(hit) = self.subquery_cache.borrow().get(&key) {
            return Ok(Rc::clone(hit));
        }
        let saved = self.correlation_witness.replace(false);
        let rel = Rc::new(self.execute_query(query, Some(env))?);
        let correlated = self.correlation_witness.get();
        self.correlation_witness.set(saved || correlated);
        if !correlated {
            self.subquery_cache
                .borrow_mut()
                .insert(key, Rc::clone(&rel));
        }
        Ok(rel)
    }

    fn project_row(&self, projection: &[SelectItem], env: &Env) -> Result<Row> {
        let mut out = Vec::with_capacity(projection.len());
        for item in projection {
            match item {
                SelectItem::Wildcard => out.extend(env.row.iter().cloned()),
                SelectItem::QualifiedWildcard(q) => {
                    for idx in env.schema.indices_of_qualifier(q) {
                        out.push(env.row[idx].clone());
                    }
                }
                SelectItem::Expr { expr, .. } => out.push(self.eval(expr, env)?),
            }
        }
        Ok(out)
    }
}

/// Group-evaluation context: key values, precomputed aggregates and a
/// representative row for functionally dependent columns.
struct GroupContext<'a> {
    group_exprs: &'a [Expr],
    group_key: &'a [Value],
    aggregates: &'a [FunctionCall],
    agg_values: &'a [Value],
    env: Env<'a>,
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn literal_value(l: &Literal) -> Result<Value> {
    Ok(match l {
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Bool(*b),
        Literal::Integer(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::String(s) => Value::str(s.clone()),
        Literal::Date(d) => Value::Date(parse_date(d)?),
        Literal::Interval { value, unit } => match unit {
            // Intervals participate in date arithmetic; days become plain
            // integers, months/years are applied via `add_months` below.
            IntervalUnit::Day => Value::Int(*value),
            IntervalUnit::Month => Value::Int(*value * 30),
            IntervalUnit::Year => Value::Int(*value * 365),
        },
    })
}

/// Apply a binary operator to two values.
pub fn apply_binary(op: BinaryOperator, l: Value, r: Value) -> Result<Value> {
    use BinaryOperator::*;
    match op {
        Plus => add_with_calendar(l, r),
        Minus => sub_with_calendar(l, r),
        Multiply => l.mul(&r),
        Divide => l.div(&r),
        Modulo => l.modulo(&r),
        Concat => match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (a, b) => Ok(Value::str(format!("{a}{b}"))),
        },
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let cmp = l.compare(&r);
            let result = match cmp {
                None => return Ok(Value::Bool(false)),
                Some(ordering) => match op {
                    Eq => ordering == Ordering::Equal,
                    NotEq => ordering != Ordering::Equal,
                    Lt => ordering == Ordering::Less,
                    LtEq => ordering != Ordering::Greater,
                    Gt => ordering == Ordering::Greater,
                    GtEq => ordering != Ordering::Less,
                    _ => unreachable!(),
                },
            };
            Ok(Value::Bool(result))
        }
        And | Or => {
            let lb = l.as_bool().unwrap_or(false);
            let rb = r.as_bool().unwrap_or(false);
            Ok(Value::Bool(if op == And { lb && rb } else { lb || rb }))
        }
    }
}

/// Date-aware addition: adding an interval expressed in months/years uses
/// calendar arithmetic. Intervals reach us as integer day counts (see
/// [`literal_value`]), so month/year intervals are recognised by multiples of
/// 30/365 only when added to dates; this matches how the TPC-H queries use
/// them (`+ INTERVAL '1' YEAR`, `+ INTERVAL '3' MONTH`).
fn add_with_calendar(l: Value, r: Value) -> Result<Value> {
    match (&l, &r) {
        (Value::Date(d), Value::Int(n)) => Ok(Value::Date(interval_shift(*d, *n))),
        (Value::Int(n), Value::Date(d)) => Ok(Value::Date(interval_shift(*d, *n))),
        _ => l.add(&r),
    }
}

fn sub_with_calendar(l: Value, r: Value) -> Result<Value> {
    match (&l, &r) {
        (Value::Date(d), Value::Int(n)) => Ok(Value::Date(interval_shift(*d, -*n))),
        _ => l.sub(&r),
    }
}

/// Shift a date by an interval encoded as days; multiples of 365/30 are
/// treated as calendar years/months so that month-end boundaries stay exact.
fn interval_shift(date: i32, encoded_days: i64) -> i32 {
    let negative = encoded_days < 0;
    let abs = encoded_days.unsigned_abs() as i32;

    if abs != 0 && abs % 365 == 0 {
        add_months(date, (abs / 365) * 12 * if negative { -1 } else { 1 })
    } else if abs != 0 && abs % 30 == 0 {
        add_months(date, (abs / 30) * if negative { -1 } else { 1 })
    } else {
        date + if negative { -abs } else { abs }
    }
}

fn apply_unary(op: UnaryOperator, v: Value) -> Result<Value> {
    match op {
        UnaryOperator::Not => match v.as_bool() {
            Some(b) => Ok(Value::Bool(!b)),
            None => Ok(Value::Bool(false)),
        },
        UnaryOperator::Minus => v.neg(),
        UnaryOperator::Plus => Ok(v),
    }
}

fn cast_value(v: Value, ty: DataType) -> Result<Value> {
    match ty {
        DataType::Integer | DataType::BigInt => match v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| EngineError::new(format!("cannot cast '{s}' to integer"))),
            other => Ok(Value::Int(other.as_i64().unwrap_or(0))),
        },
        DataType::Double | DataType::Decimal(_, _) => match v {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => s
                .trim()
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| EngineError::new(format!("cannot cast '{s}' to double"))),
            other => Ok(Value::Float(other.as_f64().unwrap_or(0.0))),
        },
        DataType::Varchar(_) | DataType::Char(_) => Ok(match v {
            Value::Null => Value::Null,
            other => Value::str(other.to_string()),
        }),
        DataType::Date => match v {
            Value::Date(_) | Value::Null => Ok(v),
            Value::Str(s) => Value::date_from_str(&s),
            other => err(format!("cannot cast {other:?} to date")),
        },
        DataType::Boolean => Ok(match v.as_bool() {
            Some(b) => Value::Bool(b),
            None => Value::Null,
        }),
    }
}

/// A SQL LIKE pattern (`%` and `_` wildcards) precompiled to its character
/// sequence, so matching a row does not re-collect the pattern.
#[derive(Debug, Clone)]
pub struct LikePattern {
    chars: Vec<char>,
}

impl LikePattern {
    /// Compile a pattern.
    pub fn new(pattern: &str) -> Self {
        LikePattern {
            chars: pattern.chars().collect(),
        }
    }

    /// Match a text against the pattern.
    pub fn matches(&self, text: &str) -> bool {
        fn rec(t: &[char], p: &[char]) -> bool {
            if p.is_empty() {
                return t.is_empty();
            }
            match p[0] {
                '%' => {
                    // Try consuming 0..=len characters.
                    (0..=t.len()).any(|k| rec(&t[k..], &p[1..]))
                }
                '_' => !t.is_empty() && rec(&t[1..], &p[1..]),
                c => !t.is_empty() && t[0] == c && rec(&t[1..], &p[1..]),
            }
        }
        let t: Vec<char> = text.chars().collect();
        rec(&t, &self.chars)
    }
}

/// SQL LIKE pattern matching with `%` and `_` wildcards (one-shot form; hot
/// paths precompile via [`LikePattern`]).
pub fn like_match(text: &str, pattern: &str) -> bool {
    LikePattern::new(pattern).matches(text)
}

/// One conjunct of a scan filter, pre-lowered for per-row evaluation.
#[derive(Debug, Clone)]
enum CompiledPred {
    /// `column <cmp> constant` with a pre-resolved column index.
    Compare {
        idx: usize,
        op: BinaryOperator,
        value: Value,
    },
    /// `column [NOT] IN (constants)`.
    InSet {
        idx: usize,
        values: Vec<Value>,
        negated: bool,
    },
    /// `column [NOT] BETWEEN constant AND constant`.
    Between {
        idx: usize,
        lo: Value,
        hi: Value,
        negated: bool,
    },
    /// `column [NOT] LIKE 'literal'` with a precompiled pattern.
    Like {
        idx: usize,
        pattern: Rc<LikePattern>,
        negated: bool,
    },
    /// Any other conjunct, evaluated by the interpreter.
    Generic(Expr),
}

/// Mirror a comparison operator for swapped operands (`5 < x` ⇒ `x > 5`).
fn flip_comparison(op: BinaryOperator) -> BinaryOperator {
    match op {
        BinaryOperator::Lt => BinaryOperator::Gt,
        BinaryOperator::LtEq => BinaryOperator::GtEq,
        BinaryOperator::Gt => BinaryOperator::Lt,
        BinaryOperator::GtEq => BinaryOperator::LtEq,
        other => other,
    }
}

/// Remove (and return) every conjunct that is sub-query free and fully
/// resolvable against `schema` — the ones a scan of that schema may evaluate
/// itself.
fn take_applicable(conjuncts: &mut Vec<Expr>, schema: &Schema) -> Vec<Expr> {
    let mut taken = Vec::new();
    conjuncts.retain(|c| {
        if !contains_subquery(c) && expr_resolvable(c, schema) {
            taken.push(c.clone());
            false
        } else {
            true
        }
    });
    taken
}

/// Break a predicate into its top-level AND conjuncts.
pub fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::BinaryOp {
            left,
            op: BinaryOperator::And,
            right,
        } => {
            split_conjuncts(left, out);
            split_conjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Does this expression contain a sub-query anywhere?
pub fn contains_subquery(expr: &Expr) -> bool {
    match expr {
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => true,
        Expr::BinaryOp { left, right, .. } => contains_subquery(left) || contains_subquery(right),
        Expr::UnaryOp { expr, .. } => contains_subquery(expr),
        Expr::Function(f) => f.args.iter().any(contains_subquery),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            operand.as_deref().is_some_and(contains_subquery)
                || when_then
                    .iter()
                    .any(|(w, t)| contains_subquery(w) || contains_subquery(t))
                || else_expr.as_deref().is_some_and(contains_subquery)
        }
        Expr::InList { expr, list, .. } => {
            contains_subquery(expr) || list.iter().any(contains_subquery)
        }
        Expr::Between {
            expr, low, high, ..
        } => contains_subquery(expr) || contains_subquery(low) || contains_subquery(high),
        Expr::Like { expr, pattern, .. } => contains_subquery(expr) || contains_subquery(pattern),
        Expr::IsNull { expr, .. } => contains_subquery(expr),
        Expr::Extract { expr, .. } => contains_subquery(expr),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            contains_subquery(expr)
                || contains_subquery(start)
                || length.as_deref().is_some_and(contains_subquery)
        }
        Expr::Cast { expr, .. } => contains_subquery(expr),
        Expr::Column(_) | Expr::Literal(_) => false,
    }
}

/// Collect every column reference in an expression.
pub fn collect_columns(expr: &Expr, out: &mut Vec<ColumnRef>) {
    match expr {
        Expr::Column(c) => out.push(c.clone()),
        Expr::Literal(_) => {}
        Expr::BinaryOp { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::UnaryOp { expr, .. } => collect_columns(expr, out),
        Expr::Function(f) => f.args.iter().for_each(|a| collect_columns(a, out)),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_columns(o, out);
            }
            for (w, t) in when_then {
                collect_columns(w, out);
                collect_columns(t, out);
            }
            if let Some(e) = else_expr {
                collect_columns(e, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_columns(expr, out);
            list.iter().for_each(|i| collect_columns(i, out));
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_columns(expr, out);
            collect_columns(low, out);
            collect_columns(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_columns(expr, out);
            collect_columns(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_columns(expr, out),
        Expr::Extract { expr, .. } => collect_columns(expr, out),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            collect_columns(expr, out);
            collect_columns(start, out);
            if let Some(l) = length {
                collect_columns(l, out);
            }
        }
        Expr::Cast { expr, .. } => collect_columns(expr, out),
        // Sub-queries keep their own scope; their inner columns do not count
        // towards the enclosing expression's requirements.
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => {
            if let Expr::InSubquery { expr, .. } = expr {
                collect_columns(expr, out);
            }
        }
    }
}

/// `true` when every column referenced by `expr` resolves in `schema`.
fn expr_resolvable(expr: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    cols.iter().all(|c| schema.resolve(c).is_some())
}

/// Find equi-join keys between two schemas among the conjuncts: conjuncts of
/// the form `lhs = rhs` where one side resolves fully in `left` and the other
/// fully in `right`. Returns pairs `(left key expr, right key expr)`.
fn equi_join_keys(conjuncts: &[Expr], left: &Schema, right: &Schema) -> Vec<(Expr, Expr)> {
    let mut keys = Vec::new();
    for c in conjuncts {
        if let Expr::BinaryOp {
            left: l,
            op: BinaryOperator::Eq,
            right: r,
        } = c
        {
            if contains_subquery(c) {
                continue;
            }
            let l_in_left = expr_resolvable(l, left) && has_columns(l);
            let l_in_right = expr_resolvable(l, right) && has_columns(l);
            let r_in_left = expr_resolvable(r, left) && has_columns(r);
            let r_in_right = expr_resolvable(r, right) && has_columns(r);
            if l_in_left && r_in_right && !l_in_right {
                keys.push(((**l).clone(), (**r).clone()));
            } else if r_in_left && l_in_right && !r_in_right {
                keys.push(((**r).clone(), (**l).clone()));
            }
        }
    }
    keys
}

fn has_columns(expr: &Expr) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    !cols.is_empty()
}

fn cross_product(left: &Relation, right: &Relation) -> Relation {
    let schema = left.schema.concat(&right.schema);
    let mut rows = Vec::with_capacity(left.rows.len() * right.rows.len());
    for l in &left.rows {
        for r in &right.rows {
            rows.push(concat_rows(l, r).into());
        }
    }
    Relation { schema, rows }
}

/// Concatenate two rows into a fresh build-time row.
fn concat_rows(left: &[Value], right: &[Value]) -> Row {
    let mut combined = Vec::with_capacity(left.len() + right.len());
    combined.extend_from_slice(left);
    combined.extend_from_slice(right);
    combined
}

/// A left row extended with NULLs for an unmatched outer join.
fn null_extend(left: &[Value], right_width: usize) -> SharedRow {
    let mut combined = Vec::with_capacity(left.len() + right_width);
    combined.extend_from_slice(left);
    combined.extend(std::iter::repeat_n(Value::Null, right_width));
    combined.into()
}

/// Collect the distinct aggregate calls appearing in the projection, HAVING
/// and ORDER BY of a select.
fn collect_aggregates(select: &Select, order_by: &[OrderByItem]) -> Vec<FunctionCall> {
    let mut out: Vec<FunctionCall> = Vec::new();
    let aliases = alias_map(&select.projection);
    let mut visit = |expr: &Expr| {
        collect_aggregate_calls(expr, &mut out);
    };
    for item in &select.projection {
        if let SelectItem::Expr { expr, .. } = item {
            visit(expr);
        }
    }
    if let Some(h) = &select.having {
        visit(&substitute_aliases(h, &aliases));
    }
    for o in order_by {
        visit(&substitute_aliases(&o.expr, &aliases));
    }
    out
}

fn collect_aggregate_calls(expr: &Expr, out: &mut Vec<FunctionCall>) {
    match expr {
        Expr::Function(f) if f.is_aggregate() => {
            if !out.contains(f) {
                out.push(f.clone());
            }
        }
        Expr::Function(f) => f.args.iter().for_each(|a| collect_aggregate_calls(a, out)),
        Expr::BinaryOp { left, right, .. } => {
            collect_aggregate_calls(left, out);
            collect_aggregate_calls(right, out);
        }
        Expr::UnaryOp { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_aggregate_calls(o, out);
            }
            for (w, t) in when_then {
                collect_aggregate_calls(w, out);
                collect_aggregate_calls(t, out);
            }
            if let Some(e) = else_expr {
                collect_aggregate_calls(e, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregate_calls(expr, out);
            list.iter().for_each(|i| collect_aggregate_calls(i, out));
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(low, out);
            collect_aggregate_calls(high, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(pattern, out);
        }
        Expr::IsNull { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Extract { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(start, out);
            if let Some(l) = length {
                collect_aggregate_calls(l, out);
            }
        }
        Expr::Cast { expr, .. } => collect_aggregate_calls(expr, out),
        // Aggregates inside sub-queries belong to the sub-query.
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => {}
        Expr::Column(_) | Expr::Literal(_) => {}
    }
}

/// Map projection aliases to their expressions.
fn alias_map(projection: &[SelectItem]) -> HashMap<String, Expr> {
    let mut map = HashMap::new();
    for item in projection {
        if let SelectItem::Expr {
            expr,
            alias: Some(alias),
        } = item
        {
            map.insert(alias.to_ascii_lowercase(), expr.clone());
        }
    }
    map
}

/// Replace unqualified column references that name a projection alias with the
/// aliased expression (SQL allows aliases in GROUP BY / ORDER BY).
fn substitute_aliases(expr: &Expr, aliases: &HashMap<String, Expr>) -> Expr {
    match expr {
        Expr::Column(c) if c.table.is_none() => match aliases.get(&c.name.to_ascii_lowercase()) {
            Some(e) => e.clone(),
            None => expr.clone(),
        },
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: Box::new(substitute_aliases(left, aliases)),
            op: *op,
            right: Box::new(substitute_aliases(right, aliases)),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: Box::new(substitute_aliases(expr, aliases)),
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| substitute_aliases(a, aliases))
                .collect(),
            distinct: f.distinct,
        }),
        other => other.clone(),
    }
}

/// Schema of the projection output: alias, column name or a synthesized name.
fn projection_schema(projection: &[SelectItem], input: &Schema) -> Result<Schema> {
    let mut names = Vec::new();
    for item in projection {
        match item {
            SelectItem::Wildcard => names.extend(input.cols.iter().map(|c| c.name.clone())),
            SelectItem::QualifiedWildcard(q) => {
                for idx in input.indices_of_qualifier(q) {
                    names.push(input.cols[idx].name.clone());
                }
            }
            SelectItem::Expr { expr, alias } => names.push(match alias {
                Some(a) => a.clone(),
                None => derived_name(expr),
            }),
        }
    }
    Ok(Schema::unqualified(&names))
}

fn derived_name(expr: &Expr) -> String {
    match expr {
        Expr::Column(c) => c.name.clone(),
        Expr::Function(f) => f.name.to_ascii_lowercase(),
        _ => "?column?".to_string(),
    }
}

fn sort_by_keys(rows: &mut [(Row, Vec<Value>)], order_by: &[OrderByItem]) {
    if order_by.is_empty() {
        return;
    }
    rows.sort_by(|a, b| {
        for (i, item) in order_by.iter().enumerate() {
            let cmp = a.1[i].compare(&b.1[i]).unwrap_or(Ordering::Equal);
            let cmp = if item.asc { cmp } else { cmp.reverse() };
            if cmp != Ordering::Equal {
                return cmp;
            }
        }
        Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("ECONOMY ANODIZED STEEL", "%ANODIZED%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("special%case", "special%case"));
    }

    #[test]
    fn conjunct_splitting() {
        let e = mtsql::parse_expression("a = 1 AND b = 2 AND (c = 3 OR d = 4)").unwrap();
        let mut out = Vec::new();
        split_conjuncts(&e, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn subquery_detection() {
        let e = mtsql::parse_expression("a = 1 AND EXISTS (SELECT 1 FROM t)").unwrap();
        assert!(contains_subquery(&e));
        let e = mtsql::parse_expression("a = 1 AND b < 3").unwrap();
        assert!(!contains_subquery(&e));
    }

    #[test]
    fn alias_substitution() {
        let aliases: HashMap<String, Expr> = [(
            "revenue".to_string(),
            mtsql::parse_expression("SUM(l_extendedprice)").unwrap(),
        )]
        .into_iter()
        .collect();
        let e = mtsql::parse_expression("revenue").unwrap();
        let s = substitute_aliases(&e, &aliases);
        assert!(matches!(s, Expr::Function(_)));
    }

    #[test]
    fn interval_shift_years_and_months() {
        let base = parse_date("1995-01-31").unwrap();
        // one calendar month
        assert_eq!(interval_shift(base, 30), parse_date("1995-02-28").unwrap());
        // one calendar year
        assert_eq!(interval_shift(base, 365), parse_date("1996-01-31").unwrap());
        // plain days
        assert_eq!(interval_shift(base, 7), base + 7);
    }

    #[test]
    fn binary_comparison_with_null_is_false() {
        let v = apply_binary(BinaryOperator::Eq, Value::Null, Value::Int(1)).unwrap();
        assert_eq!(v, Value::Bool(false));
    }
}

//! Static verification of physical plans: a structural analyzer over the
//! operator DAG that rejects corrupt plans *before* execution.
//!
//! Four stacked plan-transforming layers (conjunct pushdown, derived-table
//! transposition, sub-query decorrelation, morsel scheduling) each promise
//! to preserve semantics. Their invariants used to be checked only
//! dynamically, by the 22-query differential sweeps; this module checks them
//! statically, walking every operator of a freshly planned DAG:
//!
//! * **Schema arithmetic, bottom-up.** A scan's schema matches its table's
//!   column count; a plain join's schema is the concatenation of its inputs;
//!   a projection's schema is exactly its visible width; a derived table
//!   re-qualifies without changing arity.
//! * **Column resolution.** Every pushed scan conjunct is sub-query-free and
//!   resolves entirely against the scan's schema (the `take_applicable`
//!   contract); filter predicates, projection items, group/aggregate
//!   expressions and join residuals resolve against their input schemas.
//! * **Compiled predicates.** The scan filter compiles to [`CompiledPred`]s
//!   whose pre-resolved column indices are in bounds, and the compiler never
//!   produces a [`CompiledPred::KeySet`] — key-set membership kernels are
//!   injected by the executor into decorrelated probe scans only.
//! * **Join variants.** Hash joins carry at least one key pair, each side
//!   resolving against its own input. Semi/anti joins emit the probe schema
//!   unchanged and carry no residual; `Single` (aggregate) joins emit the
//!   probe schema and evaluate their rewritten comparison over the
//!   concatenated probe+build row; decorrelated key pairs must agree on
//!   comparison class (a string key can never equal a numeric key — such a
//!   join would silently emit nothing).
//! * **Pruning discipline.** Pruning conjuncts and bind-time
//!   (`param_pruning`) conjuncts reference exactly the table's declared
//!   partition column (`ttid`), a scan with resolved prune keys scans a
//!   partitioned table, and every `param_pruning` member is also a
//!   `residual` member (correctness never depends on bind-time pruning).
//! * **Bounds.** Sort keys index into the projected row — visible items
//!   plus hidden ORDER BY keys — and `prune_to` strips exactly back to the
//!   visible width; parameter placeholders stay below the bound-parameter
//!   count.
//! * **Snapshot discipline.** Under a pinned cursor epoch, every scanned
//!   table's rewrite epoch is at or below the pin — the per-bucket
//!   watermarks addressed by `visible_bucket_len` are only meaningful then.
//!
//! Violations surface as a typed [`PlanError`] (kind
//! [`EngineErrorKind::Plan`](crate::EngineErrorKind) once converted), naming
//! the operator and the violated invariant. The verifier runs behind
//! [`EngineConfig::verify_plans`](crate::EngineConfig) — always-on in debug
//! builds, opt-in in release, overridable process-wide via `MT_VERIFY=1`/`0`
//! — and unconditionally under `EXPLAIN`, which appends a `verified` marker
//! so plan snapshots pin the verifier's engagement.

use std::fmt;

use mtsql::ast::{ColumnRef, Expr, SelectItem};
use mtsql::visit::{collect_columns, contains_subquery, max_param_index};

use crate::conjuncts::CompiledPred;
use crate::error::{EngineError, EngineErrorKind};
use crate::exec::Executor;
use crate::plan::{HashAggregate, JoinVariant, Plan, Project, SeqScan};
use crate::schema::Schema;
use crate::table::ColumnVec;
use crate::{Engine, EngineConfig};

/// What kind of invariant a [`PlanError`] reports. Mutation tests assert the
/// class, not the message, so reworded diagnostics never break them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanErrorClass {
    /// Output arity/schema inconsistency between an operator and its inputs.
    Schema,
    /// An expression references a column its input schema cannot resolve.
    Column,
    /// A compiled predicate's pre-resolved column index is out of bounds,
    /// or an illegal predicate form reached a scan filter.
    Predicate,
    /// A hash-join key pair is missing, unresolvable, or compares
    /// incompatible classes.
    JoinKey,
    /// A join-variant rule is violated (semi/anti residual or schema,
    /// `Single` schema, key-set injection discipline).
    Variant,
    /// Partition-pruning conjuncts do not resolve to the partition column,
    /// or prune keys exist without a partitioned table.
    Pruning,
    /// A parameter placeholder indexes past the bound-parameter count.
    Param,
    /// A sort key or width bound indexes past the operator's row width.
    Bounds,
    /// A scan under a pinned cursor epoch has no valid watermark (the table
    /// was rewritten past the pin).
    Snapshot,
}

impl fmt::Display for PlanErrorClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self {
            PlanErrorClass::Schema => "schema",
            PlanErrorClass::Column => "column",
            PlanErrorClass::Predicate => "predicate",
            PlanErrorClass::JoinKey => "join-key",
            PlanErrorClass::Variant => "variant",
            PlanErrorClass::Pruning => "pruning",
            PlanErrorClass::Param => "param",
            PlanErrorClass::Bounds => "bounds",
            PlanErrorClass::Snapshot => "snapshot",
        };
        f.write_str(tag)
    }
}

/// A rejected plan: the violated invariant class, the operator it anchors to
/// and a human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    pub class: PlanErrorClass,
    /// The operator the violation anchors to (e.g. `SeqScan lineitem`,
    /// `HashJoin[semi]`).
    pub node: String,
    pub detail: String,
}

impl PlanError {
    fn new(class: PlanErrorClass, node: impl Into<String>, detail: impl Into<String>) -> Self {
        PlanError {
            class,
            node: node.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "plan rejected [{}] at {}: {}",
            self.class, self.node, self.detail
        )
    }
}

impl std::error::Error for PlanError {}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::with_kind(EngineErrorKind::Plan, e.to_string())
    }
}

/// What a successful verification covered, for the `EXPLAIN` marker and the
/// overhead bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Operators walked.
    pub operators: usize,
    /// Individual invariant checks evaluated.
    pub checks: u64,
}

/// How strictly to verify, and against what execution context.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyOptions {
    /// Bound-parameter count to check `Expr::Param` indices against;
    /// `None` skips the parameter-bound check (plan-time verification of a
    /// statement whose parameters bind later).
    pub param_count: Option<usize>,
    /// Cursor pin epoch: every scanned table's rewrite epoch must be at or
    /// below it (snapshot watermarks stay addressable).
    pub pinned_epoch: Option<u64>,
    /// Lenient outer-scope mode for correlated sub-plans: a column that
    /// does not resolve locally is assumed to bind in the enclosing query's
    /// scope instead of failing. Scan conjuncts stay strict — pushdown only
    /// ever pushes fully resolvable conjuncts.
    pub outer: bool,
}

/// Is the verifier enabled for this configuration? The `MT_VERIFY`
/// environment variable (`1`/`true`/`on` forces on, `0`/`false`/`off`
/// forces off), parsed once per process, overrides the configured value —
/// mirroring the `MT_THREADS` execution-time override.
pub fn verify_enabled(config: &EngineConfig) -> bool {
    static OVERRIDE: std::sync::OnceLock<Option<bool>> = std::sync::OnceLock::new();
    OVERRIDE
        .get_or_init(|| {
            let raw = std::env::var("MT_VERIFY").ok()?;
            match raw.trim().to_ascii_lowercase().as_str() {
                "1" | "true" | "on" => Some(true),
                "0" | "false" | "off" => Some(false),
                _ => None,
            }
        })
        .unwrap_or(config.verify_plans)
}

/// Verify a plan strictly (top-level statement context).
pub fn verify_plan(engine: &Engine, plan: &Plan) -> Result<VerifyReport, PlanError> {
    verify_plan_with(engine, plan, VerifyOptions::default())
}

/// Verify a plan under explicit options (parameter counts, pinned cursor
/// epochs, lenient outer-scope mode for correlated sub-plans).
pub fn verify_plan_with(
    engine: &Engine,
    plan: &Plan,
    opts: VerifyOptions,
) -> Result<VerifyReport, PlanError> {
    let mut v = Verifier {
        engine,
        opts,
        report: VerifyReport::default(),
    };
    // Transaction discipline: a snapshot may only pin the committed floor.
    // Epochs above it belong to open (uncommitted) transactions — pinning
    // one would let a cursor observe rows a ROLLBACK must take back.
    if let Some(epoch) = v.opts.pinned_epoch {
        v.check();
        let committed = engine.committed_epoch();
        if epoch > committed {
            return Err(PlanError::new(
                PlanErrorClass::Snapshot,
                "plan",
                format!(
                    "pin epoch {epoch} is above the committed floor {committed}: \
                     epochs past it belong to open transactions"
                ),
            ));
        }
    }
    v.walk(plan)?;
    v.check_params(plan)?;
    Ok(v.report)
}

/// Comparison class of a statically inferable column or expression.
/// [`crate::Value::compare`] resolves strings only against strings and
/// everything else through the numeric fallback, so two classes suffice;
/// anything not provable stays `Unknown` and passes every check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypeClass {
    Str,
    Num,
    Unknown,
}

impl TypeClass {
    fn compatible(self, other: TypeClass) -> bool {
        self == TypeClass::Unknown || other == TypeClass::Unknown || self == other
    }
}

struct Verifier<'e> {
    engine: &'e Engine,
    opts: VerifyOptions,
    report: VerifyReport,
}

impl Verifier<'_> {
    fn check(&mut self) {
        self.report.checks += 1;
    }

    /// Every column of `expr` resolves against `schema`; in outer mode an
    /// unresolved column is assumed to bind in the enclosing scope.
    fn columns_resolve(
        &mut self,
        expr: &Expr,
        schema: &Schema,
        node: &str,
        lenient: bool,
    ) -> Result<(), PlanError> {
        let mut cols: Vec<ColumnRef> = Vec::new();
        collect_columns(expr, &mut cols);
        for col in cols {
            self.check();
            if schema.resolve(&col).is_none() && !(lenient && self.opts.outer) {
                return Err(PlanError::new(
                    PlanErrorClass::Column,
                    node,
                    format!(
                        "`{}` does not resolve in a {}-column input",
                        col.to_display(),
                        schema.len()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// The runtime row width an operator produces — its schema width, plus
    /// the hidden ORDER BY key columns a projection head appends behind it.
    fn row_width(&self, plan: &Plan) -> usize {
        match plan {
            Plan::Project(p) => items_width(&p.items, p.input.schema()),
            Plan::HashAggregate(a) => items_width(&a.items, a.input.schema()),
            other => other.schema().len(),
        }
    }

    fn walk(&mut self, plan: &Plan) -> Result<(), PlanError> {
        self.report.operators += 1;
        match plan {
            Plan::Empty { .. } => Ok(()),
            Plan::SeqScan(scan) => self.verify_scan(scan),
            Plan::Filter { input, predicates } => {
                self.walk(input)?;
                let node = "Filter";
                for p in predicates {
                    self.columns_resolve(p, input.schema(), node, true)?;
                }
                Ok(())
            }
            Plan::HashJoin {
                left,
                right,
                keys,
                residual,
                kind,
                schema,
            } => {
                self.walk(left)?;
                self.walk(right)?;
                self.verify_hash_join(left, right, keys, residual, *kind, schema)
            }
            Plan::NestedLoopJoin {
                left,
                right,
                predicates,
                schema,
                ..
            } => {
                self.walk(left)?;
                self.walk(right)?;
                let node = "NestedLoopJoin";
                let concat = left.schema().concat(right.schema());
                self.check();
                if schema.len() != concat.len() {
                    return Err(PlanError::new(
                        PlanErrorClass::Schema,
                        node,
                        format!(
                            "output width {} != left {} + right {}",
                            schema.len(),
                            left.schema().len(),
                            right.schema().len()
                        ),
                    ));
                }
                for p in predicates {
                    self.columns_resolve(p, &concat, node, true)?;
                }
                Ok(())
            }
            Plan::Subquery {
                input,
                alias,
                schema,
            } => {
                self.walk(input)?;
                self.check();
                if schema.len() != input.schema().len() {
                    return Err(PlanError::new(
                        PlanErrorClass::Schema,
                        format!("Subquery AS {alias}"),
                        format!(
                            "re-qualification changed arity: {} -> {}",
                            input.schema().len(),
                            schema.len()
                        ),
                    ));
                }
                Ok(())
            }
            Plan::Project(p) => self.verify_project(p),
            Plan::HashAggregate(a) => self.verify_aggregate(a),
            Plan::Sort {
                input,
                keys,
                prune_to,
            } => {
                self.walk(input)?;
                let node = "Sort";
                let width = self.row_width(input);
                for key in keys {
                    self.check();
                    if key.col >= width {
                        return Err(PlanError::new(
                            PlanErrorClass::Bounds,
                            node,
                            format!("sort key column {} out of row width {width}", key.col),
                        ));
                    }
                }
                if let Some(w) = prune_to {
                    self.check();
                    // Stripping hidden keys must land exactly on the visible
                    // width of the projection head beneath.
                    let visible = match input.as_ref() {
                        Plan::Project(p) => Some(p.visible_width),
                        Plan::HashAggregate(a) => Some(a.visible_width),
                        _ => None,
                    };
                    if *w > width || visible.is_some_and(|v| v != *w) {
                        return Err(PlanError::new(
                            PlanErrorClass::Bounds,
                            node,
                            format!(
                                "prune_to {w} inconsistent with visible width {visible:?} \
                                 (row width {width})"
                            ),
                        ));
                    }
                }
                Ok(())
            }
            Plan::Limit { input, .. } => self.walk(input),
        }
    }

    fn verify_scan(&mut self, scan: &SeqScan) -> Result<(), PlanError> {
        let node = format!("SeqScan {}", scan.table);
        let Ok(table) = self.engine.database().table(&scan.table) else {
            return Err(PlanError::new(
                PlanErrorClass::Schema,
                node,
                "table does not exist in the catalog",
            ));
        };
        self.check();
        if scan.schema.len() != table.columns.len() {
            return Err(PlanError::new(
                PlanErrorClass::Schema,
                node,
                format!(
                    "scan schema width {} != table width {}",
                    scan.schema.len(),
                    table.columns.len()
                ),
            ));
        }

        // Pushed conjuncts: sub-query-free and fully resolvable against the
        // scan schema — strict even in outer mode (`take_applicable` only
        // pushes conjuncts it fully resolved).
        for conjunct in scan
            .pruning
            .iter()
            .chain(&scan.residual)
            .chain(&scan.param_pruning)
        {
            self.check();
            if contains_subquery(conjunct) {
                return Err(PlanError::new(
                    PlanErrorClass::Predicate,
                    &node,
                    format!("pushed conjunct `{conjunct}` contains a sub-query"),
                ));
            }
            self.columns_resolve(conjunct, &scan.schema, &node, false)?;
        }

        // Pruning discipline: prune keys and pruning conjuncts require a
        // declared partition column, and every pruning conjunct references
        // exactly that column.
        let partition = table.partition_column();
        if scan.prune_keys.is_some() || !scan.pruning.is_empty() || !scan.param_pruning.is_empty() {
            self.check();
            let Some(pidx) = partition else {
                return Err(PlanError::new(
                    PlanErrorClass::Pruning,
                    &node,
                    "pruning state on a table without a partition column",
                ));
            };
            for conjunct in scan.pruning.iter().chain(&scan.param_pruning) {
                let mut cols: Vec<ColumnRef> = Vec::new();
                collect_columns(conjunct, &mut cols);
                for col in cols {
                    self.check();
                    if scan.schema.resolve(&col) != Some(pidx) {
                        return Err(PlanError::new(
                            PlanErrorClass::Pruning,
                            &node,
                            format!(
                                "pruning conjunct `{conjunct}` references `{}`, \
                                 not the partition column",
                                col.to_display()
                            ),
                        ));
                    }
                }
            }
        }
        // Bind-time pruning conjuncts are also residual members: pruning
        // with them is an optimization, never a correctness dependency.
        for conjunct in &scan.param_pruning {
            self.check();
            if !scan.residual.contains(conjunct) {
                return Err(PlanError::new(
                    PlanErrorClass::Pruning,
                    &node,
                    format!("bind-time pruning conjunct `{conjunct}` missing from the residual"),
                ));
            }
        }

        // The compiled filter: fast forms carry in-bounds column indices and
        // the compiler never emits the executor-injected key-set kernel.
        let executor = Executor::new(self.engine);
        let compiled = executor.compile_filter(&scan.pruning, &scan.schema);
        let residual = executor.compile_filter(&scan.residual, &scan.schema);
        for pred in compiled.iter().chain(&residual) {
            self.check();
            if matches!(pred, CompiledPred::KeySet { .. }) {
                return Err(PlanError::new(
                    PlanErrorClass::Variant,
                    &node,
                    "the predicate compiler must never produce a key-set kernel \
                     (executor-injected on decorrelated probes only)",
                ));
            }
            if let Some(idx) = pred.column_index() {
                if idx >= scan.schema.len() {
                    return Err(PlanError::new(
                        PlanErrorClass::Predicate,
                        &node,
                        format!(
                            "compiled predicate column index {idx} out of schema width {}",
                            scan.schema.len()
                        ),
                    ));
                }
            }
        }

        // Snapshot discipline: under a pinned cursor epoch the per-bucket
        // watermarks are addressable only while the table has not been
        // destructively rewritten past the pin — or, for an open
        // transaction's unpublished rewrite, while the pre-rewrite shadow
        // still serves the pin.
        if let Some(epoch) = self.opts.pinned_epoch {
            self.check();
            if !table.snapshot_servable(epoch) {
                return Err(PlanError::new(
                    PlanErrorClass::Snapshot,
                    &node,
                    format!(
                        "scan pinned at epoch {epoch} has no watermark: table rewritten \
                         at epoch {}",
                        table.rewrite_epoch()
                    ),
                ));
            }
        }
        Ok(())
    }

    fn verify_hash_join(
        &mut self,
        left: &Plan,
        right: &Plan,
        keys: &[(Expr, Expr)],
        residual: &[Expr],
        kind: JoinVariant,
        schema: &Schema,
    ) -> Result<(), PlanError> {
        let node = match kind {
            JoinVariant::Plain(k) => format!("HashJoin[{k:?}]"),
            JoinVariant::Semi => "HashJoin[semi]".to_string(),
            JoinVariant::Anti => "HashJoin[anti]".to_string(),
            JoinVariant::Single => "HashJoin[single]".to_string(),
        };
        self.check();
        if keys.is_empty() {
            return Err(PlanError::new(
                PlanErrorClass::JoinKey,
                &node,
                "hash join without key pairs (non-equi joins plan as nested loops)",
            ));
        }
        for (lk, rk) in keys {
            self.columns_resolve(lk, left.schema(), &node, true)?;
            self.columns_resolve(rk, right.schema(), &node, true)?;
        }
        match kind {
            JoinVariant::Plain(_) => {
                self.check();
                let concat = left.schema().concat(right.schema());
                if schema.len() != concat.len() {
                    return Err(PlanError::new(
                        PlanErrorClass::Schema,
                        &node,
                        format!(
                            "output width {} != left {} + right {}",
                            schema.len(),
                            left.schema().len(),
                            right.schema().len()
                        ),
                    ));
                }
                for p in residual {
                    self.columns_resolve(p, &concat, &node, true)?;
                }
            }
            JoinVariant::Semi | JoinVariant::Anti => {
                self.check();
                if schema != left.schema() {
                    return Err(PlanError::new(
                        PlanErrorClass::Variant,
                        &node,
                        "semi/anti joins emit the probe schema unchanged",
                    ));
                }
                self.check();
                if !residual.is_empty() {
                    return Err(PlanError::new(
                        PlanErrorClass::Variant,
                        &node,
                        "semi/anti joins carry no residual (decorrelation bails out instead)",
                    ));
                }
            }
            JoinVariant::Single => {
                self.check();
                if schema != left.schema() {
                    return Err(PlanError::new(
                        PlanErrorClass::Variant,
                        &node,
                        "aggregate joins emit the probe schema unchanged",
                    ));
                }
                let concat = left.schema().concat(right.schema());
                for p in residual {
                    self.columns_resolve(p, &concat, &node, true)?;
                }
            }
        }
        // Decorrelated key pairs are planner-synthesized, so a comparison-
        // class mismatch is a rewrite defect, not user input: a string key
        // never equals a numeric key and the join would silently emit
        // nothing (semi/single) or everything (anti).
        if kind != JoinVariant::Plain(mtsql::ast::JoinKind::Inner) {
            if let JoinVariant::Semi | JoinVariant::Anti | JoinVariant::Single = kind {
                for (lk, rk) in keys {
                    self.check();
                    let lc = self.expr_class(left, lk);
                    let rc = self.expr_class(right, rk);
                    if !lc.compatible(rc) {
                        return Err(PlanError::new(
                            PlanErrorClass::JoinKey,
                            &node,
                            format!("key pair `{lk}` = `{rk}` compares {lc:?} against {rc:?}"),
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    fn verify_project(&mut self, p: &Project) -> Result<(), PlanError> {
        self.walk(&p.input)?;
        let node = "Project";
        let width = items_width(&p.items, p.input.schema());
        self.check();
        if p.visible_width > width || p.schema.len() != p.visible_width {
            return Err(PlanError::new(
                PlanErrorClass::Schema,
                node,
                format!(
                    "visible width {} / schema width {} inconsistent with {} projected columns",
                    p.visible_width,
                    p.schema.len(),
                    width
                ),
            ));
        }
        for item in &p.items {
            if let SelectItem::Expr { expr, .. } = item {
                self.columns_resolve(expr, p.input.schema(), node, true)?;
            }
        }
        Ok(())
    }

    fn verify_aggregate(&mut self, a: &HashAggregate) -> Result<(), PlanError> {
        self.walk(&a.input)?;
        let node = "HashAggregate";
        let width = items_width(&a.items, a.input.schema());
        self.check();
        if a.visible_width > width || a.schema.len() != a.visible_width {
            return Err(PlanError::new(
                PlanErrorClass::Schema,
                node,
                format!(
                    "visible width {} / schema width {} inconsistent with {} projected columns",
                    a.visible_width,
                    a.schema.len(),
                    width
                ),
            ));
        }
        let input_schema = a.input.schema();
        for g in &a.group_exprs {
            self.columns_resolve(g, input_schema, node, true)?;
        }
        for call in &a.aggregates {
            for arg in &call.args {
                self.columns_resolve(arg, input_schema, node, true)?;
            }
        }
        if let Some(h) = &a.having {
            self.columns_resolve(h, input_schema, node, true)?;
        }
        for item in &a.items {
            if let SelectItem::Expr { expr, .. } = item {
                self.columns_resolve(expr, input_schema, node, true)?;
            }
        }
        Ok(())
    }

    /// Highest `Expr::Param` index anywhere in the plan must stay below the
    /// bound-parameter count.
    fn check_params(&mut self, plan: &Plan) -> Result<(), PlanError> {
        let Some(count) = self.opts.param_count else {
            return Ok(());
        };
        let mut max: Option<usize> = None;
        each_expr(plan, &mut |e| max_param_index(e, &mut max));
        self.check();
        if let Some(m) = max {
            if m >= count {
                return Err(PlanError::new(
                    PlanErrorClass::Param,
                    "plan",
                    format!("parameter ${} referenced but only {count} bound", m + 1),
                ));
            }
        }
        Ok(())
    }

    /// Comparison class of an expression over one side of a join: a plain
    /// column traces to its base-table storage class; a literal is its own
    /// class; anything else stays `Unknown`.
    fn expr_class(&self, plan: &Plan, expr: &Expr) -> TypeClass {
        match expr {
            Expr::Column(c) => match plan.schema().resolve(c) {
                Some(idx) => self.column_class(plan, idx),
                None => TypeClass::Unknown,
            },
            Expr::Literal(lit) => match lit {
                mtsql::ast::Literal::String(_) => TypeClass::Str,
                mtsql::ast::Literal::Boolean(_)
                | mtsql::ast::Literal::Integer(_)
                | mtsql::ast::Literal::Float(_) => TypeClass::Num,
                _ => TypeClass::Unknown,
            },
            _ => TypeClass::Unknown,
        }
    }

    /// Trace an output column of an operator to its storage class, walking
    /// through pass-through operators and single-column projections.
    fn column_class(&self, plan: &Plan, idx: usize) -> TypeClass {
        match plan {
            Plan::SeqScan(scan) => {
                let Ok(table) = self.engine.database().table(&scan.table) else {
                    return TypeClass::Unknown;
                };
                if idx >= table.columns.len() {
                    return TypeClass::Unknown;
                }
                for (_, bucket) in table.partitions() {
                    if bucket.is_empty() {
                        continue;
                    }
                    if let Some(cols) = bucket.as_columns() {
                        return match cols.column(idx).data() {
                            ColumnVec::Str(_) | ColumnVec::Dict(_) => TypeClass::Str,
                            ColumnVec::Int(_)
                            | ColumnVec::Float(_)
                            | ColumnVec::Bool(_)
                            | ColumnVec::Date(_) => TypeClass::Num,
                            ColumnVec::Untyped | ColumnVec::Mixed(_) => TypeClass::Unknown,
                        };
                    }
                }
                // Row-form storage (unpartitioned tables, or columnar scans
                // disabled): sample the first stored value instead.
                table
                    .rows()
                    .find_map(|row| match row.get(idx) {
                        Some(crate::Value::Str(_)) => Some(TypeClass::Str),
                        Some(
                            crate::Value::Int(_)
                            | crate::Value::Float(_)
                            | crate::Value::Bool(_)
                            | crate::Value::Date(_),
                        ) => Some(TypeClass::Num),
                        _ => None,
                    })
                    .unwrap_or(TypeClass::Unknown)
            }
            Plan::Filter { input, .. } | Plan::Limit { input, .. } => self.column_class(input, idx),
            Plan::Sort { input, .. } => self.column_class(input, idx),
            Plan::Subquery { input, .. } => self.column_class(input, idx),
            Plan::HashJoin {
                left, right, kind, ..
            } => match kind {
                JoinVariant::Plain(_) => {
                    let lw = left.schema().len();
                    if idx < lw {
                        self.column_class(left, idx)
                    } else {
                        self.column_class(right, idx - lw)
                    }
                }
                _ => self.column_class(left, idx),
            },
            Plan::NestedLoopJoin { left, right, .. } => {
                let lw = left.schema().len();
                if idx < lw {
                    self.column_class(left, idx)
                } else {
                    self.column_class(right, idx - lw)
                }
            }
            Plan::Project(p) => match resolve_item(&p.items, idx) {
                Some(Expr::Column(c)) => match p.input.schema().resolve(c) {
                    Some(inner) => self.column_class(&p.input, inner),
                    None => TypeClass::Unknown,
                },
                Some(Expr::Literal(lit)) => match lit {
                    mtsql::ast::Literal::String(_) => TypeClass::Str,
                    mtsql::ast::Literal::Integer(_) | mtsql::ast::Literal::Float(_) => {
                        TypeClass::Num
                    }
                    _ => TypeClass::Unknown,
                },
                _ => TypeClass::Unknown,
            },
            Plan::HashAggregate(_) | Plan::Empty { .. } => TypeClass::Unknown,
        }
    }
}

/// The expression a projected column index maps to, when the item list is
/// wildcard-free up to that index (wildcards make index mapping
/// input-dependent; give up and stay `Unknown`).
fn resolve_item(items: &[SelectItem], idx: usize) -> Option<&Expr> {
    let mut i = 0usize;
    for item in items {
        match item {
            SelectItem::Expr { expr, .. } => {
                if i == idx {
                    return Some(expr);
                }
                i += 1;
            }
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => return None,
        }
    }
    None
}

/// The row width an item list produces over an input schema (wildcards
/// expand to the input's columns).
fn items_width(items: &[SelectItem], input: &Schema) -> usize {
    items
        .iter()
        .map(|item| match item {
            SelectItem::Expr { .. } => 1,
            SelectItem::Wildcard => input.len(),
            SelectItem::QualifiedWildcard(q) => input.indices_of_qualifier(q).len(),
        })
        .sum()
}

/// Visit every expression embedded in a plan DAG (predicates, keys,
/// residuals, projection items, group/aggregate/having expressions).
fn each_expr<'p>(plan: &'p Plan, f: &mut impl FnMut(&'p Expr)) {
    let items = |list: &'p [SelectItem], f: &mut dyn FnMut(&'p Expr)| {
        for item in list {
            if let SelectItem::Expr { expr, .. } = item {
                f(expr);
            }
        }
    };
    match plan {
        Plan::Empty { .. } => {}
        Plan::SeqScan(scan) => {
            for e in scan
                .pruning
                .iter()
                .chain(&scan.residual)
                .chain(&scan.param_pruning)
            {
                f(e);
            }
        }
        Plan::Filter { input, predicates } => {
            predicates.iter().for_each(&mut *f);
            each_expr(input, f);
        }
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            ..
        } => {
            for (l, r) in keys {
                f(l);
                f(r);
            }
            residual.iter().for_each(&mut *f);
            each_expr(left, f);
            each_expr(right, f);
        }
        Plan::NestedLoopJoin {
            left,
            right,
            predicates,
            ..
        } => {
            predicates.iter().for_each(&mut *f);
            each_expr(left, f);
            each_expr(right, f);
        }
        Plan::Subquery { input, .. } => each_expr(input, f),
        Plan::Project(p) => {
            items(&p.items, f);
            each_expr(&p.input, f);
        }
        Plan::HashAggregate(a) => {
            a.group_exprs.iter().for_each(&mut *f);
            for call in &a.aggregates {
                call.args.iter().for_each(&mut *f);
            }
            if let Some(h) = &a.having {
                f(h);
            }
            items(&a.items, f);
            each_expr(&a.input, f);
        }
        Plan::Sort { input, .. } | Plan::Limit { input, .. } => each_expr(input, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SortKey;
    use crate::Value;

    fn engine() -> Engine {
        let mut e = Engine::new(EngineConfig::default());
        e.create_table("t", &["ttid", "a", "s"]);
        e.set_table_partition("t", "ttid").unwrap();
        e.insert_values(
            "t",
            vec![
                vec![Value::Int(1), Value::Int(10), Value::str("x")],
                vec![Value::Int(2), Value::Int(20), Value::str("y")],
            ],
        )
        .unwrap();
        e.create_table("u", &["k", "v"]);
        e.insert_values("u", vec![vec![Value::Int(1), Value::str("z")]])
            .unwrap();
        e
    }

    fn plan_of(engine: &Engine, sql: &str) -> Plan {
        engine
            .plan_query(&mtsql::parse_query(sql).unwrap())
            .unwrap()
    }

    fn class_of(err: PlanError) -> PlanErrorClass {
        err.class
    }

    #[test]
    fn clean_plans_verify() {
        let e = engine();
        for sql in [
            "SELECT a FROM t WHERE ttid = 1",
            "SELECT t.a, u.v FROM t, u WHERE t.a = u.k",
            "SELECT ttid, SUM(a) FROM t GROUP BY ttid ORDER BY SUM(a) DESC",
            "SELECT DISTINCT s FROM t ORDER BY s",
        ] {
            let plan = plan_of(&e, sql);
            let report = verify_plan(&e, &plan).unwrap_or_else(|err| panic!("{sql}: {err}"));
            assert!(report.operators >= 1 && report.checks >= 1);
        }
    }

    #[test]
    fn bad_column_index_in_pushed_conjunct_is_rejected() {
        let e = engine();
        let mut plan = plan_of(&e, "SELECT a FROM t WHERE a > 5");
        // Corrupt the pushed conjunct to reference a column the scan's
        // schema cannot resolve.
        mutate_scan(&mut plan, |scan| {
            scan.residual = vec![mtsql::parse_expression("nope > 5").unwrap()];
        });
        let err = verify_plan(&e, &plan).unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::Column);
    }

    #[test]
    fn subquery_in_pushed_conjunct_is_rejected() {
        let e = engine();
        let mut plan = plan_of(&e, "SELECT a FROM t WHERE a > 5");
        mutate_scan(&mut plan, |scan| {
            scan.residual = vec![mtsql::parse_expression("a > (SELECT k FROM u)").unwrap()];
        });
        let err = verify_plan(&e, &plan).unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::Predicate);
    }

    #[test]
    fn scan_schema_arity_mismatch_is_rejected() {
        let e = engine();
        let mut plan = plan_of(&e, "SELECT a FROM t");
        mutate_scan(&mut plan, |scan| {
            scan.schema = Schema::qualified("t", &["ttid".into(), "a".into()]);
        });
        let err = verify_plan(&e, &plan).unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::Schema);
    }

    #[test]
    fn pruning_on_non_partition_column_is_rejected() {
        let e = engine();
        let mut plan = plan_of(&e, "SELECT a FROM t WHERE ttid = 1");
        mutate_scan(&mut plan, |scan| {
            scan.pruning = vec![mtsql::parse_expression("a = 1").unwrap()];
        });
        let err = verify_plan(&e, &plan).unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::Pruning);
    }

    #[test]
    fn prune_keys_on_unpartitioned_table_are_rejected() {
        let e = engine();
        let mut plan = plan_of(&e, "SELECT v FROM u");
        mutate_scan(&mut plan, |scan| {
            scan.prune_keys = Some([1i64].into_iter().collect());
        });
        let err = verify_plan(&e, &plan).unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::Pruning);
    }

    #[test]
    fn param_pruning_outside_residual_is_rejected() {
        let e = engine();
        let mut plan = plan_of(&e, "SELECT a FROM t WHERE ttid = $1");
        mutate_scan(&mut plan, |scan| {
            scan.residual.clear();
        });
        let err = verify_plan(&e, &plan).unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::Pruning);
    }

    #[test]
    fn out_of_range_param_is_rejected() {
        let e = engine();
        let plan = plan_of(&e, "SELECT a FROM t WHERE a = $2");
        let err = verify_plan_with(
            &e,
            &plan,
            VerifyOptions {
                param_count: Some(1),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::Param);
        verify_plan_with(
            &e,
            &plan,
            VerifyOptions {
                param_count: Some(2),
                ..Default::default()
            },
        )
        .unwrap();
    }

    #[test]
    fn semi_join_with_wrong_schema_or_residual_is_rejected() {
        let e = engine();
        let probe = plan_of(&e, "SELECT a FROM t");
        let build = plan_of(&e, "SELECT k FROM u");
        let keys = vec![(
            mtsql::parse_expression("a").unwrap(),
            mtsql::parse_expression("k").unwrap(),
        )];
        // Wrong output schema: semi joins must emit the probe schema.
        let bad_schema = Plan::HashJoin {
            left: Box::new(probe.clone()),
            right: Box::new(build.clone()),
            keys: keys.clone(),
            residual: vec![],
            kind: JoinVariant::Semi,
            schema: probe.schema().concat(build.schema()),
        };
        assert_eq!(
            class_of(verify_plan(&e, &bad_schema).unwrap_err()),
            PlanErrorClass::Variant
        );
        // A residual on a semi join means decorrelation failed to bail out.
        let bad_residual = Plan::HashJoin {
            left: Box::new(probe.clone()),
            right: Box::new(build.clone()),
            keys: keys.clone(),
            residual: vec![mtsql::parse_expression("a > 0").unwrap()],
            kind: JoinVariant::Semi,
            schema: probe.schema().clone(),
        };
        assert_eq!(
            class_of(verify_plan(&e, &bad_residual).unwrap_err()),
            PlanErrorClass::Variant
        );
        // The well-formed semi join passes.
        let good = Plan::HashJoin {
            left: Box::new(probe.clone()),
            right: Box::new(build),
            keys,
            residual: vec![],
            kind: JoinVariant::Semi,
            schema: probe.schema().clone(),
        };
        verify_plan(&e, &good).unwrap();
    }

    #[test]
    fn mismatched_join_key_classes_are_rejected() {
        let e = engine();
        let probe = plan_of(&e, "SELECT a FROM t");
        let build = plan_of(&e, "SELECT v FROM u");
        // `a` is an Int column, `v` a Str column: the semi join could never
        // match and must be rejected as a decorrelation defect.
        let plan = Plan::HashJoin {
            left: Box::new(probe.clone()),
            right: Box::new(build),
            keys: vec![(
                mtsql::parse_expression("a").unwrap(),
                mtsql::parse_expression("v").unwrap(),
            )],
            residual: vec![],
            kind: JoinVariant::Semi,
            schema: probe.schema().clone(),
        };
        let err = verify_plan(&e, &plan).unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::JoinKey);
    }

    #[test]
    fn hash_join_without_keys_is_rejected() {
        let e = engine();
        let probe = plan_of(&e, "SELECT a FROM t");
        let build = plan_of(&e, "SELECT k FROM u");
        let plan = Plan::HashJoin {
            left: Box::new(probe.clone()),
            right: Box::new(build),
            keys: vec![],
            residual: vec![],
            kind: JoinVariant::Semi,
            schema: probe.schema().clone(),
        };
        assert_eq!(
            class_of(verify_plan(&e, &plan).unwrap_err()),
            PlanErrorClass::JoinKey
        );
    }

    #[test]
    fn sort_key_out_of_bounds_is_rejected() {
        let e = engine();
        let mut plan = plan_of(&e, "SELECT a FROM t ORDER BY a");
        if let Plan::Sort { keys, .. } = &mut plan {
            keys[0] = SortKey { col: 99, asc: true };
        } else {
            panic!("expected a Sort head, got {plan:?}");
        }
        let err = verify_plan(&e, &plan).unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::Bounds);
    }

    #[test]
    fn missing_watermark_under_pinned_epoch_is_rejected() {
        let mut e = engine();
        // A destructive rewrite bumps the table's rewrite epoch past any
        // previously pinned cursor.
        e.execute("UPDATE t SET a = 11 WHERE ttid = 1").unwrap();
        let pinned = VerifyOptions {
            pinned_epoch: Some(0),
            ..Default::default()
        };
        let plan = plan_of(&e, "SELECT a FROM t");
        let err = verify_plan_with(&e, &plan, pinned).unwrap_err();
        assert_eq!(class_of(err), PlanErrorClass::Snapshot);
        // Pinning at the current epoch is fine.
        let now = VerifyOptions {
            pinned_epoch: Some(e.current_epoch()),
            ..Default::default()
        };
        verify_plan_with(&e, &plan, now).unwrap();
    }

    #[test]
    fn outer_mode_tolerates_correlated_columns() {
        let e = engine();
        // A filter referencing a column of the *enclosing* query: strict
        // mode rejects, outer mode assumes outer-scope binding.
        let input = plan_of(&e, "SELECT k FROM u");
        let plan = Plan::Filter {
            input: Box::new(input),
            predicates: vec![mtsql::parse_expression("k = t.a").unwrap()],
        };
        assert_eq!(
            class_of(verify_plan(&e, &plan).unwrap_err()),
            PlanErrorClass::Column
        );
        verify_plan_with(
            &e,
            &plan,
            VerifyOptions {
                outer: true,
                ..Default::default()
            },
        )
        .unwrap();
    }

    #[test]
    fn error_converts_to_typed_engine_error() {
        let err = PlanError::new(PlanErrorClass::Bounds, "Sort", "sort key out of range");
        let engine_err: EngineError = err.into();
        assert_eq!(engine_err.kind(), EngineErrorKind::Plan);
        assert!(engine_err.to_string().contains("[bounds]"));
        assert!(engine_err.to_string().contains("Sort"));
    }

    /// Apply `f` to the first SeqScan found in the plan (panics if none).
    fn mutate_scan(plan: &mut Plan, f: impl FnOnce(&mut SeqScan)) {
        fn find(plan: &mut Plan) -> Option<&mut SeqScan> {
            match plan {
                Plan::SeqScan(s) => Some(s),
                Plan::Filter { input, .. }
                | Plan::Subquery { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. } => find(input),
                Plan::Project(p) => find(&mut p.input),
                Plan::HashAggregate(a) => find(&mut a.input),
                Plan::HashJoin { left, right, .. } | Plan::NestedLoopJoin { left, right, .. } => {
                    find(left).or_else(|| find(right))
                }
                Plan::Empty { .. } => None,
            }
        }
        f(find(plan).expect("plan has a SeqScan"))
    }
}

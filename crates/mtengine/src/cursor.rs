//! Streaming cursors: pull rows out of a physical plan batch-at-a-time
//! instead of materializing the whole result set.
//!
//! A cursor drains a [`Plan`] in one of two modes, decided on the first
//! fetch:
//!
//! * **Streaming** — for *pipeline-able* plans (an optional [`Plan::Limit`]
//!   over an optional non-DISTINCT [`Plan::Project`] over a chain of
//!   sub-query-free [`Plan::Filter`]s over one [`Plan::SeqScan`]), the
//!   cursor walks the scan's selected partition buckets directly, evaluating
//!   the pushed predicates per row and projecting qualifying rows into the
//!   output batch. Only one batch of rows is resident at any time; columnar
//!   buckets materialize rows solely for predicate survivors (fast
//!   predicates read just their own column first). Peak memory is
//!   `O(batch)` instead of `O(result)`.
//! * **Materialized** — every other plan shape (sorts, aggregations, joins,
//!   DISTINCT, sub-queries) executes once through the regular executor on
//!   the first fetch and the cursor then drains the buffered rows in
//!   batches, exposing the same pull interface.
//!
//! The cursor state ([`CursorState`]) holds plain positions and owned rows —
//! no borrows of the engine — so a client can hold a cursor across lock
//! acquisitions and fetch each batch under a fresh shared borrow (this is
//! what `mtbase`'s `Cursor` does).
//!
//! # Snapshot isolation
//!
//! By default a streaming cursor reads the *live* table state on every
//! fetch. [`Engine::pin_cursor`] upgrades it to snapshot reads: the cursor
//! records the engine's mutation epoch at open, streaming fetches bound
//! every bucket (and the loose-row tail) by the row count that was visible
//! at that epoch (see the watermarks in [`crate::table`]), and blocking
//! plans materialize eagerly under the open-time lock. A pinned cursor
//! therefore never yields a row committed after it was opened. Destructive
//! rewrites (UPDATE/DELETE/re-layout) shuffle surviving rows across
//! buckets, so they *invalidate* older pinned cursors instead of serving
//! them wrong rows — the fetch fails with
//! [`EngineErrorKind::SnapshotInvalidated`].

use mtsql::ast::{Expr, SelectItem};
use mtsql::visit::contains_subquery;

use crate::conjuncts::{dict_filter_bitmap, fast_pred_value, CompiledPred};
use crate::error::{EngineError, EngineErrorKind, Result};
use crate::exec::{Env, Executor};
use crate::plan::{Plan, Project, SeqScan};
use crate::table::{Bucket, ColumnVec, Row, SharedRow, Snapshot};
use crate::{Engine, Value};

/// Default number of rows per cursor batch.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// One fetched batch: the rows plus whether the cursor is exhausted.
#[derive(Debug, Default)]
pub struct CursorBatch {
    /// The rows of this batch (at most the requested batch size).
    pub rows: Vec<Row>,
    /// `true` when no further rows will be produced.
    pub done: bool,
}

/// Resumable position of an open cursor. Create with [`CursorState::new`],
/// then pass to [`Engine::fetch_cursor_batch`] until it reports `done`.
#[derive(Debug, Default)]
pub struct CursorState {
    mode: Option<Mode>,
    /// The mutation epoch this cursor is pinned to ([`Engine::pin_cursor`]);
    /// `None` reads live state.
    snapshot: Option<u64>,
}

#[derive(Debug)]
enum Mode {
    Streaming(StreamPos),
    Materialized { rows: Vec<SharedRow>, next: usize },
}

/// Scan position of a streaming cursor.
#[derive(Debug, Default)]
struct StreamPos {
    /// Index into the ordered list of selected partition buckets.
    bucket: usize,
    /// Next row id within that bucket.
    row: usize,
    /// Next loose-row index (after all buckets are exhausted).
    loose: usize,
    /// Rows emitted so far (LIMIT accounting across batches).
    emitted: u64,
    /// Bucket pruning counters are recorded once, on the first batch.
    counted_partitions: bool,
    done: bool,
    /// Compiled once on the first batch (see [`StreamFilters`]).
    compiled: Option<StreamFilters>,
    /// Dictionary state of the bucket currently being scanned (resolved on
    /// bucket entry, reset per fetch).
    dict_bitmaps: Option<BucketDict>,
}

/// Per-bucket dictionary state of a streaming cursor: the predicate bitmaps
/// (the predicate resolved against the bucket's dictionary once; rows
/// compare codes) and whether materializing a row decodes any dictionary —
/// both hoisted out of the per-row loop.
#[derive(Debug)]
struct BucketDict {
    /// Index into the selected-bucket list this state belongs to.
    bucket: usize,
    /// Per bucket-filter predicate: the match bitmap when that predicate's
    /// column is dictionary-encoded in this bucket.
    bitmaps: Vec<Option<Vec<bool>>>,
    /// Does this bucket hold any dictionary-encoded column?
    has_dict: bool,
}

/// Per-cursor invariants compiled on the first fetch: the effective pruning
/// key set and the compiled predicate filters depend only on `(plan,
/// params)`, which are fixed for the cursor's lifetime — recompiling them
/// per batch would turn small batch sizes into a per-row CPU regression.
/// Only the selected-bucket *list* is re-derived on every fetch, because a
/// streaming cursor reads live table state.
#[derive(Debug)]
struct StreamFilters {
    prune_keys: Option<std::collections::BTreeSet<i64>>,
    /// Filter for rows inside selected buckets (residual conjuncts when
    /// pruning selected the buckets; the full pushed filter otherwise).
    bucket_filter: Vec<CompiledPred>,
    /// Full pushed filter for loose rows (their partition keys are
    /// arbitrary, so pruning predicates re-check).
    loose_filter: Vec<CompiledPred>,
    /// Residual filter stages above the scan, compiled per stage.
    stages: Vec<Vec<CompiledPred>>,
}

impl CursorState {
    /// A fresh cursor positioned before the first row.
    pub fn new() -> Self {
        CursorState::default()
    }

    /// Whether the cursor runs in streaming mode. `None` before the first
    /// fetch (the mode is decided then).
    pub fn is_streaming(&self) -> Option<bool> {
        self.mode.as_ref().map(|m| matches!(m, Mode::Streaming(_)))
    }

    /// Rows currently buffered inside the cursor state (the materialized
    /// fallback holds the full result; streaming holds none — batches are
    /// handed to the caller).
    pub fn buffered_rows(&self) -> usize {
        match &self.mode {
            Some(Mode::Materialized { rows, next }) => rows.len().saturating_sub(*next),
            _ => 0,
        }
    }

    /// The mutation epoch this cursor is pinned to, if any.
    pub fn snapshot(&self) -> Option<u64> {
        self.snapshot
    }
}

/// The decomposed shape of a pipeline-able plan.
struct StreamShape<'p> {
    limit: Option<u64>,
    project: Option<&'p Project>,
    /// Residual filter stages between the projection head and the scan,
    /// innermost first. All their conjuncts resolve against the scan schema.
    filters: Vec<&'p [Expr]>,
    scan: &'p SeqScan,
}

/// Does the plan stream? `Some(shape)` for `[Limit] [Project] Filter* SeqScan`
/// chains whose projection and filters are DISTINCT- and sub-query-free.
/// Everything else (blocking operators, sub-query predicates) falls back to
/// the materialized mode.
fn stream_shape(plan: &Plan) -> Option<StreamShape<'_>> {
    let mut limit = None;
    let mut cur = plan;
    if let Plan::Limit { input, limit: n } = cur {
        limit = Some(*n);
        cur = input;
    }
    let mut project = None;
    if let Plan::Project(p) = cur {
        let plain = p.items.iter().all(|item| match item {
            SelectItem::Expr { expr, .. } => !contains_subquery(expr),
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => true,
        });
        if p.distinct || p.items.len() != p.visible_width || !plain {
            return None;
        }
        project = Some(p);
        cur = &p.input;
    }
    let mut filters: Vec<&[Expr]> = Vec::new();
    loop {
        match cur {
            Plan::Filter { input, predicates } => {
                if predicates.iter().any(contains_subquery) {
                    return None;
                }
                filters.push(predicates);
                cur = input;
            }
            Plan::SeqScan(scan) => {
                return Some(StreamShape {
                    limit,
                    project,
                    filters,
                    scan,
                })
            }
            _ => return None,
        }
    }
}

/// `true` when the plan would be drained in streaming mode (used by clients
/// and benches to report whether a cursor avoids full materialization).
pub fn plan_streams(plan: &Plan) -> bool {
    stream_shape(plan).is_some()
}

impl Engine {
    /// Pin a cursor to the engine's current mutation epoch, **before** the
    /// first fetch and under the same shared borrow that opened the cursor.
    /// Streaming fetches then never observe rows committed after this call;
    /// plans that cannot stream materialize *now* (still under the caller's
    /// lock), so their result is the open-time state by construction.
    pub fn pin_cursor(&self, plan: &Plan, params: &[Value], state: &mut CursorState) -> Result<()> {
        // Pin the *committed* floor, not the live epoch: while a
        // multi-statement transaction is open its statements carry epochs
        // above the floor, and a cursor must never observe rows a ROLLBACK
        // (or a crash before COMMIT) takes back. With no open transaction
        // the floor equals the live epoch.
        let epoch = self.committed_epoch();
        if crate::verify::verify_enabled(&self.config) {
            // Snapshot discipline: every scan of the pinned plan must still
            // have an addressable watermark at the pin epoch.
            let opts = crate::verify::VerifyOptions {
                param_count: Some(params.len()),
                pinned_epoch: Some(epoch),
                ..Default::default()
            };
            crate::verify::verify_plan_with(self, plan, opts)?;
            self.counters.add_plans_verified(1);
        }
        state.snapshot = Some(epoch);
        if state.mode.is_none() && stream_shape(plan).is_none() {
            let mut executor = Executor::with_params(self, params.to_vec());
            // Bound the materializing execution at the pin epoch: even under
            // the caller's shared borrow, morsel workers must never size
            // their row ranges past the open-time watermark.
            executor.pin_snapshot(epoch);
            let rel = executor.execute_plan(plan, None)?;
            state.mode = Some(Mode::Materialized {
                rows: rel.rows,
                next: 0,
            });
        }
        Ok(())
    }

    /// Fetch the next batch (at most `max_rows` rows) of the cursor over
    /// `plan`. The same `plan` and `params` must be passed on every fetch of
    /// one cursor; the state carries only positions and buffered rows, so
    /// the borrow of the engine ends with each call.
    pub fn fetch_cursor_batch(
        &self,
        plan: &Plan,
        params: &[Value],
        state: &mut CursorState,
        max_rows: usize,
    ) -> Result<CursorBatch> {
        let max_rows = max_rows.max(1);
        let snapshot = state.snapshot;
        let executor = Executor::with_params(self, params.to_vec());
        let mode = match state.mode.as_mut() {
            Some(mode) => mode,
            None => {
                let decided = match stream_shape(plan) {
                    Some(_) => Mode::Streaming(StreamPos::default()),
                    None => {
                        let rel = executor.execute_plan(plan, None)?;
                        Mode::Materialized {
                            rows: rel.rows,
                            next: 0,
                        }
                    }
                };
                state.mode.insert(decided)
            }
        };
        match mode {
            Mode::Materialized { rows, next } => {
                let end = (*next + max_rows).min(rows.len());
                let batch: Vec<Row> = rows[*next..end].iter().map(|r| r.to_vec()).collect();
                *next = end;
                Ok(CursorBatch {
                    rows: batch,
                    done: end == rows.len(),
                })
            }
            Mode::Streaming(pos) => {
                // The mode was decided as streaming from this same plan, so
                // the shape must still resolve — fail typed rather than
                // serve wrong rows if a caller swapped plans between fetches.
                let Some(shape) = stream_shape(plan) else {
                    return Err(EngineError::new(
                        "cursor opened streaming but the plan no longer streams \
                         (a different plan was passed to a later fetch)",
                    ));
                };
                fetch_streaming(&executor, self, &shape, pos, snapshot, max_rows)
            }
        }
    }
}

/// Advance a streaming cursor by one batch: resume the scan at the recorded
/// (bucket, row) position, evaluate pushed predicates and filter stages per
/// row, project, and stop as soon as the batch is full or the LIMIT is
/// reached. Fast predicates read only their own column, so non-qualifying
/// rows of columnar buckets are never materialized.
fn fetch_streaming(
    executor: &Executor,
    engine: &Engine,
    shape: &StreamShape,
    pos: &mut StreamPos,
    snapshot: Option<u64>,
    max_rows: usize,
) -> Result<CursorBatch> {
    if pos.done {
        return Ok(CursorBatch {
            rows: Vec::new(),
            done: true,
        });
    }
    let scan = shape.scan;
    let table = engine.database().table(&scan.table)?;
    // A *published* destructive rewrite (UPDATE/DELETE/re-layout) after the
    // pin shuffles surviving rows across buckets — the recorded (bucket,
    // row) position no longer addresses snapshot rows, so fail rather than
    // serve wrong data. An open transaction's unpublished rewrite retains
    // the pre-rewrite storage as a shadow, which `read_at` below resolves —
    // positions stay valid because the shadow *is* the pinned storage.
    if let Some(s) = snapshot {
        if !table.snapshot_servable(s) {
            return Err(EngineError::with_kind(
                EngineErrorKind::SnapshotInvalidated,
                format!(
                    "cursor pinned at epoch {s} invalidated: `{}` was rewritten at epoch {}",
                    scan.table,
                    table.rewrite_epoch()
                ),
            ));
        }
    }
    let pin = snapshot.map(Snapshot::At);
    let view = table.read_at(pin.as_ref());

    // Compile the cursor-lifetime invariants once, on the first batch. Taken
    // out of the state for the duration of the batch (the loop below needs
    // `pos` mutably) and put back before returning.
    let filters = match pos.compiled.take() {
        Some(filters) => filters,
        None => {
            let prune_keys = executor
                .effective_prune_keys(scan, table.partition_column())
                .into_owned();
            // Rows inside selected buckets satisfy the pruning predicates by
            // construction; loose rows (and every row when nothing pruned)
            // re-check the full pushed filter — mirroring the batch executor.
            let bucket_filter = executor.compile_bucket_filter(scan, prune_keys.is_some());
            StreamFilters {
                prune_keys,
                bucket_filter,
                loose_filter: executor.compile_full_scan_filter(scan),
                stages: shape
                    .filters
                    .iter()
                    .map(|preds| executor.compile_filter(preds, &scan.schema))
                    .collect(),
            }
        }
    };
    let StreamFilters {
        prune_keys,
        bucket_filter,
        loose_filter,
        stages: stage_filters,
    } = &filters;

    // Selected buckets in key order — the same deterministic order on every
    // batch (BTreeMap iteration), which is what makes (bucket, row) a
    // resumable position.
    let selected: Vec<(i64, &Bucket)> = match prune_keys {
        Some(keys) => view
            .partitions()
            .filter(|(k, _)| keys.contains(k))
            .collect(),
        None => view.partitions().collect(),
    };
    if !pos.counted_partitions {
        let scanned = selected.len() as u64;
        let total = view.partition_count() as u64;
        engine.note_partitions(scanned, total.saturating_sub(scanned));
        pos.counted_partitions = true;
    }
    // Dictionary bitmaps are keyed by bucket *index*, which is only stable
    // within one fetch — the selected list is re-derived from live table
    // state, and DML between batches may re-bucket rows. Resolve afresh per
    // batch (cheap: ≤ DICT_MAX_DISTINCT evaluations per predicate).
    pos.dict_bitmaps = None;

    let mut out: Vec<Row> = Vec::new();
    let mut visited: u64 = 0;
    let mut materialized: u64 = 0;
    let mut dict_rows: u64 = 0;

    'produce: loop {
        if out.len() >= max_rows {
            break;
        }
        if shape.limit.is_some_and(|lim| pos.emitted >= lim) {
            pos.done = true;
            break;
        }
        // Next candidate row: buckets first, then loose rows. Bucket rows
        // check fast predicates column-wise *before* materializing; the
        // remaining (interpreted) conjuncts run on the materialized row.
        let (row, remaining) = if pos.bucket < selected.len() {
            let (key, bucket) = selected[pos.bucket];
            // A pinned cursor only walks the prefix of the bucket that was
            // visible at its snapshot epoch (appends are strictly ordered,
            // so the watermark prefix *is* the snapshot content).
            let visible = view.visible_bucket_len(key).min(bucket.len());
            if pos.row >= visible {
                pos.bucket += 1;
                pos.row = 0;
                continue;
            }
            // Entering a bucket: resolve the fast predicates against its
            // dictionaries once (per-row checks below compare codes), and
            // note once whether materializing decodes any dictionary.
            if pos.dict_bitmaps.as_ref().map(|b| b.bucket) != Some(pos.bucket) {
                let (bitmaps, has_dict) = match bucket.as_columns() {
                    Some(cols) => (
                        bucket_filter
                            .iter()
                            .map(|pred| {
                                pred.column_index()
                                    .and_then(|idx| match cols.column(idx).data() {
                                        ColumnVec::Dict(d) => {
                                            Some(dict_filter_bitmap(pred, d.dict()))
                                        }
                                        _ => None,
                                    })
                            })
                            .collect(),
                        cols.dict_column_count() > 0,
                    ),
                    None => (vec![None; bucket_filter.len()], false),
                };
                pos.dict_bitmaps = Some(BucketDict {
                    bucket: pos.bucket,
                    bitmaps,
                    has_dict,
                });
            }
            let i = pos.row;
            pos.row += 1;
            visited += 1;
            let reader = bucket.reader();
            let Some(dict) = pos.dict_bitmaps.as_ref() else {
                return Err(EngineError::new(
                    "cursor dictionary state missing after bucket entry",
                ));
            };
            let bitmaps = &dict.bitmaps;
            // Fast predicates first, reading only the predicate's column
            // (dictionary-encoded columns compare codes, no decode).
            for (pi, pred) in bucket_filter.iter().enumerate() {
                let Some(idx) = pred.column_index() else {
                    continue;
                };
                match bitmaps.get(pi).and_then(Option::as_ref) {
                    Some(bitmap) => {
                        let Some(cols) = bucket.as_columns() else {
                            return Err(EngineError::new(
                                "dictionary bitmap resolved on a non-columnar bucket",
                            ));
                        };
                        let col = cols.column(idx);
                        dict_rows += 1;
                        let hit = !col.is_null(i)
                            && match col.data() {
                                ColumnVec::Dict(d) => bitmap[d.code(i) as usize],
                                _ => unreachable!("bitmap built from a dict column"),
                            };
                        if !hit {
                            continue 'produce;
                        }
                    }
                    None => {
                        if !fast_pred_value(pred, &reader.value(i, idx)) {
                            continue 'produce;
                        }
                    }
                }
            }
            let row = reader.materialize(i);
            if matches!(bucket, Bucket::Columnar(_)) {
                materialized += 1;
                if dict.has_dict {
                    dict_rows += 1;
                }
            }
            let remaining: Vec<&CompiledPred> =
                bucket_filter.iter().filter(|p| !p.is_fast()).collect();
            (row, remaining)
        } else if pos.loose < view.visible_loose_len().min(view.loose_rows().len()) {
            let row = SharedRow::clone(&view.loose_rows()[pos.loose]);
            pos.loose += 1;
            visited += 1;
            (row, loose_filter.iter().collect())
        } else {
            pos.done = true;
            break;
        };
        for pred in remaining {
            if !executor.filter_matches(std::slice::from_ref(pred), &scan.schema, &row, None)? {
                continue 'produce;
            }
        }
        // Residual filter stages above the scan.
        for stage in stage_filters {
            if !executor.filter_matches(stage, &scan.schema, &row, None)? {
                continue 'produce;
            }
        }
        // Projection head.
        let out_row = match shape.project {
            Some(p) => {
                let env = Env {
                    schema: &scan.schema,
                    row: &row,
                    parent: None,
                };
                executor.project_row(&p.items, &env)?
            }
            None => row.to_vec(),
        };
        pos.emitted += 1;
        out.push(out_row);
    }

    pos.compiled = Some(filters);
    engine.note_rows_scanned(visited);
    engine.note_vectorized(0, materialized);
    engine.note_dict_kernel_rows(dict_rows);
    Ok(CursorBatch {
        rows: out,
        done: pos.done,
    })
}

/// A borrowing row iterator over a plan — the engine-level streaming
/// interface (`mtbase`'s `Cursor` provides the lock-friendly counterpart on
/// top of [`CursorState`]).
///
/// ```
/// use mtengine::{Engine, EngineConfig, Value};
///
/// let mut engine = Engine::new(EngineConfig::default());
/// engine.create_table("t", &["a"]);
/// engine
///     .insert_values("t", (0..10).map(|i| vec![Value::Int(i)]).collect())
///     .unwrap();
/// let plan = engine
///     .plan_query(&mtsql::parse_query("SELECT a FROM t WHERE a >= $1").unwrap())
///     .unwrap();
/// let rows: Vec<_> = engine
///     .row_iter(&plan, vec![Value::Int(7)])
///     .collect::<Result<Vec<_>, _>>()
///     .unwrap();
/// assert_eq!(rows.len(), 3);
/// ```
pub struct RowIter<'e> {
    engine: &'e Engine,
    plan: &'e Plan,
    params: Vec<Value>,
    state: CursorState,
    batch: std::vec::IntoIter<Row>,
    batch_size: usize,
    done: bool,
}

impl<'e> RowIter<'e> {
    pub(crate) fn new(engine: &'e Engine, plan: &'e Plan, params: Vec<Value>) -> Self {
        RowIter {
            engine,
            plan,
            params,
            state: CursorState::new(),
            batch: Vec::new().into_iter(),
            batch_size: DEFAULT_BATCH_ROWS,
            done: false,
        }
    }

    /// Override the internal batch size (rows fetched per engine call).
    pub fn with_batch_size(mut self, rows: usize) -> Self {
        self.batch_size = rows.max(1);
        self
    }

    /// Whether the underlying cursor streams (never holds the full result).
    /// `None` until the first row was pulled.
    pub fn is_streaming(&self) -> Option<bool> {
        self.state.is_streaming()
    }
}

impl Iterator for RowIter<'_> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Result<Row>> {
        loop {
            if let Some(row) = self.batch.next() {
                return Some(Ok(row));
            }
            if self.done {
                return None;
            }
            match self.engine.fetch_cursor_batch(
                self.plan,
                &self.params,
                &mut self.state,
                self.batch_size,
            ) {
                Ok(batch) => {
                    self.done = batch.done;
                    if batch.rows.is_empty() && self.done {
                        return None;
                    }
                    self.batch = batch.rows.into_iter();
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn engine_with_rows(n: i64) -> Engine {
        let mut e = Engine::new(EngineConfig::default());
        e.create_table("t", &["ttid", "v"]);
        e.set_table_partition("t", "ttid").unwrap();
        e.insert_values(
            "t",
            (0..n)
                .map(|i| vec![Value::Int(i % 4), Value::Int(i)])
                .collect(),
        )
        .unwrap();
        e
    }

    fn plan(e: &Engine, sql: &str) -> Plan {
        e.plan_query(&mtsql::parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn streaming_matches_batch_execution() {
        let e = engine_with_rows(1000);
        for sql in [
            "SELECT v FROM t WHERE v >= 100",
            "SELECT ttid, v FROM t WHERE ttid = 2 AND v % 2 = 0",
            "SELECT v + 1 FROM t WHERE v BETWEEN 10 AND 20",
            "SELECT v FROM t WHERE v > 500 LIMIT 7",
            "SELECT * FROM t",
        ] {
            let p = plan(&e, sql);
            let batch = e.execute_plan(&p, &[]).unwrap();
            let streamed: Vec<Row> = e
                .row_iter(&p, Vec::new())
                .with_batch_size(13)
                .collect::<Result<Vec<_>>>()
                .unwrap();
            assert_eq!(streamed, batch.rows, "{sql}");
        }
    }

    #[test]
    fn pipeline_plans_stream_and_blocking_plans_materialize() {
        let e = engine_with_rows(100);
        let streaming = plan(&e, "SELECT v FROM t WHERE v > 3");
        assert!(plan_streams(&streaming));
        let blocking = plan(&e, "SELECT v FROM t ORDER BY v DESC");
        assert!(!plan_streams(&blocking));
        let aggregated = plan(&e, "SELECT SUM(v) FROM t");
        assert!(!plan_streams(&aggregated));
        let distinct = plan(&e, "SELECT DISTINCT ttid FROM t");
        assert!(!plan_streams(&distinct));
        let subquery = plan(&e, "SELECT v FROM t WHERE v = (SELECT MAX(v) FROM t)");
        assert!(!plan_streams(&subquery));

        let mut iter = e.row_iter(&blocking, Vec::new());
        let first = iter.next().unwrap().unwrap();
        assert_eq!(first, vec![Value::Int(99)]);
        assert_eq!(iter.is_streaming(), Some(false));
    }

    #[test]
    fn streaming_batches_bound_resident_rows() {
        let e = engine_with_rows(1000);
        let p = plan(&e, "SELECT v FROM t WHERE v >= 0");
        let mut state = CursorState::new();
        let mut total = 0;
        loop {
            let batch = e.fetch_cursor_batch(&p, &[], &mut state, 10).unwrap();
            assert!(batch.rows.len() <= 10, "batch overflowed");
            assert_eq!(state.buffered_rows(), 0, "streaming must not buffer");
            total += batch.rows.len();
            if batch.done {
                break;
            }
        }
        assert_eq!(total, 1000);
        assert_eq!(state.is_streaming(), Some(true));
    }

    #[test]
    fn materialized_cursor_drains_in_batches() {
        let e = engine_with_rows(25);
        let p = plan(&e, "SELECT v FROM t ORDER BY v");
        let mut state = CursorState::new();
        let first = e.fetch_cursor_batch(&p, &[], &mut state, 10).unwrap();
        assert_eq!(first.rows.len(), 10);
        assert!(!first.done);
        assert_eq!(state.buffered_rows(), 15);
        let rest = e.fetch_cursor_batch(&p, &[], &mut state, 100).unwrap();
        assert_eq!(rest.rows.len(), 15);
        assert!(rest.done);
    }

    #[test]
    fn bound_params_stream_with_bind_time_pruning() {
        let e = engine_with_rows(1000);
        e.reset_stats();
        let p = plan(&e, "SELECT v FROM t WHERE ttid = $1");
        let rows: Vec<Row> = e
            .row_iter(&p, vec![Value::Int(2)])
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(rows.len(), 250);
        let stats = e.stats();
        assert_eq!(
            stats.partitions_pruned, 3,
            "bind-time pruning must skip the 3 foreign buckets, stats: {stats:?}"
        );
        assert_eq!(stats.rows_scanned, 250);
    }

    /// Streaming over dictionary-encoded columns compares codes per row
    /// (engagement visible through `dict_kernel_rows`) and returns exactly
    /// what batch execution returns.
    #[test]
    fn streaming_dict_predicates_match_batch_execution() {
        let mut e = Engine::new(EngineConfig::default());
        e.create_table("t", &["ttid", "mode", "v"]);
        e.set_table_partition("t", "ttid").unwrap();
        let modes = ["MAIL", "SHIP", "RAIL", "AIR"];
        e.insert_values(
            "t",
            (0..400)
                .map(|i| {
                    let mode = if i % 13 == 0 {
                        Value::Null
                    } else {
                        Value::str(modes[(i % 4) as usize])
                    };
                    vec![Value::Int(i % 3), mode, Value::Int(i)]
                })
                .collect(),
        )
        .unwrap();
        for sql in [
            "SELECT v FROM t WHERE mode IN ('MAIL', 'SHIP')",
            "SELECT v FROM t WHERE mode LIKE 'MA%' AND ttid = 1",
            "SELECT mode FROM t WHERE mode NOT LIKE 'MA%' LIMIT 40",
        ] {
            let p = plan(&e, sql);
            let batch = e.execute_plan(&p, &[]).unwrap();
            e.reset_stats();
            let streamed: Vec<Row> = e
                .row_iter(&p, Vec::new())
                .with_batch_size(17)
                .collect::<Result<Vec<_>>>()
                .unwrap();
            assert_eq!(streamed, batch.rows, "{sql}");
            assert!(
                e.stats().dict_kernel_rows > 0,
                "{sql}: cursor did not compare codes, stats: {:?}",
                e.stats()
            );
        }
    }

    #[test]
    fn pinned_cursor_never_observes_later_inserts() {
        let mut e = engine_with_rows(100);
        let p = plan(&e, "SELECT v FROM t WHERE v >= 0");
        let mut pinned = CursorState::new();
        e.pin_cursor(&p, &[], &mut pinned).unwrap();
        let mut live = CursorState::new();
        let first = e.fetch_cursor_batch(&p, &[], &mut pinned, 10).unwrap();
        assert_eq!(first.rows.len(), 10);
        // A concurrent INSERT lands between batches.
        e.insert_values("t", vec![vec![Value::Int(1), Value::Int(1000)]])
            .unwrap();
        let mut total = first.rows.len();
        loop {
            let batch = e.fetch_cursor_batch(&p, &[], &mut pinned, 10).unwrap();
            assert!(batch.rows.iter().all(|r| r[0] != Value::Int(1000)));
            total += batch.rows.len();
            if batch.done {
                break;
            }
        }
        assert_eq!(total, 100, "pinned cursor must stop at its snapshot");
        // An unpinned cursor opened before the INSERT reads live state.
        let mut live_total = 0;
        loop {
            let batch = e.fetch_cursor_batch(&p, &[], &mut live, 32).unwrap();
            live_total += batch.rows.len();
            if batch.done {
                break;
            }
        }
        assert_eq!(live_total, 101);
    }

    #[test]
    fn pinned_cursor_is_invalidated_by_rewrites() {
        let mut e = engine_with_rows(50);
        let p = plan(&e, "SELECT v FROM t WHERE v >= 0");
        let mut state = CursorState::new();
        e.pin_cursor(&p, &[], &mut state).unwrap();
        e.fetch_cursor_batch(&p, &[], &mut state, 5).unwrap();
        e.execute("DELETE FROM t WHERE v < 10").unwrap();
        let err = e.fetch_cursor_batch(&p, &[], &mut state, 5).unwrap_err();
        assert_eq!(err.kind(), EngineErrorKind::SnapshotInvalidated);
    }

    #[test]
    fn pinned_blocking_plans_materialize_at_open() {
        let mut e = engine_with_rows(20);
        let p = plan(&e, "SELECT v FROM t ORDER BY v DESC");
        let mut state = CursorState::new();
        e.pin_cursor(&p, &[], &mut state).unwrap();
        assert_eq!(state.buffered_rows(), 20, "must materialize at open");
        e.insert_values("t", vec![vec![Value::Int(0), Value::Int(999)]])
            .unwrap();
        let batch = e.fetch_cursor_batch(&p, &[], &mut state, 100).unwrap();
        assert!(batch.done);
        assert_eq!(batch.rows.len(), 20);
        assert_eq!(batch.rows[0], vec![Value::Int(19)]);
    }

    #[test]
    fn limit_is_respected_across_batches() {
        let e = engine_with_rows(1000);
        let p = plan(&e, "SELECT v FROM t WHERE v >= 0 LIMIT 30");
        let rows: Vec<Row> = e
            .row_iter(&p, Vec::new())
            .with_batch_size(7)
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(rows.len(), 30);
    }
}

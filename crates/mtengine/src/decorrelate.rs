//! Sub-query decorrelation: rewriting correlated sub-query conjuncts into
//! join variants of [`Plan::HashJoin`] at plan time.
//!
//! The planner's FROM/WHERE lowering leaves sub-query-bearing conjuncts in
//! the residual pool (they never push into scans or joins); without this
//! module they end up in a [`Plan::Filter`] whose predicates the executor
//! interprets *per outer row* — a correlated `EXISTS` over `orders` rescan's
//! the orders table once per `customer` row. With
//! [`crate::EngineConfig::decorrelation`] on (the default), two rewrite
//! rules turn those conjuncts into set-at-a-time joins:
//!
//! * **`[NOT] EXISTS`** with equi-correlation only becomes a
//!   [`JoinVariant::Semi`] / [`JoinVariant::Anti`] join: the build side
//!   projects the inner key expressions under synthetic aliases
//!   (`$k0`, `$k1`, ...) with the inner-only conjuncts — including `ttid`
//!   D-filters, which therefore keep pruning partitions — as its WHERE
//!   clause, and the probe side filters by build-key membership.
//! * A comparison against a **correlated scalar aggregate**
//!   (`l_quantity < (SELECT 0.2 * AVG(l_quantity) FROM lineitem WHERE
//!   l_partkey = p_partkey)`) becomes a [`JoinVariant::Single`] join: the
//!   build side groups by the inner key expressions and computes the
//!   aggregate projection once per key (`$agg`), and the comparison is
//!   re-evaluated per probe row against the looked-up (or NULL-extended)
//!   aggregate.
//!
//! Both rules are *conservative*: any shape whose set-at-a-time equivalent
//! is not provably identical to per-row interpretation bails and keeps the
//! interpreted filter. In particular a rewrite requires:
//!
//! * every inner FROM item is a plain base table (no views, derived tables
//!   or explicit joins), so inner resolvability is decidable without
//!   planning;
//! * no nested sub-queries inside the inner WHERE or projection;
//! * every non-local inner conjunct is an equality with one side resolvable
//!   against the inner schema and the other against the probe schema —
//!   non-equi correlation (Q21's `l2.l_suppkey <> l1.l_suppkey`) bails;
//! * at least one correlation key — uncorrelated sub-queries stay on the
//!   executor's cached interpreted path, which evaluates them exactly once
//!   anyway;
//! * for the aggregate rule: a single projection item whose columns all sit
//!   inside `SUM`/`AVG`/`MIN`/`MAX` arguments. `COUNT` bails — it folds to
//!   `0` over an empty inner set while a join miss NULL-extends, and
//!   `0 != NULL`.
//!
//! NULL semantics line up by construction: build rows with a NULL key are
//! skipped (a NULL key equals nothing, so the interpreted inner set never
//! contains them), a NULL probe key matches nothing (`Semi` drops the row,
//! `Anti` keeps it), and a `Single` miss NULL-extends so the rewritten
//! comparison evaluates against NULL aggregates — not-true, exactly like
//! the interpreted aggregate over an empty inner set.

use mtsql::ast::*;
use mtsql::visit::{collect_aggregate_calls, contains_subquery, split_conjuncts};

use crate::conjuncts::expr_resolvable;
use crate::error::Result;
use crate::plan::{JoinVariant, Plan, Planner};
use crate::schema::Schema;

/// Synthetic build-side alias of correlation key `i`. `$` keeps the names
/// out of the identifier space real queries can reach.
fn key_alias(i: usize) -> String {
    format!("$k{i}")
}

/// Synthetic build-side alias of the hoisted aggregate projection.
const AGG_ALIAS: &str = "$agg";

/// One successful rewrite: the planned build side plus the join shape to
/// wrap around the current probe plan.
struct Rewrite {
    build: Plan,
    /// `(probe key, build key)` pairs; build keys reference the `$k{i}`
    /// aliases of the build projection.
    keys: Vec<(Expr, Expr)>,
    /// The rewritten scalar comparison for [`JoinVariant::Single`]; empty
    /// for semi/anti joins.
    residual: Vec<Expr>,
    variant: JoinVariant,
}

/// The inner WHERE clause split against the (inner, probe) schema pair:
/// inner-only conjuncts stay local to the build side, equalities across the
/// boundary become join keys.
struct InnerSplit {
    locals: Vec<Expr>,
    /// `(probe-side expression, inner-side expression)` pairs.
    keys: Vec<(Expr, Expr)>,
}

fn split_correlation(
    select: &Select,
    inner_schema: &Schema,
    probe_schema: &Schema,
) -> Option<InnerSplit> {
    let mut conjuncts = Vec::new();
    if let Some(sel) = &select.selection {
        split_conjuncts(sel, &mut conjuncts);
    }
    let mut locals = Vec::new();
    let mut keys = Vec::new();
    for c in conjuncts {
        if contains_subquery(&c) {
            // Nested sub-queries may reference scopes the hoisted build side
            // no longer sees; keep the whole predicate interpreted.
            return None;
        }
        if expr_resolvable(&c, inner_schema) {
            // Fully inner conjuncts (including `ttid IN (...)` D-filters)
            // stay in the build side's WHERE clause, where the planner
            // pushes them into the build scans — partition pruning fires
            // inside the unnested pipeline.
            locals.push(c);
            continue;
        }
        // Everything else must be an equi-correlation: one side inner, the
        // other probe. Inner resolution is checked first on each side,
        // mirroring how the executor's environment chain shadows outer
        // scopes (a side resolvable against *both* schemas is inner).
        let Expr::BinaryOp {
            left,
            op: BinaryOperator::Eq,
            right,
        } = &c
        else {
            return None;
        };
        if expr_resolvable(left, inner_schema) && expr_resolvable(right, probe_schema) {
            keys.push(((**right).clone(), (**left).clone()));
        } else if expr_resolvable(right, inner_schema) && expr_resolvable(left, probe_schema) {
            keys.push(((**left).clone(), (**right).clone()));
        } else {
            return None;
        }
    }
    if keys.is_empty() {
        // Uncorrelated: the executor's sub-query result cache already
        // evaluates it exactly once.
        return None;
    }
    Some(InnerSplit { locals, keys })
}

/// `true` when a column reference appears outside every aggregate argument —
/// such a projection varies per inner row even within one key group, so the
/// aggregate rule cannot hoist it. Sub-query variants count as "outside"
/// (callers exclude them beforehand; this stays conservative regardless).
fn columns_outside_aggregates(expr: &Expr) -> bool {
    match expr {
        Expr::Column(_) => true,
        Expr::Literal(_) | Expr::Param(_) => false,
        Expr::Function(f) if f.is_aggregate() => false,
        Expr::Function(f) => f.args.iter().any(columns_outside_aggregates),
        Expr::BinaryOp { left, right, .. } => {
            columns_outside_aggregates(left) || columns_outside_aggregates(right)
        }
        Expr::UnaryOp { expr, .. }
        | Expr::IsNull { expr, .. }
        | Expr::Extract { expr, .. }
        | Expr::Cast { expr, .. } => columns_outside_aggregates(expr),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            operand.as_deref().is_some_and(columns_outside_aggregates)
                || when_then
                    .iter()
                    .any(|(w, t)| columns_outside_aggregates(w) || columns_outside_aggregates(t))
                || else_expr.as_deref().is_some_and(columns_outside_aggregates)
        }
        Expr::InList { expr, list, .. } => {
            columns_outside_aggregates(expr) || list.iter().any(columns_outside_aggregates)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            columns_outside_aggregates(expr)
                || columns_outside_aggregates(low)
                || columns_outside_aggregates(high)
        }
        Expr::Like { expr, pattern, .. } => {
            columns_outside_aggregates(expr) || columns_outside_aggregates(pattern)
        }
        Expr::Substring {
            expr,
            start,
            length,
        } => {
            columns_outside_aggregates(expr)
                || columns_outside_aggregates(start)
                || length.as_deref().is_some_and(columns_outside_aggregates)
        }
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => true,
    }
}

impl<'e> Planner<'e> {
    /// Try to rewrite each residual conjunct into a join over `current`;
    /// conjuncts that do not match a rewrite rule are returned for the
    /// interpreted [`Plan::Filter`]. Joins are stacked in conjunct order —
    /// each variant emits probe rows unchanged and in order, so the stack
    /// filters exactly like the conjunction it replaces.
    pub(crate) fn decorrelate_conjuncts(
        &self,
        current: &mut Plan,
        conjuncts: Vec<Expr>,
    ) -> Result<Vec<Expr>> {
        let mut kept = Vec::new();
        for c in conjuncts {
            match self.try_decorrelate(current, &c)? {
                Some(rw) => {
                    let left = std::mem::replace(
                        current,
                        Plan::Empty {
                            schema: Schema::new(),
                        },
                    );
                    let schema = left.schema().clone();
                    *current = Plan::HashJoin {
                        left: Box::new(left),
                        right: Box::new(rw.build),
                        keys: rw.keys,
                        residual: rw.residual,
                        kind: rw.variant,
                        schema,
                    };
                }
                None => kept.push(c),
            }
        }
        Ok(kept)
    }

    fn try_decorrelate(&self, current: &Plan, conjunct: &Expr) -> Result<Option<Rewrite>> {
        match conjunct {
            Expr::Exists { query, negated } => self.decorrelate_exists(current, query, *negated),
            Expr::BinaryOp { left, op, right } if op.is_comparison() => {
                if let Expr::ScalarSubquery(q) = &**left {
                    self.decorrelate_scalar_agg(current, q, *op, right, true)
                } else if let Expr::ScalarSubquery(q) = &**right {
                    self.decorrelate_scalar_agg(current, q, *op, left, false)
                } else {
                    Ok(None)
                }
            }
            _ => Ok(None),
        }
    }

    /// Combined schema of an inner FROM list made only of plain base tables;
    /// `None` bails the rewrite for any other FROM shape.
    fn inner_from_schema(&self, from: &[TableRef]) -> Option<Schema> {
        let mut schema = Schema::new();
        if from.is_empty() {
            return None;
        }
        for item in from {
            schema = schema.concat(&self.base_table_schema(item)?);
        }
        Some(schema)
    }

    /// `[NOT] EXISTS (SELECT ... WHERE inner-locals AND equi-correlation)` →
    /// semi/anti join against a build side projecting the inner keys.
    fn decorrelate_exists(
        &self,
        current: &Plan,
        query: &Query,
        negated: bool,
    ) -> Result<Option<Rewrite>> {
        let select = &query.body;
        if query.limit.is_some() || !select.group_by.is_empty() || select.having.is_some() {
            return Ok(None);
        }
        // A projection aggregate makes the inner block a one-row group
        // (EXISTS is then unconditionally true); leave that to the
        // interpreter.
        let mut aggs = Vec::new();
        for item in &select.projection {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggregate_calls(expr, &mut aggs);
            }
        }
        if !aggs.is_empty() {
            return Ok(None);
        }
        let Some(inner_schema) = self.inner_from_schema(&select.from) else {
            return Ok(None);
        };
        let Some(split) = split_correlation(select, &inner_schema, current.schema()) else {
            return Ok(None);
        };
        let projection = split
            .keys
            .iter()
            .enumerate()
            .map(|(i, (_, inner))| SelectItem::aliased(inner.clone(), key_alias(i)))
            .collect();
        let build_query = Query {
            body: Select {
                distinct: false,
                projection,
                from: select.from.clone(),
                selection: Expr::conjunction(split.locals.clone()),
                group_by: Vec::new(),
                having: None,
            },
            order_by: Vec::new(),
            limit: None,
        };
        let Ok(build) = self.plan(&build_query, Vec::new()) else {
            return Ok(None);
        };
        let keys = join_keys(&split);
        Ok(Some(Rewrite {
            build,
            keys,
            residual: Vec::new(),
            variant: if negated {
                JoinVariant::Anti
            } else {
                JoinVariant::Semi
            },
        }))
    }

    /// `other <cmp> (SELECT agg(...) ... WHERE inner-locals AND
    /// equi-correlation)` → aggregate join: the build side groups the inner
    /// rows by the correlation keys and the comparison re-evaluates per
    /// probe row against the per-key aggregate (`$agg`).
    fn decorrelate_scalar_agg(
        &self,
        current: &Plan,
        query: &Query,
        op: BinaryOperator,
        other: &Expr,
        subquery_on_left: bool,
    ) -> Result<Option<Rewrite>> {
        if contains_subquery(other) || !expr_resolvable(other, current.schema()) {
            return Ok(None);
        }
        let select = &query.body;
        if query.limit.is_some()
            || !query.order_by.is_empty()
            || !select.group_by.is_empty()
            || select.having.is_some()
            || select.distinct
        {
            return Ok(None);
        }
        let [SelectItem::Expr { expr: proj, .. }] = select.projection.as_slice() else {
            return Ok(None);
        };
        if contains_subquery(proj) || columns_outside_aggregates(proj) {
            return Ok(None);
        }
        let mut aggs = Vec::new();
        collect_aggregate_calls(proj, &mut aggs);
        if aggs.is_empty() || aggs.iter().any(|a| a.name.eq_ignore_ascii_case("COUNT")) {
            return Ok(None);
        }
        let Some(inner_schema) = self.inner_from_schema(&select.from) else {
            return Ok(None);
        };
        // Aggregate arguments must be inner-only: an outer column inside an
        // argument makes the aggregate vary per probe row.
        if !expr_resolvable(proj, &inner_schema) {
            return Ok(None);
        }
        let Some(split) = split_correlation(select, &inner_schema, current.schema()) else {
            return Ok(None);
        };
        let mut projection: Vec<SelectItem> = split
            .keys
            .iter()
            .enumerate()
            .map(|(i, (_, inner))| SelectItem::aliased(inner.clone(), key_alias(i)))
            .collect();
        projection.push(SelectItem::aliased(proj.clone(), AGG_ALIAS));
        let group_by = split.keys.iter().map(|(_, inner)| inner.clone()).collect();
        let build_query = Query {
            body: Select {
                distinct: false,
                projection,
                from: select.from.clone(),
                selection: Expr::conjunction(split.locals.clone()),
                group_by,
                having: None,
            },
            order_by: Vec::new(),
            limit: None,
        };
        let Ok(build) = self.plan(&build_query, Vec::new()) else {
            return Ok(None);
        };
        let keys = join_keys(&split);
        let agg_col = Expr::col(AGG_ALIAS);
        let rewritten = if subquery_on_left {
            Expr::binary(agg_col, op, other.clone())
        } else {
            Expr::binary(other.clone(), op, agg_col)
        };
        Ok(Some(Rewrite {
            build,
            keys,
            residual: vec![rewritten],
            variant: JoinVariant::Single,
        }))
    }
}

/// Join keys of the rewritten node: probe expressions against the `$k{i}`
/// aliases of the build projection.
fn join_keys(split: &InnerSplit) -> Vec<(Expr, Expr)> {
    split
        .keys
        .iter()
        .enumerate()
        .map(|(i, (probe, _))| (probe.clone(), Expr::col(key_alias(i))))
        .collect()
}

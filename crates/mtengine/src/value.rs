//! Runtime values, arithmetic, comparison and calendar helpers.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::error::{err, Result};

/// A runtime value. Dates are stored as days since 1970-01-01 (can be
/// negative); decimals are evaluated in double precision which is sufficient
/// for the benchmark workloads.
///
/// Strings are interned behind an `Arc<str>` so that cloning a value — which
/// the row-sharing executor does only for residual materializations — is a
/// reference-count bump rather than a heap copy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Date(i32),
}

impl Value {
    /// String constructor.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Parse a `YYYY-MM-DD` date into a [`Value::Date`].
    pub fn date_from_str(s: &str) -> Result<Self> {
        Ok(Value::Date(parse_date(s)?))
    }

    /// `true` if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints promoted to f64); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Integer view; truncates floats.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// Boolean view following SQL truthiness (NULL is `None`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            Value::Null => None,
            _ => None,
        }
    }

    /// SQL comparison. Returns `None` when either side is NULL or the types
    /// are incomparable.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            // Date vs Int allows comparing against raw day counts.
            (Value::Date(a), Value::Int(b)) => Some((*a as i64).cmp(b)),
            (Value::Int(a), Value::Date(b)) => Some(a.cmp(&(*b as i64))),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// SQL equality (NULL never equals anything).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.compare(other).map(|o| o == Ordering::Equal)
    }

    /// Addition, including `date + interval days`.
    pub fn add(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a + b)),
            (Value::Date(d), Value::Int(days)) => Ok(Value::Date(d + *days as i32)),
            (Value::Int(days), Value::Date(d)) => Ok(Value::Date(d + *days as i32)),
            (Value::Str(a), Value::Str(b)) => Ok(Value::str(format!("{a}{b}"))),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(Value::Float(a + b)),
                _ => err(format!("cannot add {self:?} and {other:?}")),
            },
        }
    }

    /// Subtraction, including `date - interval days`.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a - b)),
            (Value::Date(d), Value::Int(days)) => Ok(Value::Date(d - *days as i32)),
            (Value::Date(a), Value::Date(b)) => Ok(Value::Int((*a - *b) as i64)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(Value::Float(a - b)),
                _ => err(format!("cannot subtract {other:?} from {self:?}")),
            },
        }
    }

    /// Multiplication.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a * b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => Ok(Value::Float(a * b)),
                _ => err(format!("cannot multiply {self:?} and {other:?}")),
            },
        }
    }

    /// Division (always double precision, matching SQL decimal division).
    pub fn div(&self, other: &Value) -> Result<Value> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => {
                    if b == 0.0 {
                        err("division by zero")
                    } else {
                        Ok(Value::Float(a / b))
                    }
                }
                _ => err(format!("cannot divide {self:?} by {other:?}")),
            },
        }
    }

    /// Modulo on integers.
    pub fn modulo(&self, other: &Value) -> Result<Value> {
        match (self.as_i64(), other.as_i64()) {
            (Some(_), Some(0)) => err("modulo by zero"),
            (Some(a), Some(b)) => Ok(Value::Int(a % b)),
            _ => Ok(Value::Null),
        }
    }

    /// Unary minus.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            _ => err(format!("cannot negate {self:?}")),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equally: hash the
            // f64 bit pattern of the numeric value for both.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v:.4}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", format_date(*d)),
        }
    }
}

// ---------------------------------------------------------------------------
// Calendar arithmetic (proleptic Gregorian, days since 1970-01-01)
// ---------------------------------------------------------------------------

/// Convert a civil date to days since the Unix epoch
/// (Howard Hinnant's `days_from_civil` algorithm).
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i32 - 719_468
}

/// Convert days since the Unix epoch back to a civil `(year, month, day)`.
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u32;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = (mp + 2) % 12 + 1;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Parse `YYYY-MM-DD` into days since the epoch.
pub fn parse_date(s: &str) -> Result<i32> {
    let parts: Vec<&str> = s.trim().split('-').collect();
    if parts.len() != 3 {
        return err(format!("invalid date literal `{s}`"));
    }
    let y: i32 = parts[0]
        .parse()
        .map_err(|_| crate::error::EngineError::new(format!("bad year in `{s}`")))?;
    let m: u32 = parts[1]
        .parse()
        .map_err(|_| crate::error::EngineError::new(format!("bad month in `{s}`")))?;
    let d: u32 = parts[2]
        .parse()
        .map_err(|_| crate::error::EngineError::new(format!("bad day in `{s}`")))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return err(format!("date out of range `{s}`"));
    }
    Ok(days_from_civil(y, m, d))
}

/// Format days since the epoch as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Add a number of calendar months to a date, clamping the day of month.
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = civil_from_days(days);
    let total = y * 12 + (m as i32 - 1) + months;
    let ny = total.div_euclid(12);
    let nm = (total.rem_euclid(12) + 1) as u32;
    let max_day = days_in_month(ny, nm);
    days_from_civil(ny, nm, d.min(max_day))
}

fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip() {
        for s in [
            "1970-01-01",
            "1992-02-29",
            "1998-12-01",
            "2024-07-15",
            "1900-03-01",
        ] {
            let days = parse_date(s).unwrap();
            assert_eq!(format_date(days), s);
        }
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1970-01-02").unwrap(), 1);
    }

    #[test]
    fn add_months_handles_year_rollover_and_clamping() {
        let d = parse_date("1995-12-15").unwrap();
        assert_eq!(format_date(add_months(d, 1)), "1996-01-15");
        assert_eq!(format_date(add_months(d, 12)), "1996-12-15");
        let eom = parse_date("1996-01-31").unwrap();
        assert_eq!(format_date(add_months(eom, 1)), "1996-02-29");
        let eom = parse_date("1995-01-31").unwrap();
        assert_eq!(format_date(add_months(eom, 1)), "1995-02-28");
    }

    #[test]
    fn arithmetic_promotes_types() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(
            Value::Int(2).add(&Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Value::Float(10.0).div(&Value::Int(4)).unwrap(),
            Value::Float(2.5)
        );
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert_eq!(Value::Null.add(&Value::Int(1)).unwrap(), Value::Null);
        assert_eq!(Value::Int(1).mul(&Value::Null).unwrap(), Value::Null);
    }

    #[test]
    fn date_interval_arithmetic() {
        let d = Value::Date(parse_date("1998-12-01").unwrap());
        let moved = d.sub(&Value::Int(90)).unwrap();
        assert_eq!(moved, Value::Date(parse_date("1998-09-02").unwrap()));
    }

    #[test]
    fn comparisons_follow_sql_semantics() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Null.compare(&Value::Int(3)), None);
        assert_eq!(
            Value::str("abc").compare(&Value::str("abd")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn hash_is_consistent_with_eq_across_numeric_types() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(h(&Value::Int(3)), h(&Value::Float(3.0)));
    }

    #[test]
    fn string_concat_via_add() {
        assert_eq!(
            Value::str("ab").add(&Value::str("cd")).unwrap(),
            Value::str("abcd")
        );
    }
}

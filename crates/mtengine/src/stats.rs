//! Execution statistics used by tests and the benchmark harness to verify the
//! *analytic* claims of the paper (e.g. "aggregation distribution reduces the
//! number of conversion calls from 2·N to T+1") in addition to wall-clock
//! numbers.
//!
//! Since the tenant-partitioned storage layer landed, the counters also make
//! partition pruning observable: `rows_scanned` counts only the rows a scan
//! actually visited, while `partitions_pruned` counts the foreign-tenant
//! buckets it skipped without touching their rows.

use std::sync::atomic::{AtomicU64, Ordering};

/// Point-in-time snapshot of engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Rows read from base tables (after partition pruning).
    pub rows_scanned: u64,
    /// Partition buckets visited by base-table scans.
    pub partitions_scanned: u64,
    /// Partition buckets skipped entirely thanks to `ttid` scope predicates.
    pub partitions_pruned: u64,
    /// Base-table scans that fanned their buckets out to worker threads.
    pub parallel_scans: u64,
    /// Fixed-size row-range morsels dispatched to the worker pool. Every
    /// pooled scan (and pooled aggregation) splits its selected buckets into
    /// morsels of [`crate::EngineConfig::morsel_rows`] rows; this counts the
    /// morsels actually pulled by workers.
    pub morsels_dispatched: u64,
    /// Worker threads spawned by pooled scans, accumulated per scan (a scan
    /// running 3 workers adds 3). `morsels_dispatched / morsel_workers` is
    /// the average pull depth per worker.
    pub morsel_workers: u64,
    /// Partial `HashAggregate` states merged into a final aggregate: one per
    /// morsel whose partial groups were folded into the coordinator's state.
    /// Zero for scans without an aggregation pipeline (plain pooled scans
    /// merge row batches, not aggregate states).
    pub partial_agg_merges: u64,
    /// Rows whose scan predicates were evaluated column-at-a-time by the
    /// vectorized kernels (columnar buckets only).
    pub rows_vectorized: u64,
    /// Rows built into `SharedRow`s from columnar buckets: rows that
    /// qualified a vectorized scan, plus the one-time full-bucket builds of
    /// the repeated-scan row cache. Rows a selective scan filtered out
    /// column-at-a-time were never built at all — `rows_scanned /
    /// late_materialized` is the materialization reduction the `pr3`
    /// bench reports.
    pub late_materialized: u64,
    /// Rows processed through dictionary *code space*: per-predicate rows
    /// whose filter ran as a code-comparison kernel (the predicate resolved
    /// against the dictionary once), rows whose group keys resolved through
    /// per-bucket code memoization, and rows late-materialized with at least
    /// one dictionary-decoded column. An engagement counter — one row can
    /// count several times (once per code-space step it took).
    pub dict_kernel_rows: u64,
    /// Correlated sub-queries executed as unnested join plans: one per
    /// semi-/anti-/aggregate-join node executed (counted at execution time,
    /// so prepared-plan cache hits still report engagement). Zero when
    /// [`crate::EngineConfig::decorrelation`] is off or a query's
    /// sub-queries were not rewritable.
    pub subqueries_unnested: u64,
    /// Columns currently dictionary-encoded across all tables (a live gauge
    /// computed at snapshot time, not an accumulating counter: one per
    /// (table, column) pair with at least one dictionary-encoded bucket).
    pub dict_columns: u64,
    /// UDF invocations that executed the function body.
    pub udf_calls: u64,
    /// UDF invocations answered from the immutable-result cache.
    pub udf_cache_hits: u64,
    /// Statement executions served from the prepared-plan cache (the parse /
    /// scope-resolution / rewrite / planning front-end was skipped entirely).
    pub prepared_cache_hits: u64,
    /// Statement executions that had to run the full rewrite/plan front-end
    /// (first execution, or a catalog/privilege epoch change invalidated the
    /// cached plan).
    pub prepared_cache_misses: u64,
    /// Plans accepted by the static verifier ([`crate::verify`]) before
    /// execution. Zero when [`crate::EngineConfig::verify_plans`] is off —
    /// the `pr9_verify` bench reads this to prove the verifier actually
    /// engaged on the measured leg.
    pub plans_verified: u64,
    /// Multi-statement transactions published ([`crate::Engine::txn_publish`]).
    pub txn_commits: u64,
    /// Multi-statement transactions rolled back — explicit `ROLLBACK` plus
    /// commit failures undone via the undo log.
    pub txn_rollbacks: u64,
    /// WAL commit markers appended (one per logged transaction — implicit
    /// single-statement and explicit multi-statement alike). A gauge read
    /// from the WAL writer, *not* cleared by [`crate::Engine::reset_stats`];
    /// window with [`StatsSnapshot::delta_from`].
    pub wal_commits: u64,
    /// fsync (`sync_data`) calls issued by the WAL writer. With group commit
    /// on and concurrent committers, `wal_fsyncs / wal_commits` drops below
    /// one — the batching the `pr10_txn` bench measures. Same gauge
    /// semantics as [`StatsSnapshot::wal_commits`].
    pub wal_fsyncs: u64,
}

impl StatsSnapshot {
    /// Field-wise `self - before`, saturating at zero (a concurrent
    /// `reset_stats` may move counters backwards). Used to attribute the
    /// shared engine counters to one statement execution.
    pub fn delta_from(&self, before: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            rows_scanned: self.rows_scanned.saturating_sub(before.rows_scanned),
            partitions_scanned: self
                .partitions_scanned
                .saturating_sub(before.partitions_scanned),
            partitions_pruned: self
                .partitions_pruned
                .saturating_sub(before.partitions_pruned),
            parallel_scans: self.parallel_scans.saturating_sub(before.parallel_scans),
            morsels_dispatched: self
                .morsels_dispatched
                .saturating_sub(before.morsels_dispatched),
            morsel_workers: self.morsel_workers.saturating_sub(before.morsel_workers),
            partial_agg_merges: self
                .partial_agg_merges
                .saturating_sub(before.partial_agg_merges),
            rows_vectorized: self.rows_vectorized.saturating_sub(before.rows_vectorized),
            late_materialized: self
                .late_materialized
                .saturating_sub(before.late_materialized),
            dict_kernel_rows: self
                .dict_kernel_rows
                .saturating_sub(before.dict_kernel_rows),
            subqueries_unnested: self
                .subqueries_unnested
                .saturating_sub(before.subqueries_unnested),
            // A gauge, not a counter: the delta keeps the current value so
            // per-statement snapshots still report the live encoding state.
            dict_columns: self.dict_columns,
            udf_calls: self.udf_calls.saturating_sub(before.udf_calls),
            udf_cache_hits: self.udf_cache_hits.saturating_sub(before.udf_cache_hits),
            prepared_cache_hits: self
                .prepared_cache_hits
                .saturating_sub(before.prepared_cache_hits),
            prepared_cache_misses: self
                .prepared_cache_misses
                .saturating_sub(before.prepared_cache_misses),
            plans_verified: self.plans_verified.saturating_sub(before.plans_verified),
            txn_commits: self.txn_commits.saturating_sub(before.txn_commits),
            txn_rollbacks: self.txn_rollbacks.saturating_sub(before.txn_rollbacks),
            wal_commits: self.wal_commits.saturating_sub(before.wal_commits),
            wal_fsyncs: self.wal_fsyncs.saturating_sub(before.wal_fsyncs),
        }
    }
}

/// Internal atomic counters owned by the engine.
#[derive(Debug, Default)]
pub struct EngineCounters {
    rows_scanned: AtomicU64,
    partitions_scanned: AtomicU64,
    partitions_pruned: AtomicU64,
    parallel_scans: AtomicU64,
    morsels_dispatched: AtomicU64,
    morsel_workers: AtomicU64,
    partial_agg_merges: AtomicU64,
    rows_vectorized: AtomicU64,
    late_materialized: AtomicU64,
    dict_kernel_rows: AtomicU64,
    subqueries_unnested: AtomicU64,
    prepared_cache_hits: AtomicU64,
    prepared_cache_misses: AtomicU64,
    plans_verified: AtomicU64,
    txn_commits: AtomicU64,
    txn_rollbacks: AtomicU64,
}

impl EngineCounters {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to the scanned-row counter.
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one base-table scan: buckets visited and buckets pruned.
    pub fn add_partitions(&self, scanned: u64, pruned: u64) {
        self.partitions_scanned
            .fetch_add(scanned, Ordering::Relaxed);
        self.partitions_pruned.fetch_add(pruned, Ordering::Relaxed);
    }

    /// Current scanned-row count.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Current visited-bucket count.
    pub fn partitions_scanned(&self) -> u64 {
        self.partitions_scanned.load(Ordering::Relaxed)
    }

    /// Current pruned-bucket count.
    pub fn partitions_pruned(&self) -> u64 {
        self.partitions_pruned.load(Ordering::Relaxed)
    }

    /// Record one scan executed on the parallel fast path.
    pub fn add_parallel_scan(&self) {
        self.parallel_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Current parallel-scan count.
    pub fn parallel_scans(&self) -> u64 {
        self.parallel_scans.load(Ordering::Relaxed)
    }

    /// Record one pooled scan's morsel accounting: morsels dispatched and
    /// workers spawned.
    pub fn add_morsel_scan(&self, morsels: u64, workers: u64) {
        self.morsels_dispatched
            .fetch_add(morsels, Ordering::Relaxed);
        self.morsel_workers.fetch_add(workers, Ordering::Relaxed);
    }

    /// Current dispatched-morsel count.
    pub fn morsels_dispatched(&self) -> u64 {
        self.morsels_dispatched.load(Ordering::Relaxed)
    }

    /// Current accumulated worker count.
    pub fn morsel_workers(&self) -> u64 {
        self.morsel_workers.load(Ordering::Relaxed)
    }

    /// Record partial aggregate states merged into a final aggregate.
    pub fn add_partial_agg_merges(&self, n: u64) {
        self.partial_agg_merges.fetch_add(n, Ordering::Relaxed);
    }

    /// Current partial-aggregate merge count.
    pub fn partial_agg_merges(&self) -> u64 {
        self.partial_agg_merges.load(Ordering::Relaxed)
    }

    /// Record one scan's vectorized-evaluation accounting: rows covered by
    /// column kernels and rows late-materialized after qualifying.
    pub fn add_vectorized(&self, rows: u64, materialized: u64) {
        self.rows_vectorized.fetch_add(rows, Ordering::Relaxed);
        self.late_materialized
            .fetch_add(materialized, Ordering::Relaxed);
    }

    /// Current vectorized-row count.
    pub fn rows_vectorized(&self) -> u64 {
        self.rows_vectorized.load(Ordering::Relaxed)
    }

    /// Current late-materialized row count.
    pub fn late_materialized(&self) -> u64 {
        self.late_materialized.load(Ordering::Relaxed)
    }

    /// Record rows processed through dictionary code space.
    pub fn add_dict_kernel_rows(&self, rows: u64) {
        self.dict_kernel_rows.fetch_add(rows, Ordering::Relaxed);
    }

    /// Current dictionary code-space row count.
    pub fn dict_kernel_rows(&self) -> u64 {
        self.dict_kernel_rows.load(Ordering::Relaxed)
    }

    /// Record correlated sub-queries executed as unnested join plans.
    pub fn add_subqueries_unnested(&self, n: u64) {
        self.subqueries_unnested.fetch_add(n, Ordering::Relaxed);
    }

    /// Current unnested sub-query count.
    pub fn subqueries_unnested(&self) -> u64 {
        self.subqueries_unnested.load(Ordering::Relaxed)
    }

    /// Record one prepared-plan cache lookup outcome.
    pub fn add_prepared_cache(&self, hit: bool) {
        if hit {
            self.prepared_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.prepared_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current prepared-plan cache hit count.
    pub fn prepared_cache_hits(&self) -> u64 {
        self.prepared_cache_hits.load(Ordering::Relaxed)
    }

    /// Current prepared-plan cache miss count.
    pub fn prepared_cache_misses(&self) -> u64 {
        self.prepared_cache_misses.load(Ordering::Relaxed)
    }

    /// Record plans accepted by the static verifier.
    pub fn add_plans_verified(&self, n: u64) {
        self.plans_verified.fetch_add(n, Ordering::Relaxed);
    }

    /// Current verified-plan count.
    pub fn plans_verified(&self) -> u64 {
        self.plans_verified.load(Ordering::Relaxed)
    }

    /// Record one transaction published.
    pub fn add_txn_commit(&self) {
        self.txn_commits.fetch_add(1, Ordering::Relaxed);
    }

    /// Current published-transaction count.
    pub fn txn_commits(&self) -> u64 {
        self.txn_commits.load(Ordering::Relaxed)
    }

    /// Record one transaction rolled back.
    pub fn add_txn_rollback(&self) {
        self.txn_rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Current rolled-back-transaction count.
    pub fn txn_rollbacks(&self) -> u64 {
        self.txn_rollbacks.load(Ordering::Relaxed)
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.partitions_scanned.store(0, Ordering::Relaxed);
        self.partitions_pruned.store(0, Ordering::Relaxed);
        self.parallel_scans.store(0, Ordering::Relaxed);
        self.morsels_dispatched.store(0, Ordering::Relaxed);
        self.morsel_workers.store(0, Ordering::Relaxed);
        self.partial_agg_merges.store(0, Ordering::Relaxed);
        self.rows_vectorized.store(0, Ordering::Relaxed);
        self.late_materialized.store(0, Ordering::Relaxed);
        self.dict_kernel_rows.store(0, Ordering::Relaxed);
        self.subqueries_unnested.store(0, Ordering::Relaxed);
        self.prepared_cache_hits.store(0, Ordering::Relaxed);
        self.prepared_cache_misses.store(0, Ordering::Relaxed);
        self.plans_verified.store(0, Ordering::Relaxed);
        self.txn_commits.store(0, Ordering::Relaxed);
        self.txn_rollbacks.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = EngineCounters::new();
        c.add_rows_scanned(10);
        c.add_rows_scanned(5);
        c.add_partitions(1, 9);
        c.add_partitions(2, 8);
        assert_eq!(c.rows_scanned(), 15);
        assert_eq!(c.partitions_scanned(), 3);
        assert_eq!(c.partitions_pruned(), 17);
        c.reset();
        assert_eq!(c.rows_scanned(), 0);
        assert_eq!(c.partitions_scanned(), 0);
        assert_eq!(c.partitions_pruned(), 0);
    }
}

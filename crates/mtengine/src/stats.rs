//! Execution statistics used by tests and the benchmark harness to verify the
//! *analytic* claims of the paper (e.g. "aggregation distribution reduces the
//! number of conversion calls from 2·N to T+1") in addition to wall-clock
//! numbers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Point-in-time snapshot of engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// UDF invocations that executed the function body.
    pub udf_calls: u64,
    /// UDF invocations answered from the immutable-result cache.
    pub udf_cache_hits: u64,
}

/// Internal atomic counters owned by the engine.
#[derive(Debug, Default)]
pub struct EngineCounters {
    rows_scanned: AtomicU64,
}

impl EngineCounters {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add to the scanned-row counter.
    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    /// Current scanned-row count.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.rows_scanned.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = EngineCounters::new();
        c.add_rows_scanned(10);
        c.add_rows_scanned(5);
        assert_eq!(c.rows_scanned(), 15);
        c.reset();
        assert_eq!(c.rows_scanned(), 0);
    }
}

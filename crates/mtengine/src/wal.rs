//! Write-ahead log: durable, checksummed mutation records with crash
//! recovery.
//!
//! Every engine mutation (CREATE/DROP TABLE, INSERT, the full-rewrite form
//! of UPDATE/DELETE, view DDL, bulk loads) and every catalog mutation the
//! middleware forwards ([`MetaOp`]) is appended to a single log file as one
//! *transaction*: the mutation's records followed by a commit marker, then
//! an `fsync`. The engine applies the mutation in memory only after the
//! commit is durable, so the in-memory state always equals the log's
//! committed prefix — a crash at any instant loses at most the in-flight
//! statement.
//!
//! # On-disk format
//!
//! ```text
//! file   := magic ("MTWALv01") frame*
//! frame  := len:u32  payload  crc:u32      (crc = CRC-32/IEEE of payload)
//! payload:= lsn:u64  kind:u8  body
//! ```
//!
//! All integers are little-endian. LSNs increase by one per frame across
//! the whole file. [`recover`] replays committed transactions in order and
//! stops at the first torn, short or checksum-failing frame — everything
//! after the last durable commit marker is discarded (and truncated away on
//! the next [`Wal::open_at`]), which is exactly the committed-prefix
//! contract the crash harness in `tests/wal_recovery.rs` pins.
//!
//! # Crash-fault injection
//!
//! [`FailpointClock`] is a deterministic op counter shared with the test
//! harness: the N-th appended frame can be made to crash as a torn write
//! (half the frame reaches the file), a pre-fsync loss (the frame is
//! written but the "OS cache" is dropped back to the last durable offset)
//! or a bit flip (the frame is committed with one payload bit inverted).
//! After a simulated crash the writer is permanently dead and every further
//! append fails with a [`EngineErrorKind::Poisoned`] error — the engine
//! refuses to mutate, mirroring a process that must restart to recover.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::error::{EngineError, EngineErrorKind, Result};
use crate::table::Row;
use crate::value::Value;

/// Magic bytes opening every WAL file (8 bytes, includes the format version).
const MAGIC: &[u8; 8] = b"MTWALv01";

/// Frames larger than this are rejected as corrupt before allocating.
const MAX_FRAME: u32 = 1 << 30;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32/IEEE checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One logged engine mutation (or commit marker). UPDATE and DELETE are
/// logged as [`Record::ReplaceRows`] — the engine implements both as a full
/// row-set rewrite, so the log carries the complete new row set rather than
/// a diff. Physical layout flags (columnar, dictionary) are deliberately
/// *not* logged: recovery re-encodes replayed rows under the recovering
/// engine's `EngineConfig`, leaning on the PR 3/PR 5 guarantee that layout
/// never changes results.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// `CREATE TABLE` as the engine sees it (name + column names).
    CreateTable { name: String, columns: Vec<String> },
    /// Partition-column declaration (the invisible `ttid`).
    SetPartition { table: String, column: String },
    /// Bulk or statement-level INSERT.
    InsertRows { table: String, rows: Vec<Row> },
    /// Full row-set rewrite (UPDATE / DELETE).
    ReplaceRows { table: String, rows: Vec<Row> },
    /// `DROP TABLE`.
    DropTable { name: String },
    /// `CREATE VIEW`, with the definition as SQL text (reparsed on replay).
    CreateView { name: String, sql: String },
    /// `DROP VIEW`.
    DropView { name: String },
    /// A catalog mutation forwarded by the middleware (opaque to the
    /// engine; replayed into `mtcatalog` by `MtBase::open_durable`).
    Meta(MetaOp),
    /// Transaction commit marker; everything since the previous marker
    /// becomes durable atomically.
    Commit,
}

/// Catalog (DDL/DCL) mutations logged on behalf of the middleware. The
/// engine stores these verbatim during recovery ([`crate::Engine::take_recovered_meta`]);
/// it never interprets them.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaOp {
    /// `CREATE TABLE` DDL text, reparsed and re-registered on recovery
    /// (carries MTBase annotations — COMPARABLE/CONVERTIBLE/SPECIFIC — the
    /// engine-side record cannot express).
    CreateTableDdl { sql: String },
    /// Tenant registration.
    RegisterTenant { tenant: i64 },
    /// `GRANT` of `privileges` (bitmask, see [`MetaOp::privilege_bit`]) on
    /// `table` from `owner` to `grantee`.
    Grant {
        owner: i64,
        grantee: i64,
        table: String,
        privileges: u8,
    },
    /// `REVOKE`, mirroring [`MetaOp::Grant`].
    Revoke {
        owner: i64,
        grantee: i64,
        table: String,
        privileges: u8,
    },
    /// Catalog-side `DROP TABLE` (the engine-side drop is its own record).
    DropTable { name: String },
}

impl MetaOp {
    /// Stable bit assignment for privilege bitmasks (READ=1, INSERT=2,
    /// UPDATE=4, DELETE=8, GRANT=16, REVOKE=32). Lives here so the encoding
    /// is part of the WAL format, not middleware convention.
    pub fn privilege_bit(index: usize) -> u8 {
        1u8 << index
    }
}

const KIND_CREATE_TABLE: u8 = 1;
const KIND_SET_PARTITION: u8 = 2;
const KIND_INSERT_ROWS: u8 = 3;
const KIND_REPLACE_ROWS: u8 = 4;
const KIND_DROP_TABLE: u8 = 5;
const KIND_CREATE_VIEW: u8 = 6;
const KIND_DROP_VIEW: u8 = 7;
const KIND_META: u8 = 8;
const KIND_COMMIT: u8 = 9;

const META_CREATE_DDL: u8 = 1;
const META_TENANT: u8 = 2;
const META_GRANT: u8 = 3;
const META_REVOKE: u8 = 4;
const META_DROP_TABLE: u8 = 5;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, x: i64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;
const VAL_DATE: u8 = 5;

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(VAL_NULL),
        Value::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(*b as u8);
        }
        Value::Int(x) => {
            out.push(VAL_INT);
            put_i64(out, *x);
        }
        Value::Float(x) => {
            out.push(VAL_FLOAT);
            put_u64(out, x.to_bits());
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            put_str(out, s);
        }
        Value::Date(d) => {
            out.push(VAL_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn put_rows(out: &mut Vec<u8>, rows: &[Row]) {
    put_u32(out, rows.len() as u32);
    for row in rows {
        put_u32(out, row.len() as u32);
        for v in row {
            put_value(out, v);
        }
    }
}

fn encode_body(record: &Record, out: &mut Vec<u8>) -> u8 {
    match record {
        Record::CreateTable { name, columns } => {
            put_str(out, name);
            put_u32(out, columns.len() as u32);
            for c in columns {
                put_str(out, c);
            }
            KIND_CREATE_TABLE
        }
        Record::SetPartition { table, column } => {
            put_str(out, table);
            put_str(out, column);
            KIND_SET_PARTITION
        }
        Record::InsertRows { table, rows } => {
            put_str(out, table);
            put_rows(out, rows);
            KIND_INSERT_ROWS
        }
        Record::ReplaceRows { table, rows } => {
            put_str(out, table);
            put_rows(out, rows);
            KIND_REPLACE_ROWS
        }
        Record::DropTable { name } => {
            put_str(out, name);
            KIND_DROP_TABLE
        }
        Record::CreateView { name, sql } => {
            put_str(out, name);
            put_str(out, sql);
            KIND_CREATE_VIEW
        }
        Record::DropView { name } => {
            put_str(out, name);
            KIND_DROP_VIEW
        }
        Record::Meta(op) => {
            match op {
                MetaOp::CreateTableDdl { sql } => {
                    out.push(META_CREATE_DDL);
                    put_str(out, sql);
                }
                MetaOp::RegisterTenant { tenant } => {
                    out.push(META_TENANT);
                    put_i64(out, *tenant);
                }
                MetaOp::Grant {
                    owner,
                    grantee,
                    table,
                    privileges,
                } => {
                    out.push(META_GRANT);
                    put_i64(out, *owner);
                    put_i64(out, *grantee);
                    put_str(out, table);
                    out.push(*privileges);
                }
                MetaOp::Revoke {
                    owner,
                    grantee,
                    table,
                    privileges,
                } => {
                    out.push(META_REVOKE);
                    put_i64(out, *owner);
                    put_i64(out, *grantee);
                    put_str(out, table);
                    out.push(*privileges);
                }
                MetaOp::DropTable { name } => {
                    out.push(META_DROP_TABLE);
                    put_str(out, name);
                }
            }
            KIND_META
        }
        Record::Commit => KIND_COMMIT,
    }
}

/// Encode one frame: `[len][lsn][kind][body][crc]`.
fn encode_frame(lsn: u64, record: &Record) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    put_u64(&mut payload, lsn);
    payload.push(0); // kind placeholder
    let kind_at = payload.len() - 1;
    let kind = encode_body(record, &mut payload);
    payload[kind_at] = kind;

    let mut frame = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut frame, payload.len() as u32);
    frame.extend_from_slice(&payload);
    put_u32(&mut frame, crc32(&payload));
    frame
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Buf<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Buf<'a> {
    fn short<T>(&self, what: &str) -> Result<T> {
        Err(EngineError::with_kind(
            EngineErrorKind::ShortRead,
            format!("WAL record ended while reading {what}"),
        ))
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.data.len() - self.pos < n {
            return self.short(what);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self, what: &str) -> Result<i32> {
        let b = self.take(4, what)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(self.u64(what)? as i64)
    }

    fn str(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| {
            EngineError::with_kind(
                EngineErrorKind::Corrupt,
                format!("WAL {what} is not valid UTF-8"),
            )
        })
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8("value tag")? {
            VAL_NULL => Value::Null,
            VAL_BOOL => Value::Bool(self.u8("bool value")? != 0),
            VAL_INT => Value::Int(self.i64("int value")?),
            VAL_FLOAT => Value::Float(f64::from_bits(self.u64("float value")?)),
            VAL_STR => Value::str(self.str("string value")?),
            VAL_DATE => Value::Date(self.i32("date value")?),
            tag => {
                return Err(EngineError::with_kind(
                    EngineErrorKind::Corrupt,
                    format!("unknown WAL value tag {tag}"),
                ))
            }
        })
    }

    fn rows(&mut self) -> Result<Vec<Row>> {
        let n = self.u32("row count")? as usize;
        let mut rows = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let width = self.u32("row arity")? as usize;
            let mut row = Vec::with_capacity(width.min(1 << 16));
            for _ in 0..width {
                row.push(self.value()?);
            }
            rows.push(row);
        }
        Ok(rows)
    }
}

fn decode_payload(payload: &[u8]) -> Result<(u64, Record)> {
    let mut buf = Buf {
        data: payload,
        pos: 0,
    };
    let lsn = buf.u64("lsn")?;
    let kind = buf.u8("record kind")?;
    let record = match kind {
        KIND_CREATE_TABLE => {
            let name = buf.str("table name")?;
            let n = buf.u32("column count")? as usize;
            let mut columns = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                columns.push(buf.str("column name")?);
            }
            Record::CreateTable { name, columns }
        }
        KIND_SET_PARTITION => Record::SetPartition {
            table: buf.str("table name")?,
            column: buf.str("partition column")?,
        },
        KIND_INSERT_ROWS => Record::InsertRows {
            table: buf.str("table name")?,
            rows: buf.rows()?,
        },
        KIND_REPLACE_ROWS => Record::ReplaceRows {
            table: buf.str("table name")?,
            rows: buf.rows()?,
        },
        KIND_DROP_TABLE => Record::DropTable {
            name: buf.str("table name")?,
        },
        KIND_CREATE_VIEW => Record::CreateView {
            name: buf.str("view name")?,
            sql: buf.str("view definition")?,
        },
        KIND_DROP_VIEW => Record::DropView {
            name: buf.str("view name")?,
        },
        KIND_META => {
            let tag = buf.u8("meta tag")?;
            let op = match tag {
                META_CREATE_DDL => MetaOp::CreateTableDdl {
                    sql: buf.str("meta DDL")?,
                },
                META_TENANT => MetaOp::RegisterTenant {
                    tenant: buf.i64("tenant id")?,
                },
                META_GRANT => MetaOp::Grant {
                    owner: buf.i64("grant owner")?,
                    grantee: buf.i64("grant grantee")?,
                    table: buf.str("grant table")?,
                    privileges: buf.u8("grant privileges")?,
                },
                META_REVOKE => MetaOp::Revoke {
                    owner: buf.i64("revoke owner")?,
                    grantee: buf.i64("revoke grantee")?,
                    table: buf.str("revoke table")?,
                    privileges: buf.u8("revoke privileges")?,
                },
                META_DROP_TABLE => MetaOp::DropTable {
                    name: buf.str("meta table name")?,
                },
                other => {
                    return Err(EngineError::with_kind(
                        EngineErrorKind::Corrupt,
                        format!("unknown WAL meta tag {other}"),
                    ))
                }
            };
            Record::Meta(op)
        }
        KIND_COMMIT => Record::Commit,
        other => {
            return Err(EngineError::with_kind(
                EngineErrorKind::Corrupt,
                format!("unknown WAL record kind {other}"),
            ))
        }
    };
    if buf.pos != payload.len() {
        return Err(EngineError::with_kind(
            EngineErrorKind::Corrupt,
            "WAL record has trailing bytes".to_string(),
        ));
    }
    Ok((lsn, record))
}

/// Decode the frame starting at `pos`. `Ok(None)` means a clean end of
/// file; any torn, short or checksum-failing frame is an error (recovery
/// stops there).
fn read_frame(data: &[u8], pos: usize) -> Result<Option<(usize, u64, Record)>> {
    if pos == data.len() {
        return Ok(None);
    }
    if data.len() - pos < 4 {
        return Err(EngineError::with_kind(
            EngineErrorKind::ShortRead,
            "WAL ends inside a frame length prefix",
        ));
    }
    let len = u32::from_le_bytes([data[pos], data[pos + 1], data[pos + 2], data[pos + 3]]);
    if len == 0 || len > MAX_FRAME {
        return Err(EngineError::with_kind(
            EngineErrorKind::Corrupt,
            format!("implausible WAL frame length {len}"),
        ));
    }
    let body_start = pos + 4;
    let body_end = body_start + len as usize;
    let frame_end = body_end + 4;
    if frame_end > data.len() {
        return Err(EngineError::with_kind(
            EngineErrorKind::ShortRead,
            format!(
                "torn WAL frame: {} bytes promised, {} available",
                len + 4,
                data.len() - body_start
            ),
        ));
    }
    let payload = &data[body_start..body_end];
    let stored_crc = u32::from_le_bytes([
        data[body_end],
        data[body_end + 1],
        data[body_end + 2],
        data[body_end + 3],
    ]);
    if crc32(payload) != stored_crc {
        return Err(EngineError::with_kind(
            EngineErrorKind::Corrupt,
            "WAL frame failed its checksum",
        ));
    }
    let (lsn, record) = decode_payload(payload)?;
    Ok(Some((frame_end, lsn, record)))
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// The result of scanning a WAL file: the committed records in log order,
/// the last committed LSN, and the byte offset of the end of the committed
/// prefix (everything past it is untrusted and truncated on reopen).
#[derive(Debug, Default)]
pub struct Recovery {
    /// Committed records, flattened in commit order (commit markers and
    /// uncommitted tails excluded).
    pub records: Vec<Record>,
    /// The LSN of the last commit marker (0 when the log is empty).
    pub last_lsn: u64,
    /// End of the committed prefix in bytes (0 for a missing file).
    pub valid_len: u64,
}

/// Scan a WAL file and return its committed prefix. A missing file is an
/// empty log. A present file with a bad header is a hard
/// [`Corrupt`](EngineErrorKind::Corrupt) error — recovery never silently
/// discards a whole log. Torn or corrupt frames *after* the header end the
/// committed prefix quietly: that is the expected shape of a crash.
pub fn recover(path: &Path) -> Result<Recovery> {
    if !path.exists() {
        return Ok(Recovery::default());
    }
    let data = std::fs::read(path)?;
    if data.is_empty() {
        return Ok(Recovery::default());
    }
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(EngineError::with_kind(
            EngineErrorKind::Corrupt,
            format!("not a WAL file: bad magic in {}", path.display()),
        ));
    }
    let mut pos = MAGIC.len();
    let mut recovery = Recovery {
        valid_len: MAGIC.len() as u64,
        ..Recovery::default()
    };
    let mut pending: Vec<Record> = Vec::new();
    let mut prev_lsn = 0u64;
    loop {
        match read_frame(&data, pos) {
            Ok(None) => break,
            // A torn, short or corrupt frame ends the trusted region; the
            // pending (uncommitted) transaction is discarded.
            Err(_) => break,
            Ok(Some((next, lsn, record))) => {
                if lsn <= prev_lsn {
                    // LSNs must strictly increase; a repeat means the tail
                    // was overwritten by a different history. Stop trusting.
                    break;
                }
                prev_lsn = lsn;
                pos = next;
                match record {
                    Record::Commit => {
                        recovery.records.append(&mut pending);
                        recovery.last_lsn = lsn;
                        recovery.valid_len = pos as u64;
                    }
                    other => pending.push(other),
                }
            }
        }
    }
    Ok(recovery)
}

// ---------------------------------------------------------------------------
// Failpoints
// ---------------------------------------------------------------------------

/// How an injected crash corrupts the log at the chosen op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// Only the first half of the frame reaches the file.
    TornWrite,
    /// The frame is written but never synced; the "OS cache" is dropped
    /// back to the last durable offset.
    PreFsyncLoss,
    /// One payload bit is inverted; the transaction still commits and
    /// syncs, so recovery must catch it by checksum.
    BitFlip,
}

impl CrashMode {
    /// Parse the fault-mode names used by the `WAL_FAULT_MODE` environment
    /// variable (CI shards the crash sweep across a mode matrix). Unknown
    /// names are an error — a typo must abort the harness, not silently run
    /// the wrong sweep.
    pub fn parse(s: &str) -> std::result::Result<CrashMode, String> {
        match s {
            "torn-write" => Ok(CrashMode::TornWrite),
            "pre-fsync-loss" => Ok(CrashMode::PreFsyncLoss),
            "bit-flip" => Ok(CrashMode::BitFlip),
            other => Err(format!(
                "unknown WAL_FAULT_MODE `{other}` (expected `torn-write`, `pre-fsync-loss` or `bit-flip`)"
            )),
        }
    }
}

/// Deterministic crash-fault injection hook for the WAL writer: counts
/// appended frames and fires once when the count reaches `crash_at`.
/// Create with [`FailpointClock::crash_at`] to inject, or
/// [`FailpointClock::observe`] to just count ops (the harness runs the
/// workload once under an observer to enumerate every crash point, then
/// sweeps them).
#[derive(Debug)]
pub struct FailpointClock {
    counter: AtomicU64,
    crash_at: u64,
    mode: CrashMode,
    fired: AtomicBool,
}

impl FailpointClock {
    /// A clock that crashes the writer at the `crash_at`-th appended frame
    /// (1-based) with the given mode.
    pub fn crash_at(crash_at: u64, mode: CrashMode) -> Arc<Self> {
        Arc::new(FailpointClock {
            counter: AtomicU64::new(0),
            crash_at,
            mode,
            fired: AtomicBool::new(false),
        })
    }

    /// A clock that never fires — used to count the frames a workload
    /// appends, which enumerates the crash points to sweep.
    pub fn observe() -> Arc<Self> {
        Self::crash_at(u64::MAX, CrashMode::TornWrite)
    }

    /// Total frames appended so far.
    pub fn ops(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// Did the crash point fire?
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    fn tick(&self) -> Option<CrashMode> {
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if n == self.crash_at {
            self.fired.store(true, Ordering::SeqCst);
            Some(self.mode)
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// The append side of the WAL. One transaction per [`Wal::commit`] call:
/// the records, a commit marker, then `fsync`. After a simulated crash the
/// writer is permanently dead (every call fails with a
/// [`Poisoned`](EngineErrorKind::Poisoned) error).
pub struct Wal {
    file: File,
    next_lsn: u64,
    /// Current write offset.
    len: u64,
    /// Offset known durable (through the last successful sync).
    synced_len: u64,
    clock: Option<Arc<FailpointClock>>,
    dead: bool,
}

impl Wal {
    /// Open (or create) the log for appending after [`recover`]: the file
    /// is truncated to the committed prefix (discarding any untrusted
    /// tail) and LSNs continue after the last committed one.
    pub fn open_at(path: &Path, recovery: &Recovery) -> Result<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut len = recovery.valid_len;
        if len < MAGIC.len() as u64 {
            file.set_len(0)?;
            (&file).write_all(MAGIC)?;
            len = MAGIC.len() as u64;
        } else {
            file.set_len(len)?;
        }
        file.sync_data()?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::Start(len))?;
        Ok(Wal {
            file,
            next_lsn: recovery.last_lsn + 1,
            len,
            synced_len: len,
            clock: None,
            dead: false,
        })
    }

    /// Install a crash-fault injection clock (tests only in practice; a
    /// `None`-free production writer pays one branch per append).
    pub fn set_failpoint_clock(&mut self, clock: Arc<FailpointClock>) {
        self.clock = Some(clock);
    }

    /// The LSN the next appended frame will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The LSN of the most recently appended frame (0 if none yet).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    fn dead_err<T>(&self) -> Result<T> {
        Err(EngineError::with_kind(
            EngineErrorKind::Poisoned,
            "WAL writer is dead after a simulated crash; reopen to recover",
        ))
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<()> {
        self.file.write_all(bytes)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Append `records` plus a commit marker and make them durable.
    /// Returns the commit LSN. On any error (real I/O or injected crash)
    /// nothing is considered committed and the caller must not apply the
    /// mutation in memory.
    pub fn commit(&mut self, records: &[Record]) -> Result<u64> {
        if self.dead {
            return self.dead_err();
        }
        let mut poison_after_sync = false;
        let commit = [Record::Commit];
        for record in records.iter().chain(commit.iter()) {
            let frame = encode_frame(self.next_lsn, record);
            match self.clock.as_ref().and_then(|c| c.tick()) {
                None => self.write_all(&frame)?,
                Some(CrashMode::TornWrite) => {
                    // Half the frame reaches the file; the process "dies".
                    let torn = frame.len() / 2;
                    self.write_all(&frame[..torn])?;
                    self.dead = true;
                    return Err(EngineError::with_kind(
                        EngineErrorKind::Poisoned,
                        "simulated crash: torn WAL write",
                    ));
                }
                Some(CrashMode::PreFsyncLoss) => {
                    // The frame is written but the sync never happens; model
                    // the lost OS cache by dropping back to the durable
                    // offset.
                    self.write_all(&frame)?;
                    self.file.set_len(self.synced_len)?;
                    self.len = self.synced_len;
                    use std::io::Seek;
                    self.file.seek(std::io::SeekFrom::Start(self.len))?;
                    self.dead = true;
                    return Err(EngineError::with_kind(
                        EngineErrorKind::Poisoned,
                        "simulated crash: WAL tail lost before fsync",
                    ));
                }
                Some(CrashMode::BitFlip) => {
                    // Flip one payload bit but let the transaction commit:
                    // recovery must catch this by checksum, not framing.
                    let mut flipped = frame.clone();
                    let at = 4 + (flipped.len() - 8) / 2;
                    flipped[at] ^= 0x10;
                    self.write_all(&flipped)?;
                    poison_after_sync = true;
                }
            }
            self.next_lsn += 1;
        }
        self.file.sync_data()?;
        self.synced_len = self.len;
        if poison_after_sync {
            self.dead = true;
            return Err(EngineError::with_kind(
                EngineErrorKind::Poisoned,
                "simulated crash: WAL frame committed with a flipped bit",
            ));
        }
        Ok(self.next_lsn - 1)
    }
}

// ---------------------------------------------------------------------------
// Group-commit writer
// ---------------------------------------------------------------------------

/// Shared state of the group-commit writer, guarded by [`WalHandle::state`].
struct WalState {
    /// The log file, shared so a flush leader can `sync_data` outside the
    /// mutex while other writers keep appending.
    file: Arc<File>,
    next_lsn: u64,
    /// Current write offset.
    len: u64,
    /// Offset known durable (through the last successful sync).
    synced_len: u64,
    /// LSN of the last frame known durable.
    synced_lsn: u64,
    /// A flush leader is currently running `sync_data` outside the lock.
    flushing: bool,
    /// Commit markers appended but not yet covered by a successful sync;
    /// moved onto the durable [`WalHandle::commits`] counter by the flush
    /// that covers them (a transaction whose flush fails rolls back and is
    /// never counted).
    pending_commits: u64,
    dead: bool,
    /// An injected bit flip was appended; the next successful sync must
    /// poison the writer (the frame is durable but corrupt).
    poison_at_sync: bool,
    clock: Option<Arc<FailpointClock>>,
}

/// Concurrent append side of the WAL with group commit: [`WalHandle::append_txn`]
/// appends a transaction's frames plus a commit marker under a short
/// critical section, and [`WalHandle::wait_durable`] parks the committer
/// until a flush covers its commit LSN. Whichever committer finds no flush
/// in flight becomes the leader and syncs *outside* the mutex — every
/// transaction appended meanwhile rides the same `fsync`, so under
/// concurrency the fsyncs-per-commit ratio drops below one.
///
/// With `group_commit` disabled the handle degrades to the PR 6 behaviour:
/// each append syncs inline under the lock, one fsync per commit.
pub struct WalHandle {
    state: Mutex<WalState>,
    /// Signalled after every flush completes (or the writer dies).
    flushed: Condvar,
    fsyncs: AtomicU64,
    commits: AtomicU64,
    group_commit: bool,
}

impl WalHandle {
    /// Open (or create) the log for appending after [`recover`], mirroring
    /// [`Wal::open_at`]: truncate to the committed prefix and continue LSNs
    /// after the last committed one.
    pub fn open_at(path: &Path, recovery: &Recovery, group_commit: bool) -> Result<Arc<WalHandle>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut len = recovery.valid_len;
        if len < MAGIC.len() as u64 {
            file.set_len(0)?;
            (&file).write_all(MAGIC)?;
            len = MAGIC.len() as u64;
        } else {
            file.set_len(len)?;
        }
        file.sync_data()?;
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::Start(len))?;
        Ok(Arc::new(WalHandle {
            state: Mutex::new(WalState {
                file: Arc::new(file),
                next_lsn: recovery.last_lsn + 1,
                len,
                synced_len: len,
                synced_lsn: recovery.last_lsn,
                flushing: false,
                pending_commits: 0,
                dead: false,
                poison_at_sync: false,
                clock: None,
            }),
            flushed: Condvar::new(),
            fsyncs: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            group_commit,
        }))
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, WalState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Install a crash-fault injection clock (tests only in practice).
    pub fn set_failpoint_clock(&self, clock: Arc<FailpointClock>) {
        self.lock_state().clock = Some(clock);
    }

    /// The LSN of the most recently appended frame (0 if none yet).
    pub fn last_lsn(&self) -> u64 {
        self.lock_state().next_lsn - 1
    }

    /// Total `sync_data` calls issued so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::SeqCst)
    }

    /// Total *durable* transactions so far: commit markers covered by a
    /// successful sync. A transaction whose covering flush fails (and
    /// therefore rolls back) is never counted, so the fsyncs-per-commit
    /// ratio reported by the stats is computed over real commits only.
    pub fn commits(&self) -> u64 {
        self.commits.load(Ordering::SeqCst)
    }

    fn dead_err<T>() -> Result<T> {
        Err(EngineError::with_kind(
            EngineErrorKind::Poisoned,
            "WAL writer is dead after a simulated crash; reopen to recover",
        ))
    }

    fn write_state(state: &mut WalState, bytes: &[u8]) -> Result<()> {
        if let Err(e) = (&*state.file).write_all(bytes) {
            // A real write error leaves the tail in an unknown state; the
            // writer must die so nothing applies on top of it.
            state.dead = true;
            return Err(e.into());
        }
        state.len += bytes.len() as u64;
        Ok(())
    }

    /// Append `records` plus a commit marker under the state lock; the
    /// frames are *not* durable yet (in group-commit mode) until a
    /// [`WalHandle::wait_durable`] covering the returned commit LSN
    /// succeeds. Failpoint semantics are identical to [`Wal::commit`].
    pub fn append_txn(&self, records: &[Record]) -> Result<u64> {
        let mut state = self.lock_state();
        if state.dead {
            return Self::dead_err();
        }
        let commit = [Record::Commit];
        let result = self.append_locked(&mut state, records.iter().chain(commit.iter()));
        if state.dead {
            self.flushed.notify_all();
        }
        let lsn = result?;
        // Appended, not durable: the commit is counted by the sync that
        // covers it (inline below in non-group mode, the group-commit
        // leader's flush otherwise).
        state.pending_commits += 1;
        if !self.group_commit {
            // PR 6 behaviour: sync inline, one fsync per commit, while
            // still holding the lock (writers fully serialize).
            self.sync_locked(&mut state)?;
        }
        Ok(lsn)
    }

    fn append_locked<'r>(
        &self,
        state: &mut WalState,
        records: impl Iterator<Item = &'r Record>,
    ) -> Result<u64> {
        for record in records {
            let frame = encode_frame(state.next_lsn, record);
            match state.clock.as_ref().and_then(|c| c.tick()) {
                None => Self::write_state(state, &frame)?,
                Some(CrashMode::TornWrite) => {
                    let torn = frame.len() / 2;
                    Self::write_state(state, &frame[..torn])?;
                    state.dead = true;
                    return Err(EngineError::with_kind(
                        EngineErrorKind::Poisoned,
                        "simulated crash: torn WAL write",
                    ));
                }
                Some(CrashMode::PreFsyncLoss) => {
                    Self::write_state(state, &frame)?;
                    state.file.set_len(state.synced_len)?;
                    state.len = state.synced_len;
                    use std::io::Seek;
                    (&*state.file).seek(std::io::SeekFrom::Start(state.len))?;
                    state.dead = true;
                    return Err(EngineError::with_kind(
                        EngineErrorKind::Poisoned,
                        "simulated crash: WAL tail lost before fsync",
                    ));
                }
                Some(CrashMode::BitFlip) => {
                    let mut flipped = frame.clone();
                    let at = 4 + (flipped.len() - 8) / 2;
                    flipped[at] ^= 0x10;
                    Self::write_state(state, &flipped)?;
                    state.poison_at_sync = true;
                }
            }
            state.next_lsn += 1;
        }
        Ok(state.next_lsn - 1)
    }

    /// Sync under the lock (non-group mode and the reopen path).
    fn sync_locked(&self, state: &mut WalState) -> Result<()> {
        // Either way the sync resolves, these appends stop being pending:
        // they move onto the durable counter on success and are discarded
        // on failure or poison (their transactions roll back).
        let covered = std::mem::take(&mut state.pending_commits);
        match state.file.sync_data() {
            Ok(()) => {
                self.fsyncs.fetch_add(1, Ordering::SeqCst);
                state.synced_len = state.len;
                state.synced_lsn = state.next_lsn - 1;
                if state.poison_at_sync {
                    state.dead = true;
                    state.poison_at_sync = false;
                    self.flushed.notify_all();
                    return Err(EngineError::with_kind(
                        EngineErrorKind::Poisoned,
                        "simulated crash: WAL frame committed with a flipped bit",
                    ));
                }
                self.commits.fetch_add(covered, Ordering::SeqCst);
                Ok(())
            }
            Err(e) => {
                state.dead = true;
                self.flushed.notify_all();
                Err(e.into())
            }
        }
    }

    /// Block until a flush covers `lsn` (or the writer dies). The first
    /// committer to arrive while no flush is in flight becomes the leader:
    /// it snapshots the current tail, runs `sync_data` *outside* the lock,
    /// then publishes the new durable watermark and wakes every parked
    /// committer whose transaction the flush covered — that is the group
    /// commit.
    pub fn wait_durable(&self, lsn: u64) -> Result<()> {
        let mut state = self.lock_state();
        loop {
            if state.synced_lsn >= lsn {
                return Ok(());
            }
            if state.dead {
                return Self::dead_err();
            }
            if state.flushing {
                state = self.flushed.wait(state).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            state.flushing = true;
            let file = Arc::clone(&state.file);
            let target_len = state.len;
            let target_lsn = state.next_lsn - 1;
            let poison = state.poison_at_sync;
            // This flush covers every append staged so far: on success they
            // become durable commits; on failure or poison they are dropped
            // (the failing transactions roll back and are never counted).
            let covered = std::mem::take(&mut state.pending_commits);
            drop(state);
            let synced = file.sync_data();
            state = self.lock_state();
            state.flushing = false;
            match synced {
                Ok(()) => {
                    self.fsyncs.fetch_add(1, Ordering::SeqCst);
                    state.synced_len = state.synced_len.max(target_len);
                    state.synced_lsn = state.synced_lsn.max(target_lsn);
                    if poison {
                        state.dead = true;
                        state.poison_at_sync = false;
                        self.flushed.notify_all();
                        return Err(EngineError::with_kind(
                            EngineErrorKind::Poisoned,
                            "simulated crash: WAL frame committed with a flipped bit",
                        ));
                    }
                    self.commits.fetch_add(covered, Ordering::SeqCst);
                    self.flushed.notify_all();
                }
                Err(e) => {
                    state.dead = true;
                    self.flushed.notify_all();
                    return Err(e.into());
                }
            }
        }
    }

    /// Append one transaction and make it durable before returning — the
    /// drop-in replacement for [`Wal::commit`] used by every auto-commit
    /// statement. Returns the commit LSN.
    pub fn commit(&self, records: &[Record]) -> Result<u64> {
        let lsn = self.append_txn(records)?;
        if self.group_commit {
            self.wait_durable(lsn)?;
        }
        Ok(lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("mtengine-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}-{}.wal", name, std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::CreateTable {
                name: "t".into(),
                columns: vec!["ttid".into(), "v".into(), "s".into()],
            },
            Record::SetPartition {
                table: "t".into(),
                column: "ttid".into(),
            },
            Record::InsertRows {
                table: "t".into(),
                rows: vec![
                    vec![Value::Int(1), Value::Float(0.5), Value::str("hello")],
                    vec![Value::Int(2), Value::Null, Value::Date(9_000)],
                    vec![Value::Int(1), Value::Bool(true), Value::str("")],
                ],
            },
            Record::Meta(MetaOp::Grant {
                owner: 1,
                grantee: 2,
                table: "t".into(),
                privileges: 0b11,
            }),
            Record::CreateView {
                name: "v".into(),
                sql: "SELECT v FROM t".into(),
            },
        ]
    }

    #[test]
    fn frames_round_trip() {
        for (i, record) in sample_records().iter().enumerate() {
            let frame = encode_frame(i as u64 + 1, record);
            let (next, lsn, decoded) = read_frame(&frame, 0).unwrap().unwrap();
            assert_eq!(next, frame.len());
            assert_eq!(lsn, i as u64 + 1);
            assert_eq!(&decoded, record);
        }
    }

    #[test]
    fn commit_then_recover_round_trips() {
        let path = tmp("roundtrip");
        let records = sample_records();
        {
            let mut wal = Wal::open_at(&path, &Recovery::default()).unwrap();
            wal.commit(&records[..2]).unwrap();
            wal.commit(&records[2..]).unwrap();
        }
        let recovery = recover(&path).unwrap();
        assert_eq!(recovery.records, records);
        // 5 records + 2 commit markers.
        assert_eq!(recovery.last_lsn, 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_tail_recovers_committed_prefix() {
        let path = tmp("truncated");
        let records = sample_records();
        {
            let mut wal = Wal::open_at(&path, &Recovery::default()).unwrap();
            wal.commit(&records[..2]).unwrap();
            wal.commit(&records[2..]).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let committed_prefix = recover(&path).unwrap();
        // Chop bytes off the tail one at a time: recovery must always
        // return a committed prefix, never error, never invent records.
        for cut in 1..full.len() - MAGIC.len() {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let r = recover(&path).unwrap();
            assert!(r.records.len() <= committed_prefix.records.len());
            assert_eq!(r.records, committed_prefix.records[..r.records.len()]);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flips_are_caught_by_checksum() {
        let path = tmp("bitflip");
        {
            let mut wal = Wal::open_at(&path, &Recovery::default()).unwrap();
            wal.commit(&sample_records()).unwrap();
        }
        let clean = recover(&path).unwrap();
        assert!(!clean.records.is_empty());
        let full = std::fs::read(&path).unwrap();
        // Flip one bit somewhere inside the frames (past the magic): the
        // corrupted record and everything after it must be discarded.
        for at in [MAGIC.len() + 9, MAGIC.len() + 30, full.len() - 3] {
            let mut data = full.clone();
            data[at] ^= 0x40;
            std::fs::write(&path, &data).unwrap();
            let r = recover(&path).unwrap();
            assert!(r.records.len() < clean.records.len());
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_magic_is_a_hard_error() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAWALFILE-----").unwrap();
        let err = recover(&path).unwrap_err();
        assert_eq!(err.kind(), EngineErrorKind::Corrupt);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reopen_truncates_untrusted_tail_and_continues_lsns() {
        let path = tmp("reopen");
        {
            let mut wal = Wal::open_at(&path, &Recovery::default()).unwrap();
            wal.commit(&sample_records()[..2]).unwrap();
        }
        // Append garbage to simulate a torn tail.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xAB; 13]).unwrap();
        }
        let r1 = recover(&path).unwrap();
        assert_eq!(r1.records.len(), 2);
        {
            let mut wal = Wal::open_at(&path, &r1).unwrap();
            assert_eq!(wal.next_lsn(), r1.last_lsn + 1);
            wal.commit(&sample_records()[2..]).unwrap();
        }
        let r2 = recover(&path).unwrap();
        assert_eq!(r2.records, sample_records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn injected_crashes_leave_committed_prefix_and_kill_writer() {
        for mode in [
            CrashMode::TornWrite,
            CrashMode::PreFsyncLoss,
            CrashMode::BitFlip,
        ] {
            let path = tmp(&format!("failpoint-{mode:?}"));
            let records = sample_records();
            {
                let mut wal = Wal::open_at(&path, &Recovery::default()).unwrap();
                wal.commit(&records[..2]).unwrap();
                // Crash on the first frame of the second transaction.
                let clock = FailpointClock::crash_at(4, mode);
                wal.set_failpoint_clock(Arc::clone(&clock));
                let err = wal.commit(&records[2..]).unwrap_err();
                assert_eq!(err.kind(), EngineErrorKind::Poisoned, "{mode:?}");
                assert!(clock.fired());
                // The writer is permanently dead.
                let err = wal.commit(&records[..1]).unwrap_err();
                assert_eq!(err.kind(), EngineErrorKind::Poisoned, "{mode:?}");
            }
            let r = recover(&path).unwrap();
            assert_eq!(r.records, records[..2], "{mode:?}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn observer_clock_counts_frames() {
        let path = tmp("observer");
        let clock = FailpointClock::observe();
        {
            let mut wal = Wal::open_at(&path, &Recovery::default()).unwrap();
            wal.set_failpoint_clock(Arc::clone(&clock));
            wal.commit(&sample_records()).unwrap();
        }
        // 5 records + 1 commit marker.
        assert_eq!(clock.ops(), 6);
        assert!(!clock.fired());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn handle_commit_round_trips_and_counts() {
        let path = tmp("handle-roundtrip");
        let records = sample_records();
        {
            let handle = WalHandle::open_at(&path, &Recovery::default(), true).unwrap();
            handle.commit(&records[..2]).unwrap();
            handle.commit(&records[2..]).unwrap();
            assert_eq!(handle.commits(), 2);
            assert!(handle.fsyncs() >= 1);
            assert_eq!(handle.last_lsn(), 7);
        }
        let recovery = recover(&path).unwrap();
        assert_eq!(recovery.records, records);
        assert_eq!(recovery.last_lsn, 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_then_single_wait_batches_fsyncs() {
        // The deterministic group-commit shape: several transactions are
        // appended before anyone waits, then one flush makes them all
        // durable — fsyncs-per-commit strictly below one.
        let path = tmp("handle-batch");
        let records = sample_records();
        let handle = WalHandle::open_at(&path, &Recovery::default(), true).unwrap();
        let mut last = 0;
        for record in &records {
            last = handle.append_txn(std::slice::from_ref(record)).unwrap();
        }
        assert_eq!(handle.fsyncs(), 0);
        handle.wait_durable(last).unwrap();
        assert_eq!(handle.fsyncs(), 1);
        assert_eq!(handle.commits(), records.len() as u64);
        drop(handle);
        let recovery = recover(&path).unwrap();
        assert_eq!(recovery.records, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_committers_all_become_durable() {
        let path = tmp("handle-threads");
        let handle = WalHandle::open_at(&path, &Recovery::default(), true).unwrap();
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let handle = Arc::clone(&handle);
                std::thread::spawn(move || {
                    for i in 0..4 {
                        let record = Record::InsertRows {
                            table: "t".into(),
                            rows: vec![vec![Value::Int(t), Value::Int(i)]],
                        };
                        handle.commit(&[record]).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.commits(), 32);
        drop(handle);
        let recovery = recover(&path).unwrap();
        assert_eq!(recovery.records.len(), 32);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_group_mode_syncs_every_commit() {
        let path = tmp("handle-nogroup");
        let records = sample_records();
        let handle = WalHandle::open_at(&path, &Recovery::default(), false).unwrap();
        for record in &records {
            handle.commit(std::slice::from_ref(record)).unwrap();
        }
        assert_eq!(handle.commits(), records.len() as u64);
        assert_eq!(handle.fsyncs(), records.len() as u64);
        drop(handle);
        let recovery = recover(&path).unwrap();
        assert_eq!(recovery.records, records);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn handle_injected_crashes_match_wal_semantics() {
        for mode in [
            CrashMode::TornWrite,
            CrashMode::PreFsyncLoss,
            CrashMode::BitFlip,
        ] {
            let path = tmp(&format!("handle-failpoint-{mode:?}"));
            let records = sample_records();
            {
                let handle = WalHandle::open_at(&path, &Recovery::default(), true).unwrap();
                handle.commit(&records[..2]).unwrap();
                let clock = FailpointClock::crash_at(4, mode);
                handle.set_failpoint_clock(Arc::clone(&clock));
                let err = handle.commit(&records[2..]).unwrap_err();
                assert_eq!(err.kind(), EngineErrorKind::Poisoned, "{mode:?}");
                assert!(clock.fired());
                let err = handle.commit(&records[..1]).unwrap_err();
                assert_eq!(err.kind(), EngineErrorKind::Poisoned, "{mode:?}");
            }
            let r = recover(&path).unwrap();
            assert_eq!(r.records, records[..2], "{mode:?}");
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn commits_counter_only_counts_durable_transactions() {
        let path = tmp("handle-durable-commits");
        let records = sample_records();
        let handle = WalHandle::open_at(&path, &Recovery::default(), true).unwrap();
        handle.commit(&records[..2]).unwrap();
        assert_eq!(handle.commits(), 1);
        // A transaction whose covering fsync crashes must never be counted:
        // it was appended but did not become durable, and its statements
        // roll back. Before the pending/durable split the counter was
        // bumped at append time and survived the failed sync.
        let clock = FailpointClock::crash_at(4, CrashMode::BitFlip);
        handle.set_failpoint_clock(Arc::clone(&clock));
        let err = handle.commit(&records[2..]).unwrap_err();
        assert_eq!(err.kind(), EngineErrorKind::Poisoned);
        assert!(clock.fired());
        assert_eq!(handle.commits(), 1, "failed commit must not be counted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_mode_parse_accepts_matrix_names_only() {
        assert_eq!(CrashMode::parse("torn-write"), Ok(CrashMode::TornWrite));
        assert_eq!(
            CrashMode::parse("pre-fsync-loss"),
            Ok(CrashMode::PreFsyncLoss)
        );
        assert_eq!(CrashMode::parse("bit-flip"), Ok(CrashMode::BitFlip));
        assert!(CrashMode::parse("bitflip").is_err());
        assert!(CrashMode::parse("").is_err());
    }
}

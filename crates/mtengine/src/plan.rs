//! Physical plans: lowering a (rewritten) [`Query`] into an operator DAG.
//!
//! The planner turns the AST the rewriter produces into an explicit tree of
//! physical operators that the executor walks:
//!
//! * [`Plan::SeqScan`] — one base-table scan carrying its *pushed-down*
//!   WHERE conjuncts and, for tenant-partitioned tables, the set of
//!   partition keys the `ttid = k` / `ttid IN (...)` D-filters select.
//! * [`Plan::Filter`], [`Plan::HashJoin`], [`Plan::NestedLoopJoin`] — the
//!   relational glue; the planner picks hash joins greedily from the
//!   available equi-join conjuncts, exactly like the previous AST
//!   interpreter did, so plans stay comparable across PRs.
//! * [`Plan::Subquery`] — a derived table (or expanded view) re-qualified
//!   under its alias.
//! * [`Plan::Project`] / [`Plan::HashAggregate`] — the projection and
//!   grouping heads of a query block. ORDER BY expressions that are not
//!   visible output columns are appended as *hidden* key columns so that
//!   [`Plan::Sort`] can compare rows in place (no per-row key vectors) and
//!   strip the extras afterwards.
//! * [`Plan::Sort`] / [`Plan::Limit`] — ordering and truncation.
//!
//! Because filter pushdown is now a plan transformation rather than ad-hoc
//! scan logic, it also crosses derived-table boundaries: a conjunct over a
//! derived table's output columns is *transposed* through the projection
//! (output column → defining expression) and joins the sub-query's own
//! conjunct pool, where it reaches the base scans and prunes partitions.
//! This is what lets the o2/o3 rewrites of the paper — which wrap scans in
//! sub-selects — keep the scan-time tenant pruning of PR 1.
//!
//! [`explain`] renders a plan as an indented operator tree (the `EXPLAIN`
//! statement surface), including pushed conjuncts, live partition-pruning
//! counts and parallel-scan eligibility.

use std::collections::{BTreeSet, HashMap};

use mtsql::ast::*;
use mtsql::visit::{collect_aggregate_calls, contains_subquery, split_conjuncts};

use crate::conjuncts::{
    contains_aggregate, equi_join_keys, expr_resolvable, is_consumed_equi_key,
    is_param_partition_key_conjunct, map_columns, partition_keys_of_conjunct, take_applicable,
};
use crate::error::Result;
use crate::exec::Executor;
use crate::schema::Schema;
use crate::Engine;

/// One ORDER BY key of a [`Plan::Sort`]: a column index into the input rows
/// (visible or hidden) plus the direction.
#[derive(Debug, Clone, Copy)]
pub struct SortKey {
    pub col: usize,
    pub asc: bool,
}

/// A base-table scan with pushed-down conjuncts and partition pruning. The
/// pushed-down conjuncts are partitioned into `pruning` ∪ `residual`; the
/// full pushed set (applied to loose rows and un-pruned scans) is the
/// concatenation of the two, so the lists cannot drift apart.
#[derive(Debug, Clone)]
pub struct SeqScan {
    /// Table name as referenced (database lookup is case-insensitive).
    pub table: String,
    /// The binding (alias) the scan's columns are qualified under.
    pub binding: String,
    pub schema: Schema,
    /// Pushed conjuncts recognized as partition-key predicates. Rows inside
    /// a selected bucket satisfy them by construction (the bucket key *is*
    /// the partition value); loose rows re-check them.
    pub pruning: Vec<Expr>,
    /// The remaining pushed conjuncts, evaluated for every visited row.
    pub residual: Vec<Expr>,
    /// Keys selected by the pruning predicates; `None` scans every bucket.
    pub prune_keys: Option<BTreeSet<i64>>,
    /// Partition-key predicates whose key side contains parameter
    /// placeholders (`ttid = $1`). They cannot prune at plan time, so they
    /// are *also* members of `residual` (correctness never depends on them);
    /// once parameters are bound, the executor folds them to key sets and
    /// intersects those into the effective pruning set — prepared statements
    /// keep scan-time tenant pruning without replanning per bind.
    pub param_pruning: Vec<Expr>,
}

impl SeqScan {
    /// `true` when no conjunct at all was pushed into this scan.
    pub fn nothing_pushed(&self) -> bool {
        self.pruning.is_empty() && self.residual.is_empty()
    }
}

/// Projection head of a non-aggregated query block.
#[derive(Debug, Clone)]
pub struct Project {
    pub input: Box<Plan>,
    /// Visible projection items followed by hidden ORDER BY key items.
    pub items: Vec<SelectItem>,
    /// Width of the visible output (DISTINCT compares this prefix).
    pub visible_width: usize,
    pub distinct: bool,
    /// Schema of the visible output.
    pub schema: Schema,
}

/// Grouping/aggregation head of a query block.
#[derive(Debug, Clone)]
pub struct HashAggregate {
    pub input: Box<Plan>,
    pub group_exprs: Vec<Expr>,
    pub aggregates: Vec<FunctionCall>,
    pub having: Option<Expr>,
    /// Visible projection items followed by hidden ORDER BY key items, all
    /// evaluated in group context.
    pub items: Vec<SelectItem>,
    pub visible_width: usize,
    pub distinct: bool,
    pub schema: Schema,
}

/// How a [`Plan::HashJoin`] combines its probe (left) and build (right)
/// sides. `Plain` carries the SQL join kinds; the other variants are
/// produced only by sub-query decorrelation (see the [`crate::decorrelate`]
/// module) and act as *filters* on the probe side: they emit probe rows
/// unchanged (and in order), so they are drop-in replacements for an
/// interpreted correlated predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinVariant {
    /// An ordinary SQL join producing concatenated rows.
    Plain(JoinKind),
    /// Semi join (decorrelated `EXISTS`): emit probe rows with at least one
    /// build-side key match. NULL probe keys never match (`=` over NULL is
    /// not true), matching the interpreted `EXISTS` over an empty inner set.
    Semi,
    /// Anti join (decorrelated `NOT EXISTS`): emit probe rows with *no*
    /// build-side key match — including rows with NULL probe keys, which
    /// cannot match anything.
    Anti,
    /// Aggregate join (decorrelated scalar-aggregate comparison): look up at
    /// most one build row per probe row (build keys are the GROUP BY keys of
    /// an aggregated build side, hence unique), null-extend on a miss, and
    /// emit the probe row iff the rewritten comparison in `residual` holds
    /// over the concatenated row. A miss yields NULL aggregates, so the
    /// comparison is not-true — exactly the interpreted aggregate-over-empty
    /// behaviour (`AVG`/`SUM`/`MIN`/`MAX` only; `COUNT` is never rewritten).
    Single,
}

/// A physical operator DAG node.
#[derive(Debug, Clone)]
pub enum Plan {
    /// `SELECT expr` without FROM: a single empty row.
    Empty {
        schema: Schema,
    },
    SeqScan(SeqScan),
    /// Residual predicates (correlated conjuncts, sub-queries, predicates
    /// over already-joined intermediates).
    Filter {
        input: Box<Plan>,
        predicates: Vec<Expr>,
    },
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        /// `(left key, right key)` equi-join pairs.
        keys: Vec<(Expr, Expr)>,
        /// Non-equi ON conjuncts checked per candidate pair. For
        /// [`JoinVariant::Single`] this holds the rewritten scalar
        /// comparison, evaluated over the concatenated probe+build row.
        residual: Vec<Expr>,
        kind: JoinVariant,
        schema: Schema,
    },
    NestedLoopJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        predicates: Vec<Expr>,
        kind: JoinKind,
        schema: Schema,
    },
    /// A derived table or expanded view, re-qualified under `alias`.
    Subquery {
        input: Box<Plan>,
        alias: String,
        schema: Schema,
    },
    Project(Project),
    HashAggregate(HashAggregate),
    Sort {
        input: Box<Plan>,
        keys: Vec<SortKey>,
        /// Strip hidden key columns down to this width after sorting.
        prune_to: Option<usize>,
    },
    Limit {
        input: Box<Plan>,
        limit: u64,
    },
}

impl Plan {
    /// The (visible) output schema of this operator.
    pub fn schema(&self) -> &Schema {
        match self {
            Plan::Empty { schema } => schema,
            Plan::SeqScan(s) => &s.schema,
            Plan::Filter { input, .. } => input.schema(),
            Plan::HashJoin { schema, .. } => schema,
            Plan::NestedLoopJoin { schema, .. } => schema,
            Plan::Subquery { schema, .. } => schema,
            Plan::Project(p) => &p.schema,
            Plan::HashAggregate(a) => &a.schema,
            Plan::Sort { input, .. } => input.schema(),
            Plan::Limit { input, .. } => input.schema(),
        }
    }
}

/// Lowers queries into [`Plan`]s against one engine's catalog and config.
pub struct Planner<'e> {
    pub(crate) engine: &'e Engine,
}

impl<'e> Planner<'e> {
    /// A planner for the engine's current catalog.
    pub fn new(engine: &'e Engine) -> Self {
        Planner { engine }
    }

    /// Lower a query into a physical plan.
    pub fn plan_query(&self, query: &Query) -> Result<Plan> {
        self.plan(query, Vec::new())
    }

    /// Lower a query with extra conjuncts pushed down from an enclosing
    /// query (derived-table pushdown); they join the WHERE conjunct pool.
    pub(crate) fn plan(&self, query: &Query, extra: Vec<Expr>) -> Result<Plan> {
        let select = &query.body;
        let input = self.plan_from_where(select, extra)?;

        let aggregates = collect_aggregates(select, &query.order_by);
        let grouped = !select.group_by.is_empty() || !aggregates.is_empty();

        let aliases = alias_map(&select.projection);
        let out_schema = projection_schema(&select.projection, input.schema());
        let visible_width = out_schema.len();
        let order_exprs: Vec<Expr> = query
            .order_by
            .iter()
            .map(|o| substitute_aliases(&o.expr, &aliases))
            .collect();

        // ORDER BY keys become column indices into the projected rows: either
        // a visible output column whose defining expression matches, or a
        // hidden key item appended behind the projection (stripped by Sort).
        let plain_items = !select
            .projection
            .iter()
            .any(|i| !matches!(i, SelectItem::Expr { .. }));
        let mut items: Vec<SelectItem> = select.projection.clone();
        let mut hidden: Vec<Expr> = Vec::new();
        let mut sort_keys: Vec<SortKey> = Vec::new();
        for (o, e) in query.order_by.iter().zip(&order_exprs) {
            let visible_match = if plain_items {
                select
                    .projection
                    .iter()
                    .position(|i| matches!(i, SelectItem::Expr { expr, .. } if expr == e))
            } else {
                None
            };
            let col = match visible_match {
                Some(i) => i,
                None => match hidden.iter().position(|h| h == e) {
                    Some(j) => visible_width + j,
                    None => {
                        hidden.push(e.clone());
                        visible_width + hidden.len() - 1
                    }
                },
            };
            sort_keys.push(SortKey { col, asc: o.asc });
        }
        let hidden_count = hidden.len();
        items.extend(
            hidden
                .into_iter()
                .map(|expr| SelectItem::Expr { expr, alias: None }),
        );

        let mut plan = if grouped {
            let group_exprs: Vec<Expr> = select
                .group_by
                .iter()
                .map(|e| substitute_aliases(e, &aliases))
                .collect();
            let having = select
                .having
                .as_ref()
                .map(|h| substitute_aliases(h, &aliases));
            Plan::HashAggregate(HashAggregate {
                input: Box::new(input),
                group_exprs,
                aggregates,
                having,
                items,
                visible_width,
                distinct: select.distinct,
                schema: out_schema,
            })
        } else {
            Plan::Project(Project {
                input: Box::new(input),
                items,
                visible_width,
                distinct: select.distinct,
                schema: out_schema,
            })
        };
        if !sort_keys.is_empty() {
            plan = Plan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
                prune_to: (hidden_count > 0).then_some(visible_width),
            };
        }
        if let Some(limit) = query.limit {
            plan = Plan::Limit {
                input: Box::new(plan),
                limit,
            };
        }
        Ok(plan)
    }

    /// Plan the FROM/WHERE part: scans with pushdown, greedy hash-join
    /// ordering, and residual filters as they become resolvable.
    fn plan_from_where(&self, select: &Select, extra: Vec<Expr>) -> Result<Plan> {
        let mut conjuncts: Vec<Expr> = extra;
        if let Some(sel) = &select.selection {
            split_conjuncts(sel, &mut conjuncts);
        }

        if select.from.is_empty() {
            // `SELECT expr` without FROM: a single empty row. A WHERE clause
            // here can only hold column-free predicates; they filter that
            // row (`SELECT 1 WHERE 1 = 0` is empty).
            let mut plan = Plan::Empty {
                schema: Schema::new(),
            };
            if !conjuncts.is_empty() {
                plan = Plan::Filter {
                    input: Box::new(plan),
                    predicates: conjuncts,
                };
            }
            return Ok(plan);
        }

        // Plan each FROM item with its single-item predicates pushed into the
        // item itself. Consumed conjuncts are removed from the pool; FROM
        // order decides which item claims an ambiguous conjunct.
        let mut items: Vec<Plan> = Vec::with_capacity(select.from.len());
        for table_ref in &select.from {
            items.push(self.plan_table_ref(table_ref, &mut conjuncts)?);
        }

        let mut remaining = conjuncts;
        let mut current = items.remove(0);
        while !items.is_empty() {
            let mut chosen: Option<(usize, Vec<(Expr, Expr)>)> = None;
            for (i, item) in items.iter().enumerate() {
                let keys = equi_join_keys(&remaining, current.schema(), item.schema());
                if !keys.is_empty() {
                    chosen = Some((i, keys));
                    break;
                }
            }
            current = match chosen {
                Some((i, keys)) => {
                    let right = items.remove(i);
                    remaining.retain(|c| !is_consumed_equi_key(c, &keys));
                    let schema = current.schema().concat(right.schema());
                    Plan::HashJoin {
                        left: Box::new(current),
                        right: Box::new(right),
                        keys,
                        residual: Vec::new(),
                        kind: JoinVariant::Plain(JoinKind::Inner),
                        schema,
                    }
                }
                None => {
                    let right = items.remove(0);
                    let schema = current.schema().concat(right.schema());
                    Plan::NestedLoopJoin {
                        left: Box::new(current),
                        right: Box::new(right),
                        predicates: Vec::new(),
                        kind: JoinKind::Cross,
                        schema,
                    }
                }
            };
            // Apply predicates that became resolvable, to keep intermediate
            // results small.
            let mut still: Vec<Expr> = Vec::new();
            let mut apply: Vec<Expr> = Vec::new();
            for c in remaining.drain(..) {
                if !contains_subquery(&c) && expr_resolvable(&c, current.schema()) {
                    apply.push(c);
                } else {
                    still.push(c);
                }
            }
            if !apply.is_empty() {
                current = Plan::Filter {
                    input: Box::new(current),
                    predicates: apply,
                };
            }
            remaining = still;
        }

        // Whatever is left (correlated predicates, sub-queries, ...): first
        // give decorrelation a chance to rewrite correlated sub-query
        // conjuncts into semi-/anti-/aggregate-join nodes over `current`;
        // anything it cannot prove equivalent stays interpreted.
        if self.engine.config().decorrelation {
            remaining = self.decorrelate_conjuncts(&mut current, remaining)?;
        }
        if !remaining.is_empty() {
            current = Plan::Filter {
                input: Box::new(current),
                predicates: remaining,
            };
        }
        Ok(current)
    }

    fn plan_table_ref(&self, table_ref: &TableRef, pool: &mut Vec<Expr>) -> Result<Plan> {
        match table_ref {
            TableRef::Table { name, alias } => {
                let binding = alias.as_deref().unwrap_or(name);
                if let Some(view) = self.engine.database().view(name) {
                    let view = view.clone();
                    return self.plan_derived(&view, binding, pool);
                }
                let table = self.engine.database().table(name)?;
                let schema = Schema::qualified(binding, &table.columns);
                let partition_col = table.partition_column();
                let pushed = take_applicable(pool, &schema);
                Ok(Plan::SeqScan(self.build_scan(
                    name,
                    binding,
                    schema,
                    pushed,
                    partition_col,
                )))
            }
            TableRef::Derived { query, alias } => self.plan_derived(query, alias, pool),
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let mut on_conjuncts = Vec::new();
                if let Some(cond) = on {
                    split_conjuncts(cond, &mut on_conjuncts);
                }
                let (l, r) = match kind {
                    JoinKind::Inner => {
                        // Single-side ON conjuncts of an inner join may be
                        // evaluated below the join; the left leg claims
                        // ambiguous ones first, matching how unqualified
                        // names resolve on the combined schema.
                        let l = self.plan_table_ref(left, &mut on_conjuncts)?;
                        let r = self.plan_table_ref(right, &mut on_conjuncts)?;
                        (l, r)
                    }
                    JoinKind::Left => {
                        // The preserved (left) side must not be pre-filtered
                        // by ON predicates; right-side-only predicates may be
                        // pushed into the right scan (non-matching right rows
                        // are simply absent, left rows still null-extend).
                        let l = self.plan_table_ref(left, &mut Vec::new())?;
                        let mut right_only: Vec<Expr> = Vec::new();
                        if let Some(rschema) = self.base_table_schema(right) {
                            on_conjuncts.retain(|c| {
                                let push = !contains_subquery(c)
                                    && expr_resolvable(c, &rschema)
                                    && !expr_resolvable(c, l.schema());
                                if push {
                                    right_only.push(c.clone());
                                }
                                !push
                            });
                        }
                        let r = self.plan_table_ref(right, &mut right_only)?;
                        // Anything the right leg could not consume keeps its
                        // place in the ON clause.
                        on_conjuncts.append(&mut right_only);
                        (l, r)
                    }
                    JoinKind::Cross => {
                        let l = self.plan_table_ref(left, &mut Vec::new())?;
                        let r = self.plan_table_ref(right, &mut Vec::new())?;
                        let schema = l.schema().concat(r.schema());
                        let node = Plan::NestedLoopJoin {
                            left: Box::new(l),
                            right: Box::new(r),
                            predicates: Vec::new(),
                            kind: JoinKind::Cross,
                            schema,
                        };
                        return Ok(filter_applicable(node, pool));
                    }
                };
                let keys = equi_join_keys(&on_conjuncts, l.schema(), r.schema());
                let residual: Vec<Expr> = on_conjuncts
                    .into_iter()
                    .filter(|c| !is_consumed_equi_key(c, &keys))
                    .collect();
                let schema = l.schema().concat(r.schema());
                let node = if keys.is_empty() {
                    Plan::NestedLoopJoin {
                        left: Box::new(l),
                        right: Box::new(r),
                        predicates: residual,
                        kind: *kind,
                        schema,
                    }
                } else {
                    Plan::HashJoin {
                        left: Box::new(l),
                        right: Box::new(r),
                        keys,
                        residual,
                        kind: JoinVariant::Plain(*kind),
                        schema,
                    }
                };
                Ok(filter_applicable(node, pool))
            }
        }
    }

    /// Plan a derived table (or view) bound under `alias`. Conjuncts from the
    /// pool that resolve against the derived output are either *transposed*
    /// through the projection into the sub-query's own conjunct pool (so they
    /// reach base scans and prune partitions) or, failing that, applied as a
    /// filter above the materialized sub-query.
    fn plan_derived(&self, query: &Query, alias: &str, pool: &mut Vec<Expr>) -> Result<Plan> {
        let plain_items = query
            .body
            .projection
            .iter()
            .all(|i| matches!(i, SelectItem::Expr { .. }));

        if !plain_items {
            // Wildcard projections: the output schema depends on the planned
            // sub-query; no transposition, filters stay above.
            let input = self.plan(query, Vec::new())?;
            let schema = Schema::qualified(alias, &input.schema().names());
            let node = Plan::Subquery {
                input: Box::new(input),
                alias: alias.to_string(),
                schema,
            };
            return Ok(filter_applicable(node, pool));
        }

        let names: Vec<String> = query
            .body
            .projection
            .iter()
            .map(|i| match i {
                SelectItem::Expr { expr, alias } => match alias {
                    Some(a) => a.clone(),
                    None => derived_name(expr),
                },
                _ => unreachable!("plain_items checked above"),
            })
            .collect();
        let schema = Schema::qualified(alias, &names);

        let applicable = take_applicable(pool, &schema);
        let transposer = Transposer::new(query);
        let mut push_in: Vec<Expr> = Vec::new();
        let mut above: Vec<Expr> = Vec::new();
        for c in applicable {
            match transposer.transpose(&c, &schema) {
                Some(t) => push_in.push(t),
                None => above.push(c),
            }
        }

        let input = self.plan(query, push_in)?;
        let mut node = Plan::Subquery {
            input: Box::new(input),
            alias: alias.to_string(),
            schema,
        };
        if !above.is_empty() {
            node = Plan::Filter {
                input: Box::new(node),
                predicates: above,
            };
        }
        Ok(node)
    }

    fn build_scan(
        &self,
        table: &str,
        binding: &str,
        schema: Schema,
        pushed: Vec<Expr>,
        partition_col: Option<usize>,
    ) -> SeqScan {
        let mut prune_keys: Option<BTreeSet<i64>> = None;
        let mut pruning: Vec<Expr> = Vec::new();
        let mut param_pruning: Vec<Expr> = Vec::new();
        if self.engine.config().partition_pruning {
            if let Some(pidx) = partition_col {
                // Fold key expressions with the executor's full constant
                // folder (functions and UDFs over literals included), so the
                // planner prunes everything PR 1's scan-time pruning did.
                let folder = Executor::new(self.engine);
                let fold = |e: &Expr| folder.fold_const(e);
                for c in &pushed {
                    if let Some(keys) = partition_keys_of_conjunct(c, &schema, pidx, &fold) {
                        pruning.push(c.clone());
                        prune_keys = Some(match prune_keys {
                            None => keys,
                            Some(prev) => prev.intersection(&keys).copied().collect(),
                        });
                    } else if is_param_partition_key_conjunct(c, &schema, pidx) {
                        // The key depends on a statement parameter: defer to
                        // bind time. The conjunct stays in `residual` below.
                        param_pruning.push(c.clone());
                    }
                }
            }
        }
        let residual: Vec<Expr> = pushed
            .into_iter()
            .filter(|c| !pruning.contains(c))
            .collect();
        SeqScan {
            table: table.to_string(),
            binding: binding.to_string(),
            schema,
            pruning,
            residual,
            prune_keys,
            param_pruning,
        }
    }

    /// Schema of a FROM item when it is a plain base table (not a view);
    /// usable for pushability checks without planning the item.
    pub(crate) fn base_table_schema(&self, table_ref: &TableRef) -> Option<Schema> {
        match table_ref {
            TableRef::Table { name, alias } if self.engine.database().view(name).is_none() => {
                let binding = alias.as_deref().unwrap_or(name);
                let table = self.engine.database().table(name).ok()?;
                Some(Schema::qualified(binding, &table.columns))
            }
            _ => None,
        }
    }
}

/// Consume every pool conjunct resolvable against the node's schema and wrap
/// the node in a [`Plan::Filter`] applying them.
fn filter_applicable(node: Plan, pool: &mut Vec<Expr>) -> Plan {
    let applicable = take_applicable(pool, node.schema());
    if applicable.is_empty() {
        node
    } else {
        Plan::Filter {
            input: Box::new(node),
            predicates: applicable,
        }
    }
}

/// Rewrites conjuncts over a derived table's output columns into conjuncts
/// over the sub-query's *input* by substituting each output column with its
/// defining projection expression. The query-shape analysis (aggregate
/// detection, alias-substituted group keys) is computed once per derived
/// table and shared across all transposed conjuncts.
///
/// [`Transposer::transpose`] returns `None` when the transposition would
/// change semantics:
///
/// * the sub-query has a LIMIT (filtering first changes which rows survive);
/// * the sub-query has no FROM (there is no conjunct pool to push into);
/// * a referenced output column is defined by an aggregate or sub-query;
/// * the sub-query aggregates — anywhere: projection, HAVING or ORDER BY —
///   and a referenced column is not a GROUP BY expression (filters only
///   commute with grouping on group keys).
///
/// DISTINCT, HAVING and ORDER BY commute with a filter on projected columns
/// and do not block the pushdown.
struct Transposer<'q> {
    inner: &'q Query,
    blocked: bool,
    grouped: bool,
    /// The executor groups by the *alias-substituted* GROUP BY expressions
    /// (SQL allows projection aliases there), so group-key membership is
    /// checked against the same substituted forms — a projection alias
    /// shadowing a real column name would otherwise let a non-key column
    /// pass.
    group_keys: Vec<Expr>,
}

impl<'q> Transposer<'q> {
    fn new(inner: &'q Query) -> Self {
        let body = &inner.body;
        let blocked = inner.limit.is_some() || body.from.is_empty();
        let grouped =
            !body.group_by.is_empty() || !collect_aggregates(body, &inner.order_by).is_empty();
        let aliases = alias_map(&body.projection);
        let group_keys: Vec<Expr> = body
            .group_by
            .iter()
            .map(|e| substitute_aliases(e, &aliases))
            .collect();
        Transposer {
            inner,
            blocked,
            grouped,
            group_keys,
        }
    }

    fn transpose(&self, conjunct: &Expr, schema: &Schema) -> Option<Expr> {
        if self.blocked {
            return None;
        }
        let body = &self.inner.body;
        map_columns(conjunct, &mut |c| {
            let idx = schema.resolve(c)?;
            let SelectItem::Expr { expr, .. } = &body.projection[idx] else {
                return None;
            };
            if contains_subquery(expr) || contains_aggregate(expr) {
                return None;
            }
            if self.grouped && !self.group_keys.contains(expr) {
                return None;
            }
            Some(expr.clone())
        })
    }
}

// ---------------------------------------------------------------------------
// Query-shape helpers (projection schemas, aliases, aggregate collection)
// ---------------------------------------------------------------------------

/// Schema of the projection output: alias, column name or a synthesized name.
pub(crate) fn projection_schema(projection: &[SelectItem], input: &Schema) -> Schema {
    let mut names = Vec::new();
    for item in projection {
        match item {
            SelectItem::Wildcard => names.extend(input.cols.iter().map(|c| c.name.clone())),
            SelectItem::QualifiedWildcard(q) => {
                for idx in input.indices_of_qualifier(q) {
                    names.push(input.cols[idx].name.clone());
                }
            }
            SelectItem::Expr { expr, alias } => names.push(match alias {
                Some(a) => a.clone(),
                None => derived_name(expr),
            }),
        }
    }
    Schema::unqualified(&names)
}

pub(crate) fn derived_name(expr: &Expr) -> String {
    match expr {
        Expr::Column(c) => c.name.clone(),
        Expr::Function(f) => f.name.to_ascii_lowercase(),
        _ => "?column?".to_string(),
    }
}

/// Map projection aliases to their expressions.
pub(crate) fn alias_map(projection: &[SelectItem]) -> HashMap<String, Expr> {
    let mut map = HashMap::new();
    for item in projection {
        if let SelectItem::Expr {
            expr,
            alias: Some(alias),
        } = item
        {
            map.insert(alias.to_ascii_lowercase(), expr.clone());
        }
    }
    map
}

/// Replace unqualified column references that name a projection alias with the
/// aliased expression (SQL allows aliases in GROUP BY / ORDER BY / HAVING).
/// Sub-queries keep their own scope and are left untouched.
pub(crate) fn substitute_aliases(expr: &Expr, aliases: &HashMap<String, Expr>) -> Expr {
    let sub = |e: &Expr| Box::new(substitute_aliases(e, aliases));
    match expr {
        Expr::Column(c) if c.table.is_none() => match aliases.get(&c.name.to_ascii_lowercase()) {
            Some(e) => e.clone(),
            None => expr.clone(),
        },
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: sub(left),
            op: *op,
            right: sub(right),
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: sub(expr),
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| substitute_aliases(a, aliases))
                .collect(),
            distinct: f.distinct,
        }),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: operand.as_deref().map(sub),
            when_then: when_then
                .iter()
                .map(|(w, t)| {
                    (
                        substitute_aliases(w, aliases),
                        substitute_aliases(t, aliases),
                    )
                })
                .collect(),
            else_expr: else_expr.as_deref().map(sub),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: sub(expr),
            list: list
                .iter()
                .map(|i| substitute_aliases(i, aliases))
                .collect(),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: sub(expr),
            low: sub(low),
            high: sub(high),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: sub(expr),
            pattern: sub(pattern),
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: sub(expr),
            negated: *negated,
        },
        Expr::Extract { field, expr } => Expr::Extract {
            field: *field,
            expr: sub(expr),
        },
        Expr::Substring {
            expr,
            start,
            length,
        } => Expr::Substring {
            expr: sub(expr),
            start: sub(start),
            length: length.as_deref().map(sub),
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: sub(expr),
            data_type: *data_type,
        },
        // `expr IN (subquery)`: the left-hand side belongs to this scope.
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => Expr::InSubquery {
            expr: sub(expr),
            query: query.clone(),
            negated: *negated,
        },
        Expr::Literal(_)
        | Expr::Param(_)
        | Expr::Column(_)
        | Expr::Exists { .. }
        | Expr::ScalarSubquery(_) => expr.clone(),
    }
}

/// Collect the distinct aggregate calls appearing in the projection, HAVING
/// and ORDER BY of a select.
pub(crate) fn collect_aggregates(select: &Select, order_by: &[OrderByItem]) -> Vec<FunctionCall> {
    let mut out: Vec<FunctionCall> = Vec::new();
    let aliases = alias_map(&select.projection);
    for item in &select.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggregate_calls(expr, &mut out);
        }
    }
    if let Some(h) = &select.having {
        collect_aggregate_calls(&substitute_aliases(h, &aliases), &mut out);
    }
    for o in order_by {
        collect_aggregate_calls(&substitute_aliases(&o.expr, &aliases), &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------------

/// Render a plan as an indented operator tree. Partition counts are computed
/// against the engine's live tables so `EXPLAIN` shows how many buckets the
/// pruning conjuncts actually skip.
pub fn explain(engine: &Engine, plan: &Plan) -> String {
    let mut out = String::new();
    render(engine, plan, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn join_exprs(exprs: &[Expr]) -> String {
    exprs
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join(" AND ")
}

/// Mirror of the executor's morsel-pool sizing over a scan's selected
/// buckets, at plan time: full bucket lengths (EXPLAIN has no snapshot) and
/// the *configured* budget — the `MT_THREADS` execution-time override
/// deliberately does not affect rendering, so plan snapshots stay stable
/// under forced-pool CI legs. `None` when the configured budget is serial.
fn scan_pool_workers(engine: &Engine, scan: &SeqScan) -> Option<usize> {
    let budget = engine.config().parallel_scan;
    if budget <= 1 {
        return None;
    }
    let table = engine.database().table(&scan.table).ok()?;
    let selected: Vec<usize> = match &scan.prune_keys {
        Some(keys) => table
            .partitions()
            .filter(|(k, _)| keys.contains(k))
            .map(|(_, b)| b.len())
            .collect(),
        None => table.partitions().map(|(_, b)| b.len()).collect(),
    };
    let total: usize = selected.iter().sum();
    let step = crate::exec::morsel_rows(&engine.config()).max(1);
    let morsels: usize = selected.iter().map(|len| len.div_ceil(step)).sum();
    Some(crate::exec::scan_worker_count(budget, morsels, total))
}

/// Mirror of the executor's morsel-parallel aggregation gate
/// (`try_parallel_aggregate`): a plain base-table scan input, sub-query-free
/// group and aggregate expressions, and a scan the pool would engage.
fn aggregate_pools(engine: &Engine, agg: &HashAggregate) -> bool {
    let Plan::SeqScan(scan) = agg.input.as_ref() else {
        return false;
    };
    if agg.group_exprs.iter().any(contains_subquery)
        || agg
            .aggregates
            .iter()
            .any(|c| c.args.iter().any(contains_subquery))
    {
        return false;
    }
    scan_pool_workers(engine, scan).is_some_and(|workers| workers > 1)
}

fn render(engine: &Engine, plan: &Plan, depth: usize, out: &mut String) {
    indent(out, depth);
    match plan {
        Plan::Empty { .. } => out.push_str("Result [one empty row]\n"),
        Plan::SeqScan(scan) => {
            out.push_str(&format!("SeqScan {}", scan.table));
            if !scan.binding.eq_ignore_ascii_case(&scan.table) {
                out.push_str(&format!(" AS {}", scan.binding));
            }
            let mut notes: Vec<String> = Vec::new();
            if !scan.residual.is_empty() {
                notes.push(format!("filter: {}", join_exprs(&scan.residual)));
            }
            match (&scan.prune_keys, engine.database().table(&scan.table)) {
                (Some(keys), Ok(table)) => {
                    let total = table.partition_count();
                    let selected = keys.iter().filter(|k| table.partition_len(**k) > 0).count();
                    notes.push(format!(
                        "prune: {} -> {}/{} partitions ({} pruned)",
                        join_exprs(&scan.pruning),
                        selected,
                        total,
                        total.saturating_sub(selected),
                    ));
                }
                (Some(keys), Err(_)) => {
                    notes.push(format!(
                        "prune: {} -> {} key(s)",
                        join_exprs(&scan.pruning),
                        keys.len()
                    ));
                }
                (None, _) => {}
            }
            if !scan.param_pruning.is_empty() {
                notes.push(format!(
                    "prune at bind: {}",
                    join_exprs(&scan.param_pruning)
                ));
            }
            // `vectorized` marks scans over columnar buckets: predicates run
            // as column kernels, rows late-materialize. A hybrid scan runs
            // the compiled conjuncts vectorized and interprets the rest on
            // the surviving rows.
            let compiles_fast = Executor::new(engine).scan_compiles_fast(scan);
            if let Ok(table) = engine.database().table(&scan.table) {
                if table.is_columnar() && table.partition_count() > 0 {
                    if compiles_fast {
                        notes.push("vectorized".to_string());
                    } else {
                        notes.push("vectorized: hybrid (interpreted conjunct)".to_string());
                    }
                    // `dict` marks scans over buckets holding at least one
                    // dictionary-encoded column: string predicates on those
                    // columns resolve against the dictionary once and
                    // compare codes, and dictionary group keys group on
                    // codes.
                    if table.dict_column_count() > 0 {
                        notes.push("dict".to_string());
                    }
                }
            }
            // Morsel engagement: the worker pool engages whenever the
            // configured budget allows more than one worker over the scan's
            // morsels. Interpreted conjuncts run *hybrid* on the workers, so
            // they no longer force a serial scan. Worker counts are elided
            // (and the `MT_THREADS` execution-time override deliberately
            // ignored) so the rendering stays stable across machines and CI
            // matrix legs.
            if let Some(workers) = scan_pool_workers(engine, scan) {
                if workers > 1 {
                    notes.push("morsel: parallel".to_string());
                } else {
                    notes.push("morsel: off (scan too small)".to_string());
                }
            }
            if !notes.is_empty() {
                out.push_str(&format!(" [{}]", notes.join("; ")));
            }
            out.push('\n');
        }
        Plan::Filter { input, predicates } => {
            out.push_str(&format!("Filter [{}]\n", join_exprs(predicates)));
            render(engine, input, depth + 1, out);
        }
        Plan::HashJoin {
            left,
            right,
            keys,
            residual,
            kind,
            ..
        } => {
            let keys_text = keys
                .iter()
                .map(|(l, r)| format!("{l} = {r}"))
                .collect::<Vec<_>>()
                .join(" AND ");
            // Plain SQL joins keep the historic `HashJoin Inner`/`Left`
            // rendering; the decorrelated variants get their own labels plus
            // a note on how the build-side key set reaches the probe side.
            let kind_text = match kind {
                JoinVariant::Plain(k) => format!("{k:?}"),
                JoinVariant::Semi => "semi".to_string(),
                JoinVariant::Anti => "anti".to_string(),
                JoinVariant::Single => "agg-join".to_string(),
            };
            out.push_str(&format!("HashJoin {kind_text} [{keys_text}]"));
            if !residual.is_empty() {
                out.push_str(&format!(" [residual: {}]", join_exprs(residual)));
            }
            match kind {
                JoinVariant::Semi => out.push_str(" [bloom: build-key kernel on probe scan]"),
                JoinVariant::Anti | JoinVariant::Single => {
                    out.push_str(" [bloom: build-key set probe]")
                }
                JoinVariant::Plain(_) => {}
            }
            out.push('\n');
            render(engine, left, depth + 1, out);
            render(engine, right, depth + 1, out);
        }
        Plan::NestedLoopJoin {
            left,
            right,
            predicates,
            kind,
            ..
        } => {
            out.push_str(&format!("NestedLoopJoin {kind:?}"));
            if !predicates.is_empty() {
                out.push_str(&format!(" [{}]", join_exprs(predicates)));
            }
            out.push('\n');
            render(engine, left, depth + 1, out);
            render(engine, right, depth + 1, out);
        }
        Plan::Subquery { input, alias, .. } => {
            out.push_str(&format!("Subquery AS {alias}\n"));
            render(engine, input, depth + 1, out);
        }
        Plan::Project(p) => {
            out.push_str(&format!("Project [{} cols", p.visible_width));
            if p.items.len() > p.visible_width {
                out.push_str(&format!(
                    " + {} hidden sort keys",
                    p.items.len() - p.visible_width
                ));
            }
            if p.distinct {
                out.push_str("; distinct");
            }
            out.push_str("]\n");
            render(engine, &p.input, depth + 1, out);
        }
        Plan::HashAggregate(a) => {
            out.push_str("HashAggregate [");
            if a.group_exprs.is_empty() {
                out.push_str("global");
            } else {
                let group_list = a
                    .group_exprs
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!("group by: {group_list}"));
            }
            out.push_str(&format!("; aggregates: {}", a.aggregates.len()));
            if a.having.is_some() {
                out.push_str("; having");
            }
            if a.distinct {
                out.push_str("; distinct");
            }
            // `morsel partials` marks aggregations whose whole
            // scan→filter→partial-aggregate pipeline runs on the worker
            // pool, partial states merged in morsel order (worker count
            // elided for snapshot stability).
            if aggregate_pools(engine, a) {
                out.push_str("; morsel partials");
            }
            out.push_str("]\n");
            render(engine, &a.input, depth + 1, out);
        }
        Plan::Sort { input, keys, .. } => {
            let names = input.schema().names();
            let keys_text = keys
                .iter()
                .map(|k| {
                    let name = names
                        .get(k.col)
                        .cloned()
                        .unwrap_or_else(|| format!("$hidden{}", k.col - names.len()));
                    format!("{}{}", name, if k.asc { "" } else { " DESC" })
                })
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!("Sort [{keys_text}]\n"));
            render(engine, input, depth + 1, out);
        }
        Plan::Limit { input, limit } => {
            out.push_str(&format!("Limit [{limit}]\n"));
            render(engine, input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, EngineConfig};

    fn engine() -> Engine {
        let mut e = Engine::new(EngineConfig::default());
        e.create_table("t", &["ttid", "a", "b"]);
        e.set_table_partition("t", "ttid").unwrap();
        e.create_table("u", &["ttid", "a"]);
        e
    }

    fn plan_of(e: &Engine, sql: &str) -> Plan {
        Planner::new(e)
            .plan_query(&mtsql::parse_query(sql).unwrap())
            .unwrap()
    }

    fn find_scan<'p>(plan: &'p Plan, table: &str) -> Option<&'p SeqScan> {
        match plan {
            Plan::SeqScan(s) => (s.table == table).then_some(s),
            Plan::Empty { .. } => None,
            Plan::Filter { input, .. }
            | Plan::Subquery { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. } => find_scan(input, table),
            Plan::Project(p) => find_scan(&p.input, table),
            Plan::HashAggregate(a) => find_scan(&a.input, table),
            Plan::HashJoin { left, right, .. } | Plan::NestedLoopJoin { left, right, .. } => {
                find_scan(left, table).or_else(|| find_scan(right, table))
            }
        }
    }

    #[test]
    fn scan_pushdown_and_pruning_keys() {
        let e = engine();
        let plan = plan_of(&e, "SELECT a FROM t WHERE ttid IN (1, 2) AND b > 5");
        let scan = find_scan(&plan, "t").unwrap();

        assert_eq!(scan.pruning.len(), 1);
        assert_eq!(scan.residual.len(), 1);
        assert_eq!(scan.prune_keys, Some([1, 2].into_iter().collect()));
    }

    #[test]
    fn pruning_disabled_keeps_predicates_as_residual() {
        let mut e = Engine::new(EngineConfig {
            partition_pruning: false,
            ..EngineConfig::default()
        });
        e.create_table("t", &["ttid", "a"]);
        e.set_table_partition("t", "ttid").unwrap();
        let plan = plan_of(&e, "SELECT a FROM t WHERE ttid = 1");
        let scan = find_scan(&plan, "t").unwrap();
        assert!(scan.prune_keys.is_none());
        assert_eq!(scan.residual.len(), 1);
    }

    #[test]
    fn conjuncts_transpose_through_derived_projection() {
        let e = engine();
        let plan = plan_of(
            &e,
            "SELECT x.v FROM (SELECT ttid AS tid, a AS v FROM t) AS x WHERE x.tid = 1",
        );
        let scan = find_scan(&plan, "t").unwrap();
        assert_eq!(
            scan.prune_keys,
            Some([1].into_iter().collect()),
            "the outer tid = 1 filter must prune inside the derived table"
        );
    }

    #[test]
    fn transposition_pushes_group_key_filters_only() {
        let e = engine();
        // Group-key filter: pushed below the aggregation.
        let plan = plan_of(
            &e,
            "SELECT g.t FROM (SELECT ttid AS t, SUM(a) AS s FROM t GROUP BY ttid) AS g \
             WHERE g.t = 2",
        );
        let scan = find_scan(&plan, "t").unwrap();
        assert_eq!(scan.prune_keys, Some([2].into_iter().collect()));

        // Aggregate-output filter: must stay above the sub-query.
        let plan = plan_of(
            &e,
            "SELECT g.t FROM (SELECT ttid AS t, SUM(a) AS s FROM t GROUP BY ttid) AS g \
             WHERE g.s > 10",
        );
        let scan = find_scan(&plan, "t").unwrap();
        assert!(scan.nothing_pushed());
    }

    #[test]
    fn transposition_into_fromless_subquery_keeps_filter_above() {
        // The sub-query has no FROM, so there is no conjunct pool to push
        // into; the filter must stay above the materialized single row.
        let e = engine();
        let rs = e
            .query("SELECT x.v FROM (SELECT 1 AS v) AS x WHERE x.v = 2")
            .unwrap();
        assert!(rs.rows.is_empty(), "filter was dropped: {rs:?}");
        let rs = e
            .query("SELECT x.v FROM (SELECT 1 AS v) AS x WHERE x.v = 1")
            .unwrap();
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn having_aggregates_block_transposition() {
        // An aggregate that appears only in HAVING still makes the sub-query
        // a (global) aggregation; pushing the filter below it would change
        // the group the HAVING condition sees.
        let mut e = engine();
        e.insert_values(
            "t",
            [1i64, 2, 2]
                .into_iter()
                .map(|t| {
                    vec![
                        crate::Value::Int(t),
                        crate::Value::Int(0),
                        crate::Value::Int(0),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let rs = e
            .query(
                "SELECT g.t FROM (SELECT ttid AS t FROM t HAVING COUNT(*) > 2) AS g \
                 WHERE g.t = 1",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 1, "COUNT(*) must see all 3 rows: {rs:?}");
    }

    #[test]
    fn alias_shadowing_does_not_fool_group_key_check() {
        // `b AS a` shadows the real column `a`, so GROUP BY a actually groups
        // on b (alias substitution). A filter on `orig` (the real a) must NOT
        // be pushed below the aggregation even though the raw GROUP BY list
        // literally contains Column(a).
        let mut e = Engine::new(EngineConfig::default());
        e.create_table("t", &["a", "b"]);
        e.insert_values(
            "t",
            vec![
                vec![crate::Value::Int(1), crate::Value::Int(10)],
                vec![crate::Value::Int(2), crate::Value::Int(10)],
            ],
        )
        .unwrap();
        let unfiltered = e
            .query("SELECT g.orig FROM (SELECT b AS a, a AS orig, COUNT(*) AS c FROM t GROUP BY a) AS g")
            .unwrap();
        let filtered = e
            .query(
                "SELECT g.orig FROM (SELECT b AS a, a AS orig, COUNT(*) AS c FROM t GROUP BY a) AS g \
                 WHERE g.orig = 2",
            )
            .unwrap();
        // Every filtered row must exist in the unfiltered derived output.
        for row in &filtered.rows {
            assert!(
                unfiltered.rows.contains(row),
                "filter manufactured row {row:?}; unfiltered output: {unfiltered:?}"
            );
        }
    }

    #[test]
    fn cast_constants_still_prune() {
        let e = engine();
        let plan = plan_of(&e, "SELECT a FROM t WHERE ttid = CAST('3' AS INTEGER)");
        let scan = find_scan(&plan, "t").unwrap();
        assert_eq!(scan.prune_keys, Some([3].into_iter().collect()));
    }

    #[test]
    fn limit_blocks_transposition() {
        let e = engine();
        let plan = plan_of(
            &e,
            "SELECT x.v FROM (SELECT a AS v FROM t LIMIT 3) AS x WHERE x.v > 1",
        );
        let scan = find_scan(&plan, "t").unwrap();
        assert!(scan.nothing_pushed());
    }

    #[test]
    fn order_by_output_column_needs_no_hidden_keys() {
        let e = engine();
        let plan = plan_of(&e, "SELECT a, b FROM t ORDER BY b DESC");
        let Plan::Sort { keys, prune_to, .. } = &plan else {
            panic!("expected Sort at the top, got {plan:?}");
        };
        assert_eq!(keys.len(), 1);
        assert_eq!(keys[0].col, 1);
        assert!(!keys[0].asc);
        assert!(prune_to.is_none());
    }

    #[test]
    fn order_by_non_projected_column_adds_hidden_key() {
        let e = engine();
        let plan = plan_of(&e, "SELECT a FROM t ORDER BY b");
        let Plan::Sort {
            keys,
            prune_to,
            input,
        } = &plan
        else {
            panic!("expected Sort at the top, got {plan:?}");
        };
        assert_eq!(keys[0].col, 1);
        assert_eq!(*prune_to, Some(1));
        let Plan::Project(p) = input.as_ref() else {
            panic!("expected Project below Sort");
        };
        assert_eq!(p.items.len(), 2);
        assert_eq!(p.visible_width, 1);
    }

    #[test]
    fn equi_join_becomes_hash_join() {
        let e = engine();
        let plan = plan_of(
            &e,
            "SELECT t.a FROM t, u WHERE t.a = u.a AND t.ttid = u.ttid",
        );
        fn has_hash_join(p: &Plan) -> bool {
            match p {
                Plan::HashJoin { .. } => true,
                Plan::Filter { input, .. }
                | Plan::Subquery { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. } => has_hash_join(input),
                Plan::Project(p) => has_hash_join(&p.input),
                Plan::HashAggregate(a) => has_hash_join(&a.input),
                _ => false,
            }
        }
        assert!(has_hash_join(&plan));
    }

    #[test]
    fn fromless_select_applies_constant_where() {
        let e = engine();
        assert!(e.query("SELECT 1 WHERE 1 = 0").unwrap().rows.is_empty());
        assert_eq!(e.query("SELECT 1 WHERE 1 = 1").unwrap().rows.len(), 1);
    }

    #[test]
    fn aliases_substitute_inside_composite_expressions() {
        let mut e = engine();
        e.insert_values(
            "t",
            (0..3)
                .map(|i| {
                    vec![
                        crate::Value::Int(i),
                        crate::Value::Int(i * 10),
                        crate::Value::Int(0),
                    ]
                })
                .collect(),
        )
        .unwrap();
        // Alias used inside BETWEEN in HAVING.
        let rs = e
            .query("SELECT ttid, SUM(a) AS s FROM t GROUP BY ttid HAVING s BETWEEN 5 AND 100")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        // Alias used inside CASE in ORDER BY.
        let rs = e
            .query("SELECT a AS v FROM t ORDER BY CASE WHEN v > 5 THEN 0 ELSE 1 END, v")
            .unwrap();
        assert_eq!(rs.rows[0][0], crate::Value::Int(10));
    }

    #[test]
    fn alias_substitution() {
        let aliases: HashMap<String, Expr> = [(
            "revenue".to_string(),
            mtsql::parse_expression("SUM(l_extendedprice)").unwrap(),
        )]
        .into_iter()
        .collect();
        let e = mtsql::parse_expression("revenue").unwrap();
        let s = substitute_aliases(&e, &aliases);
        assert!(matches!(s, Expr::Function(_)));
    }

    #[test]
    fn explain_reports_morsel_engagement_only_when_the_scan_would_pool() {
        let mut e = Engine::new(EngineConfig::default().with_parallel_scan(4));
        e.create_table("big", &["ttid", "v"]);
        e.insert_values(
            "big",
            (0..16384)
                .map(|i| vec![crate::Value::Int(i % 4), crate::Value::Int(i)])
                .collect(),
        )
        .unwrap();
        e.set_table_partition("big", "ttid").unwrap();
        let plan = plan_of(&e, "SELECT v FROM big WHERE v >= 0");
        let text = explain(&e, &plan);
        assert!(text.contains("morsel: parallel"), "{text}");

        // Interpreted residual conjuncts run hybrid on the workers now —
        // they no longer force a serial scan.
        let plan = plan_of(&e, "SELECT v FROM big WHERE v + 0 >= 0");
        let text = explain(&e, &plan);
        assert!(text.contains("morsel: parallel"), "{text}");

        // An aggregate over a pool-sized scan advertises partial-state
        // merging; worker counts are elided everywhere for golden stability.
        let plan = plan_of(&e, "SELECT SUM(v) FROM big WHERE v >= 0");
        let text = explain(&e, &plan);
        assert!(text.contains("morsel partials"), "{text}");
        assert!(!text.contains("workers"), "{text}");

        // A scoped scan below the row threshold must say so instead.
        let plan = plan_of(&e, "SELECT v FROM big WHERE ttid = 1 AND v >= 0");
        let text = explain(&e, &plan);
        assert!(text.contains("morsel: off (scan too small)"), "{text}");
    }

    #[test]
    fn explain_renders_scan_pruning() {
        let mut e = engine();
        e.insert_values(
            "t",
            (0..3)
                .map(|t| {
                    vec![
                        crate::Value::Int(t),
                        crate::Value::Int(t * 10),
                        crate::Value::Int(0),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let plan = plan_of(&e, "SELECT a FROM t WHERE ttid = 1 AND b < 5");
        let text = explain(&e, &plan);
        assert!(text.contains("SeqScan t"), "{text}");
        assert!(text.contains("1/3 partitions (2 pruned)"), "{text}");
        assert!(text.contains("filter: (b < 5)"), "{text}");
    }
}

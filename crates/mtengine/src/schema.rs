//! Runtime schemas: ordered lists of (optionally qualified) column names used
//! to resolve column references during execution.

use crate::error::{err, Result};
use mtsql::ast::ColumnRef;

/// One column of a runtime schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaCol {
    /// Table name or alias this column is bound under (`None` for computed
    /// columns of derived results).
    pub qualifier: Option<String>,
    /// Column (or alias) name.
    pub name: String,
}

/// An ordered set of columns describing the rows flowing through an operator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    pub cols: Vec<SchemaCol>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schema with a single qualifier applied to every column name.
    pub fn qualified(qualifier: &str, names: &[String]) -> Self {
        Schema {
            cols: names
                .iter()
                .map(|n| SchemaCol {
                    qualifier: Some(qualifier.to_string()),
                    name: n.clone(),
                })
                .collect(),
        }
    }

    /// Schema of unqualified column names (query outputs).
    pub fn unqualified(names: &[String]) -> Self {
        Schema {
            cols: names
                .iter()
                .map(|n| SchemaCol {
                    qualifier: None,
                    name: n.clone(),
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// `true` if there are no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Concatenate two schemas (used by joins).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Schema { cols }
    }

    /// Column names without qualifiers (used to surface query results).
    pub fn names(&self) -> Vec<String> {
        self.cols.iter().map(|c| c.name.clone()).collect()
    }

    /// Resolve a column reference to an index, if present.
    ///
    /// Qualified references must match both qualifier and name; unqualified
    /// references match by name only. Matching is case-insensitive. When an
    /// unqualified name is ambiguous the *first* match wins (rewritten queries
    /// qualify everything that could be ambiguous).
    pub fn resolve(&self, col: &ColumnRef) -> Option<usize> {
        match &col.table {
            Some(q) => self.cols.iter().position(|c| {
                c.qualifier
                    .as_deref()
                    .is_some_and(|cq| cq.eq_ignore_ascii_case(q))
                    && c.name.eq_ignore_ascii_case(&col.name)
            }),
            None => self
                .cols
                .iter()
                .position(|c| c.name.eq_ignore_ascii_case(&col.name)),
        }
    }

    /// Like [`Schema::resolve`] but producing an error mentioning the column.
    pub fn resolve_required(&self, col: &ColumnRef) -> Result<usize> {
        self.resolve(col)
            .ok_or(())
            .or_else(|_| err(format!("unknown column `{}`", col.to_display())))
    }

    /// All indices belonging to the given qualifier (for `alias.*`).
    pub fn indices_of_qualifier(&self, qualifier: &str) -> Vec<usize> {
        self.cols
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.qualifier
                    .as_deref()
                    .is_some_and(|q| q.eq_ignore_ascii_case(qualifier))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colref(table: Option<&str>, name: &str) -> ColumnRef {
        ColumnRef {
            table: table.map(|s| s.to_string()),
            name: name.to_string(),
        }
    }

    #[test]
    fn resolves_qualified_and_unqualified() {
        let s = Schema::qualified("E", &["E_name".into(), "E_salary".into()]);
        assert_eq!(s.resolve(&colref(Some("E"), "E_salary")), Some(1));
        assert_eq!(s.resolve(&colref(None, "e_name")), Some(0));
        assert_eq!(s.resolve(&colref(Some("R"), "E_salary")), None);
    }

    #[test]
    fn concat_preserves_order_and_ambiguity_resolution() {
        let a = Schema::qualified("E1", &["ttid".into(), "E_salary".into()]);
        let b = Schema::qualified("E2", &["ttid".into(), "E_salary".into()]);
        let joined = a.concat(&b);
        assert_eq!(joined.len(), 4);
        // unqualified picks the first occurrence
        assert_eq!(joined.resolve(&colref(None, "ttid")), Some(0));
        assert_eq!(joined.resolve(&colref(Some("E2"), "ttid")), Some(2));
    }

    #[test]
    fn qualifier_indices() {
        let a = Schema::qualified("E", &["a".into(), "b".into()]);
        let b = Schema::qualified("R", &["c".into()]);
        let joined = a.concat(&b);
        assert_eq!(joined.indices_of_qualifier("R"), vec![2]);
        assert_eq!(joined.indices_of_qualifier("e"), vec![0, 1]);
    }

    #[test]
    fn resolve_required_reports_column_name() {
        let s = Schema::unqualified(&["x".into()]);
        let e = s.resolve_required(&colref(None, "missing")).unwrap_err();
        assert!(e.message.contains("missing"));
    }
}

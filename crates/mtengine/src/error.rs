//! Engine error type.

use std::fmt;

/// Classifies an [`EngineError`] so callers can react to durability and
/// isolation failures without string-matching the message.
///
/// The distinction matters on the WAL path: a [`Corrupt`](EngineErrorKind)
/// or [`ShortRead`](EngineErrorKind) tail is *expected* after a crash and
/// recovery degrades gracefully (replay stops at the last committed record),
/// whereas the same condition surfaced as a panic would take the whole
/// process down while it is trying to come back up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineErrorKind {
    /// Plain execution error (unknown table, type mismatch, ...).
    #[default]
    General,
    /// An operating-system I/O error (open, write, fsync, ...).
    Io,
    /// The WAL ended mid-record: fewer bytes on disk than the length prefix
    /// promised. Normal after a torn write; replay stops here.
    ShortRead,
    /// A record failed its checksum or structural validation.
    Corrupt,
    /// Shared state was poisoned by a panicking writer (or a simulated
    /// crash left the WAL writer permanently dead).
    Poisoned,
    /// A pinned snapshot can no longer be served because the underlying
    /// storage was destructively rewritten (UPDATE/DELETE/re-layout).
    SnapshotInvalidated,
    /// The static plan verifier ([`crate::verify`]) rejected a physical
    /// plan before execution: a structural invariant of the operator DAG
    /// (schema arithmetic, column bounds, join-variant rules, pruning or
    /// parameter discipline) did not hold. Execution never starts on such
    /// a plan — the error names the operator and the violated invariant.
    Plan,
    /// Two (or more) open transactions wait on each other's writer locks in
    /// a cycle; this transaction was chosen as the victim and must roll
    /// back. Retrying the whole transaction is the standard client response.
    Deadlock,
    /// A writer-lock acquisition exceeded its wait budget without a
    /// detected cycle — the holder is just slow (e.g. a long statement or a
    /// stalled client), not provably deadlocked.
    LockTimeout,
}

/// Errors produced while executing statements against the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    pub message: String,
    kind: EngineErrorKind,
}

impl EngineError {
    /// Create a new error of the [`General`](EngineErrorKind::General) kind.
    pub fn new(message: impl Into<String>) -> Self {
        EngineError {
            message: message.into(),
            kind: EngineErrorKind::General,
        }
    }

    /// Create a new error with an explicit kind.
    pub fn with_kind(kind: EngineErrorKind, message: impl Into<String>) -> Self {
        EngineError {
            message: message.into(),
            kind,
        }
    }

    /// The error's classification.
    pub fn kind(&self) -> EngineErrorKind {
        self.kind
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine error: {}", self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<mtsql::ParseError> for EngineError {
    fn from(e: mtsql::ParseError) -> Self {
        EngineError::new(e.to_string())
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::with_kind(EngineErrorKind::Io, format!("io error: {e}"))
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Shorthand constructor used throughout the engine.
pub fn err<T>(message: impl Into<String>) -> Result<T> {
    Err(EngineError::new(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = EngineError::new("no such table `t`");
        assert!(e.to_string().contains("no such table"));
        assert_eq!(e.kind(), EngineErrorKind::General);
    }

    #[test]
    fn parse_error_converts() {
        let pe = mtsql::ParseError::new("boom");
        let ee: EngineError = pe.into();
        assert!(ee.message.contains("boom"));
    }

    #[test]
    fn kinds_survive_construction() {
        let e = EngineError::with_kind(EngineErrorKind::Corrupt, "bad crc");
        assert_eq!(e.kind(), EngineErrorKind::Corrupt);
        let io: EngineError = std::io::Error::other("disk on fire").into();
        assert_eq!(io.kind(), EngineErrorKind::Io);
    }
}

//! Engine error type.

use std::fmt;

/// Errors produced while executing statements against the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineError {
    pub message: String,
}

impl EngineError {
    /// Create a new error.
    pub fn new(message: impl Into<String>) -> Self {
        EngineError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "engine error: {}", self.message)
    }
}

impl std::error::Error for EngineError {}

impl From<mtsql::ParseError> for EngineError {
    fn from(e: mtsql::ParseError) -> Self {
        EngineError::new(e.to_string())
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Shorthand constructor used throughout the engine.
pub fn err<T>(message: impl Into<String>) -> Result<T> {
    Err(EngineError::new(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = EngineError::new("no such table `t`");
        assert!(e.to_string().contains("no such table"));
    }

    #[test]
    fn parse_error_converts() {
        let pe = mtsql::ParseError::new("boom");
        let ee: EngineError = pe.into();
        assert!(ee.message.contains("boom"));
    }
}

//! `mtengine` — the in-memory relational SQL engine MTBase executes rewritten
//! queries against.
//!
//! The paper runs MTBase on top of PostgreSQL and a commercial DBMS
//! ("System C"); this crate is the substitute substrate: a from-scratch SQL
//! executor with the two properties the evaluation depends on:
//!
//! 1. realistic per-call cost for scalar UDFs (conversion functions), and
//! 2. optional caching of immutable UDF results — enabled it behaves like
//!    PostgreSQL, disabled it behaves like System C.
//!
//! # Storage layout
//!
//! Tables hand rows out behind reference-counted [`table::SharedRow`]
//! handles (`Arc<[Value]>`, with strings interned as `Arc<str>`), so
//! relations flowing through the executor share storage with the base
//! tables instead of deep-cloning it. A table may declare a **partition
//! column** via [`Engine::set_table_partition`] — for the MTBase
//! shared-table layout this is the invisible `ttid` — which buckets rows
//! per tenant:
//!
//! ```text
//! Table "lineitem" (partition column: ttid, columnar layout)
//!   bucket ttid=1 → col₀[i64…] col₁[f64…] col₂[Arc<str>…] … + null bitmaps
//!   bucket ttid=2 → …                    ← skipped entirely when 2 ∉ D
//!   ...
//!   loose rows    → [row, row, ...]      ← non-integer partition keys
//! ```
//!
//! With [`EngineConfig::columnar_scan`] (the default) each bucket stores one
//! typed [`table::ColumnVec`] array per column plus a null bitmap; scans
//! evaluate compiled predicates **vectorized**, column-at-a-time over a
//! selection bitmap ([`conjuncts::eval_vectorized`]), and *late-materialize*
//! a `SharedRow` only for the qualifying row ids. Disabling the flag keeps
//! the PR 1 row layout (`Vec<SharedRow>` buckets) as the equivalence
//! baseline — results must be byte-identical either way.
//!
//! Base-table scans evaluate the single-table WHERE conjuncts *during* the
//! scan (non-qualifying rows are never materialized) and recognise
//! `ttid = k` / `ttid IN (...)` conjuncts — the D-filters every rewritten
//! MT-H query carries — to skip foreign tenants' buckets without touching
//! their rows, making tenant-scoped queries scale with |D| instead of the
//! total tenant count T.
//!
//! # Physical plans
//!
//! Query execution is split into **plan → execute**: [`plan::Planner`]
//! lowers a query into an operator DAG ([`plan::Plan`] — `SeqScan` with
//! pushed conjuncts and pruning keys, `Filter`, `HashJoin`,
//! `NestedLoopJoin`, `HashAggregate`, `Sort`, `Limit`, `Project`,
//! `Subquery`), and [`exec::Executor`] walks that DAG. Pushdown is a plan
//! transformation, so it also crosses derived-table boundaries (conjuncts
//! transpose through sub-select projections onto the base scans), and large
//! scans run *morsel-driven*: the selected buckets are split into fixed-size
//! row-range morsels ([`EngineConfig::morsel_rows`]) pulled by a scoped
//! worker pool (`EngineConfig::parallel_scan`, overridable at execution time
//! through the `MT_THREADS` environment variable). Each worker runs the
//! whole pipeline per morsel — predicate kernels, late materialization and,
//! when the scan feeds a `HashAggregate`, per-worker partial aggregation
//! states merged in morsel order — so results are bit-identical to a serial
//! scan. Interpreted (non-fast-form) conjuncts run hybrid on the workers:
//! kernels narrow the selection first, survivors are checked interpreted.
//! `EXPLAIN <query>` (or [`Engine::explain_query`]) renders the plan,
//! including pushed conjuncts, live partition-pruning counts and morsel
//! engagement.
//!
//! # Parameters and cursors
//!
//! Plans are plain owned data, so callers may lower once
//! ([`Engine::plan_query`]) and re-execute many times
//! ([`Engine::execute_plan`]) with different bound parameter values —
//! `Expr::Param` placeholders evaluate against the executor's bound slice,
//! and partition-key predicates over parameters (`ttid = $1`) re-resolve
//! their pruning key sets at execution time. [`Engine::row_iter`] (and the
//! lower-level [`Engine::fetch_cursor_batch`]) stream pipeline-able plans
//! batch-at-a-time instead of materializing the full result — see the
//! [`cursor`] module. The MTBase middleware builds its prepared-statement
//! API on exactly these entry points.
//!
//! # Observability
//!
//! [`stats::StatsSnapshot`] exposes `rows_scanned` (rows actually visited,
//! after pruning), `partitions_scanned` / `partitions_pruned` (bucket
//! accounting per scan), `parallel_scans` (scans that fanned out to worker
//! threads), `morsels_dispatched` / `morsel_workers` / `partial_agg_merges`
//! (morsel-pool accounting: row ranges pulled by workers, workers spawned,
//! and partial aggregate states merged back into the final aggregate),
//! `rows_vectorized` / `late_materialized` (columnar-scan
//! accounting: rows covered by column kernels vs. rows actually built) and
//! the UDF call/cache counters. Pruning can be disabled per engine
//! (`EngineConfig::partition_pruning`) to recover the full-scan baseline
//! for comparisons; results must be identical either way.
//!
//! # Example
//!
//! ```
//! use mtengine::{Engine, EngineConfig, Value};
//!
//! let mut engine = Engine::new(EngineConfig::default());
//! engine.create_table("t", &["a", "b"]);
//! engine
//!     .insert_values("t", vec![vec![Value::Int(1), Value::str("x")],
//!                              vec![Value::Int(2), Value::str("y")]])
//!     .unwrap();
//! let rs = engine.query("SELECT a FROM t WHERE b = 'y'").unwrap();
//! assert_eq!(rs.rows, vec![vec![Value::Int(2)]]);
//! ```

pub mod conjuncts;
pub mod cursor;
pub mod decorrelate;
pub mod error;
pub mod exec;
pub mod lock;
pub mod plan;
pub mod schema;
pub mod stats;
pub mod table;
pub mod txn;
pub mod udf;
pub mod value;
pub mod verify;
pub mod wal;

use std::path::Path;
use std::sync::Arc;

use mtsql::ast::{InsertSource, Query, Statement};

use crate::exec::{Env, Executor, Relation};
use crate::schema::Schema;
use crate::stats::{EngineCounters, StatsSnapshot};
use crate::table::{Database, Row, Table};
use crate::udf::{UdfImpl, UdfRegistry};

pub use crate::cursor::{CursorBatch, CursorState, RowIter, DEFAULT_BATCH_ROWS};
pub use crate::error::{EngineError, EngineErrorKind, Result};
pub use crate::lock::{LockManager, LockTarget};
pub use crate::txn::Transaction;
pub use crate::value::Value;
pub use crate::verify::{PlanError, PlanErrorClass};
pub use crate::wal::{CrashMode, FailpointClock, MetaOp, WalHandle};

/// Default morsel size in rows (see [`EngineConfig::morsel_rows`]).
pub const DEFAULT_MORSEL_ROWS: usize = 4096;

/// Validate the process-wide environment overrides eagerly: `MT_THREADS`
/// (positive integer), `MT_VERIFY` (`1`/`true`/`on` or `0`/`false`/`off`)
/// and `WAL_FAULT_MODE` (a [`CrashMode`] name). The lazy readers of these
/// variables run deep inside execution where "could not parse" has no good
/// answer, so they ignore malformed values — the MTBase server calls this
/// at startup instead, turning a typo'd override into a clear startup error
/// rather than a silently applied default.
pub fn validate_env_overrides() -> Result<()> {
    if let Ok(raw) = std::env::var("MT_THREADS") {
        let valid = raw.trim().parse::<usize>().map(|n| n > 0).unwrap_or(false);
        if !valid {
            return error::err(format!(
                "invalid MT_THREADS value `{raw}`: expected a positive integer \
                 (the parallel-scan worker budget)"
            ));
        }
    }
    if let Ok(raw) = std::env::var("MT_VERIFY") {
        let valid = matches!(
            raw.trim().to_ascii_lowercase().as_str(),
            "1" | "true" | "on" | "0" | "false" | "off"
        );
        if !valid {
            return error::err(format!(
                "invalid MT_VERIFY value `{raw}`: expected 1/true/on or 0/false/off \
                 (the static plan verifier override)"
            ));
        }
    }
    if let Ok(raw) = std::env::var("WAL_FAULT_MODE") {
        if let Err(e) = wal::CrashMode::parse(raw.trim()) {
            return error::err(format!("invalid WAL_FAULT_MODE value: {e}"));
        }
    }
    Ok(())
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Cache results of `IMMUTABLE` UDFs keyed by their arguments
    /// (PostgreSQL-like). Disable to model "System C".
    pub cache_immutable_udfs: bool,
    /// Skip partition buckets that `ttid = k` / `ttid IN (...)` scan
    /// predicates exclude. Disabling falls back to full scans (the pre-
    /// partitioning behaviour) — useful as a benchmark baseline.
    pub partition_pruning: bool,
    /// Maximum worker threads a single base-table scan may fan out to. `0`
    /// or `1` scans serially. Pooled scans split their selected buckets into
    /// fixed-size row-range morsels (see [`EngineConfig::morsel_rows`])
    /// pulled by the workers, and per-morsel outputs — row batches, or
    /// partial aggregate states when the scan feeds a `HashAggregate` — are
    /// merged in morsel order, so results are identical to a serial scan.
    /// Interpreted conjuncts run hybrid on the workers (kernels first,
    /// interpreted evaluation on survivors). The `MT_THREADS` environment
    /// variable, when set to a positive integer, overrides this budget at
    /// execution time for every engine in the process (deterministic
    /// bench/CI runs force the pool on without touching deployment
    /// configuration); `EXPLAIN` keeps reporting the configured budget.
    pub parallel_scan: usize,
    /// Rows per morsel — the unit of work the pool's workers pull. Smaller
    /// morsels balance better across workers; larger ones amortize per-morsel
    /// overhead. `0` falls back to the default (4096). Scans smaller than
    /// one pool engagement threshold (8192 rows) always run serially.
    pub morsel_rows: usize,
    /// Store partition buckets in the columnar layout (typed per-column
    /// arrays + null bitmaps) and scan them vectorized: compiled predicates
    /// run as column kernels over a selection bitmap and only qualifying
    /// rows are late-materialized. Disabling keeps the row layout
    /// (`Vec<SharedRow>` buckets) — the equivalence baseline; result sets
    /// are identical either way. One caveat: hybrid columnar scans evaluate
    /// the compiled conjuncts before interpreted ones regardless of their
    /// WHERE-clause order, so an interpreted conjunct that would *error*
    /// (e.g. divide by zero) on a row a compiled conjunct rejects is never
    /// evaluated — such a query can fail on the row layout and succeed on
    /// the columnar one.
    pub columnar_scan: bool,
    /// Dictionary-encode low-cardinality string columns of columnar buckets:
    /// a `u32` code array plus a shared sorted dictionary per column, with
    /// automatic demotion to the plain layout past
    /// [`table::DICT_MAX_DISTINCT`] distinct values. Scans resolve string
    /// predicates against the dictionary once and compare codes
    /// ([`conjuncts::dict_filter_bitmap`]), and `GROUP BY` over dictionary
    /// columns groups on codes. Only effective together with
    /// `columnar_scan`; disabling keeps plain `Arc<str>` arrays — the
    /// equivalence baseline, results are identical either way.
    pub dictionary_encoding: bool,
    /// Unnest correlated sub-queries at plan time: correlated
    /// `EXISTS`/`NOT EXISTS` predicates become semi-/anti-join variants of
    /// `HashJoin`, and correlated scalar-aggregate comparisons become
    /// aggregate-then-join plans (see the [`decorrelate`] module). The
    /// rewrite fires only when it is provably equivalent to the interpreted
    /// per-row sub-query; anything else keeps the correlated `Filter`.
    /// Disabling keeps every sub-query interpreted — the equivalence
    /// baseline, results are identical either way.
    pub decorrelation: bool,
    /// Log every mutation to a write-ahead log before applying it in
    /// memory (see the [`wal`] module). Requires a log path, so the flag
    /// is effective through [`Engine::open`] (which sets it); on
    /// [`Engine::new`] it is inert — there is nowhere to write. Default
    /// `false`: the engine stays the in-memory substrate of the earlier
    /// PRs with zero logging overhead.
    pub durability: bool,
    /// Run the static plan verifier ([`verify`]) over every freshly
    /// planned operator DAG (and re-check parameter bounds when a cached
    /// plan is bound): a corrupt plan is rejected with a typed
    /// [`EngineErrorKind::Plan`] error *before* execution instead of
    /// producing wrong rows or an obscure evaluation error. Always on in
    /// debug builds, opt-in in release; the `MT_VERIFY` environment
    /// variable (`1`/`0`) overrides the configured value process-wide,
    /// mirroring `MT_THREADS`. `EXPLAIN` verifies unconditionally so its
    /// `verified` marker is identical across build profiles.
    pub verify_plans: bool,
    /// Batch concurrent committers' fsyncs behind a single flush (see
    /// [`wal::WalHandle`]): a committer appends its frames under a short
    /// critical section, then parks until a flush covers its commit LSN —
    /// whoever arrives first syncs for everyone appended meanwhile.
    /// Disabling recovers the PR 6 behaviour (one inline fsync per commit,
    /// writers fully serialized) as the bench baseline. Only meaningful on
    /// durable engines.
    pub group_commit: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_immutable_udfs: true,
            partition_pruning: true,
            parallel_scan: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            columnar_scan: true,
            dictionary_encoding: true,
            decorrelation: true,
            durability: false,
            verify_plans: cfg!(debug_assertions),
            group_commit: true,
        }
    }
}

impl EngineConfig {
    /// The PostgreSQL-like configuration used in Tables 3–5 / Figure 5.
    pub fn postgres_like() -> Self {
        EngineConfig {
            cache_immutable_udfs: true,
            ..EngineConfig::default()
        }
    }

    /// The "System C"-like configuration used in Tables 7–9 / Figure 6.
    pub fn system_c_like() -> Self {
        EngineConfig {
            cache_immutable_udfs: false,
            ..EngineConfig::default()
        }
    }

    /// Disable partition pruning (builder-style, for baseline comparisons).
    pub fn without_partition_pruning(mut self) -> Self {
        self.partition_pruning = false;
        self
    }

    /// Set the parallel-scan worker budget (builder-style).
    pub fn with_parallel_scan(mut self, threads: usize) -> Self {
        self.parallel_scan = threads;
        self
    }

    /// Set the morsel size in rows (builder-style). `0` keeps the default.
    pub fn with_morsel_rows(mut self, rows: usize) -> Self {
        self.morsel_rows = rows;
        self
    }

    /// Disable the columnar bucket layout (builder-style): partition buckets
    /// keep the row layout, the baseline the columnar path is verified
    /// against.
    pub fn without_columnar_scan(mut self) -> Self {
        self.columnar_scan = false;
        self
    }

    /// Disable dictionary encoding (builder-style): columnar string columns
    /// keep plain `Arc<str>` arrays, the baseline the code-space kernels are
    /// verified against.
    pub fn without_dictionary_encoding(mut self) -> Self {
        self.dictionary_encoding = false;
        self
    }

    /// Disable sub-query decorrelation (builder-style): correlated
    /// sub-queries stay interpreted per outer row, the baseline the
    /// unnested join plans are verified against.
    pub fn without_decorrelation(mut self) -> Self {
        self.decorrelation = false;
        self
    }

    /// Request write-ahead logging (builder-style). Only effective when the
    /// engine is opened against a log path ([`Engine::open`], which sets
    /// this flag itself — the builder exists so deployment code can carry
    /// the intent in its configuration matrix).
    pub fn with_durability(mut self) -> Self {
        self.durability = true;
        self
    }

    /// Force the static plan verifier on (builder-style) regardless of the
    /// build profile — release deployments that want corrupt plans rejected
    /// before execution.
    pub fn with_verify_plans(mut self) -> Self {
        self.verify_plans = true;
        self
    }

    /// Force the static plan verifier off (builder-style) — the zero-check
    /// baseline the `pr9_verify` bench compares against. `MT_VERIFY=1`
    /// still overrides at execution time.
    pub fn without_verify_plans(mut self) -> Self {
        self.verify_plans = false;
        self
    }

    /// Disable group commit (builder-style): every WAL commit syncs inline
    /// under the writer lock, one fsync per transaction — the PR 6 baseline
    /// the `pr10_txn` bench compares against.
    pub fn without_group_commit(mut self) -> Self {
        self.group_commit = false;
        self
    }
}

/// The result of a query: column names plus materialized rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultSet {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

impl ResultSet {
    fn from_relation(rel: Relation) -> Self {
        // Materialize the (small) final result; intermediate relations stay
        // shared. Value clones here are pointer-sized (`Arc`-interned).
        ResultSet {
            columns: rel.schema.names(),
            rows: rel.rows.iter().map(|r| r.to_vec()).collect(),
        }
    }

    /// Single scalar convenience accessor (first column of first row).
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// The in-memory database engine.
pub struct Engine {
    db: Database,
    udfs: UdfRegistry,
    counters: EngineCounters,
    config: EngineConfig,
    /// The write-ahead log, present on durable engines ([`Engine::open`]).
    /// Shared (`Arc`) so commit waiters can park on [`wal::WalHandle::wait_durable`]
    /// *without* holding the engine lock — that release is what lets
    /// concurrent committers batch behind one fsync.
    wal: Option<Arc<wal::WalHandle>>,
    /// Catalog records found during recovery, handed to the middleware via
    /// [`Engine::take_recovered_meta`].
    recovered_meta: Vec<MetaOp>,
    /// Transaction id allocator (see [`Engine::begin_transaction`]).
    pub(crate) txn_seq: u64,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            db: Database::new(),
            udfs: UdfRegistry::new(config.cache_immutable_udfs),
            counters: EngineCounters::new(),
            config,
            wal: None,
            recovered_meta: Vec::new(),
            txn_seq: 0,
        }
    }

    /// Open a durable engine against a write-ahead log file: replay the
    /// log's committed prefix (rebuilding every table under *this*
    /// configuration's physical layout — columnar/dictionary equivalence
    /// makes the layout a free choice at recovery time), truncate any
    /// untrusted tail, and log every subsequent mutation before applying
    /// it. Catalog records found in the log are stashed for
    /// [`Engine::take_recovered_meta`]; UDFs are *not* recovered (closures
    /// don't serialize) — the host re-registers them after open.
    pub fn open(mut config: EngineConfig, path: &Path) -> Result<Engine> {
        config.durability = true;
        let mut recovery = wal::recover(path)?;
        let mut engine = Engine::new(config);
        for record in std::mem::take(&mut recovery.records) {
            engine.apply_record(record)?;
        }
        engine.wal = Some(wal::WalHandle::open_at(
            path,
            &recovery,
            config.group_commit,
        )?);
        Ok(engine)
    }

    /// Is this engine logging mutations to a WAL?
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// The LSN of the last record appended to the WAL (0 when not durable
    /// or nothing has been logged). After recovery this is the replay
    /// horizon — the middleware couples the catalog epoch to it.
    pub fn wal_last_lsn(&self) -> u64 {
        self.wal.as_ref().map_or(0, |w| w.last_lsn())
    }

    /// The shared WAL writer handle, when durable. Commit paths clone the
    /// `Arc` so they can wait for durability ([`wal::WalHandle::wait_durable`])
    /// after releasing the engine lock — the group-commit window.
    pub fn wal_handle(&self) -> Option<Arc<wal::WalHandle>> {
        self.wal.clone()
    }

    /// Take the catalog records recovered from the log (middleware replay).
    pub fn take_recovered_meta(&mut self) -> Vec<MetaOp> {
        std::mem::take(&mut self.recovered_meta)
    }

    /// Install a crash-fault injection clock on the WAL writer (no-op on
    /// non-durable engines). See [`FailpointClock`].
    pub fn set_failpoint_clock(&mut self, clock: Arc<FailpointClock>) {
        if let Some(w) = &self.wal {
            w.set_failpoint_clock(clock);
        }
    }

    /// The current mutation epoch — the newest watermark any row carries.
    pub fn current_epoch(&self) -> u64 {
        self.db.current_epoch()
    }

    /// The newest epoch visible to readers outside a transaction: one below
    /// the oldest open transaction's first statement, or the current epoch
    /// when none is open. Snapshot readers (cursors, and per-statement
    /// snapshots while a transaction is open) pin this.
    pub fn committed_epoch(&self) -> u64 {
        self.db.committed_epoch()
    }

    /// Append records plus a commit marker to the WAL and sync, or do
    /// nothing on non-durable engines. Callers apply the mutation in
    /// memory only after this returns `Ok` (write-ahead ordering).
    fn log(&mut self, records: &[wal::Record]) -> Result<()> {
        if let Some(w) = &self.wal {
            w.commit(records)?;
        }
        Ok(())
    }

    /// Log one catalog mutation on behalf of the middleware (its own
    /// transaction). No-op on non-durable engines.
    pub fn log_meta(&mut self, op: MetaOp) -> Result<()> {
        self.log(&[wal::Record::Meta(op)])
    }

    /// Apply one recovered WAL record (replay path; never logs).
    fn apply_record(&mut self, record: wal::Record) -> Result<()> {
        match record {
            wal::Record::CreateTable { name, columns } => {
                self.apply_create_table(&name, columns);
                Ok(())
            }
            wal::Record::SetPartition { table, column } => {
                self.apply_set_partition(&table, &column)
            }
            wal::Record::InsertRows { table, rows } => self.apply_insert_rows(&table, rows),
            wal::Record::ReplaceRows { table, rows } => self.apply_replace_rows(&table, rows),
            wal::Record::DropTable { name } => {
                self.db.bump_epoch();
                self.db.drop_table(&name);
                Ok(())
            }
            wal::Record::CreateView { name, sql } => {
                let query = mtsql::parse_query(&sql)?;
                self.db.create_view(&name, query);
                Ok(())
            }
            wal::Record::DropView { name } => {
                self.db.drop_view(&name);
                Ok(())
            }
            wal::Record::Meta(op) => {
                self.recovered_meta.push(op);
                Ok(())
            }
            wal::Record::Commit => Ok(()),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Borrow the underlying database (used by the executor).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Borrow the UDF registry.
    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Register a native scalar UDF.
    pub fn register_udf(&mut self, name: &str, immutable: bool, implementation: UdfImpl) {
        self.udfs.register(name, immutable, implementation);
    }

    /// Register a UDF from a plain closure.
    pub fn register_udf_fn<F>(&mut self, name: &str, immutable: bool, f: F)
    where
        F: Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    {
        self.register_udf(name, immutable, Arc::new(f));
    }

    /// Create (or replace) a table with the given column names. Panics if
    /// the WAL write fails — test/setup convenience; durable code paths use
    /// [`Engine::create_table_owned`].
    pub fn create_table(&mut self, name: &str, columns: &[&str]) {
        self.create_table_owned(name, columns.iter().map(|c| c.to_string()).collect())
            .expect("create_table: WAL append failed"); // lint:allow(expect) documented test/setup panic
    }

    /// Create (or replace) a table with owned column names. The bucket
    /// layout follows [`EngineConfig::columnar_scan`].
    pub fn create_table_owned(&mut self, name: &str, columns: Vec<String>) -> Result<()> {
        if self.wal.is_some() {
            self.log(&[wal::Record::CreateTable {
                name: name.to_string(),
                columns: columns.clone(),
            }])?;
        }
        self.apply_create_table(name, columns);
        Ok(())
    }

    /// Create a table, declare its partition column and record a catalog
    /// entry — all in **one** WAL transaction, so recovery replays either
    /// every effect or none. This is the middleware's table-creation path;
    /// `meta` carries the catalog-side DDL record.
    pub fn create_table_logged(
        &mut self,
        name: &str,
        columns: Vec<String>,
        partition: Option<&str>,
        meta: Option<MetaOp>,
    ) -> Result<()> {
        // Validate before logging: an invalid statement appends nothing.
        if let Some(column) = partition {
            if !columns.iter().any(|c| c.eq_ignore_ascii_case(column)) {
                return error::err(format!("no column `{column}` in `{name}` to partition by"));
            }
        }
        if self.wal.is_some() {
            let mut records = vec![wal::Record::CreateTable {
                name: name.to_string(),
                columns: columns.clone(),
            }];
            if let Some(column) = partition {
                records.push(wal::Record::SetPartition {
                    table: name.to_string(),
                    column: column.to_string(),
                });
            }
            if let Some(op) = meta {
                records.push(wal::Record::Meta(op));
            }
            self.log(&records)?;
        }
        self.apply_create_table(name, columns);
        if let Some(column) = partition {
            self.apply_set_partition(name, column)?;
        }
        Ok(())
    }

    fn apply_create_table(&mut self, name: &str, columns: Vec<String>) {
        let epoch = self.db.bump_epoch();
        self.db.create_table(name, columns);
        if let Ok(table) = self.db.table_mut(name) {
            table.set_dictionary(self.config.columnar_scan && self.config.dictionary_encoding);
            table.set_columnar(self.config.columnar_scan);
            table.begin_write(epoch);
            // Replacing a table invalidates snapshots pinned on the old one.
            table.force_rewrite_epoch(epoch);
        }
    }

    /// Declare the partition column of a table (typically the invisible
    /// `ttid` of tenant-specific tables). Existing rows are re-bucketed.
    pub fn set_table_partition(&mut self, table: &str, column: &str) -> Result<()> {
        // Validate before logging: an invalid statement appends nothing.
        if self.db.table(table)?.column_index(column).is_none() {
            return error::err(format!("no column `{column}` in `{table}` to partition by"));
        }
        if self.wal.is_some() {
            self.log(&[wal::Record::SetPartition {
                table: table.to_string(),
                column: column.to_string(),
            }])?;
        }
        self.apply_set_partition(table, column)
    }

    /// Drop a table, logging the engine drop and an optional catalog record
    /// in **one** WAL transaction. Returns whether the table existed (no
    /// record is logged for a missing table).
    pub fn drop_table_logged(&mut self, name: &str, meta: Option<MetaOp>) -> Result<bool> {
        if !self.db.has_table(name) {
            return Ok(false);
        }
        if self.wal.is_some() {
            let mut records = vec![wal::Record::DropTable {
                name: name.to_string(),
            }];
            if let Some(op) = meta {
                records.push(wal::Record::Meta(op));
            }
            self.log(&records)?;
        }
        self.db.bump_epoch();
        self.db.drop_table(name);
        Ok(true)
    }

    fn apply_set_partition(&mut self, table: &str, column: &str) -> Result<()> {
        let epoch = self.db.bump_epoch();
        let t = self.db.table_mut(table)?;
        t.begin_write(epoch);
        if !t.set_partition_column(Some(column)) {
            return error::err(format!("no column `{column}` in `{table}` to partition by"));
        }
        Ok(())
    }

    /// Evaluate rows of column-free expressions (e.g. the VALUES lists of an
    /// INSERT) to concrete values in one engine call — no per-row probe
    /// queries.
    pub fn eval_values(&self, rows: &[Vec<mtsql::ast::Expr>]) -> Result<Vec<Row>> {
        let executor = Executor::new(self);
        let schema = Schema::new();
        let env = Env {
            schema: &schema,
            row: &[],
            parent: None,
        };
        rows.iter()
            .map(|exprs| exprs.iter().map(|e| executor.eval(e, &env)).collect())
            .collect()
    }

    /// Bulk-insert pre-built rows.
    pub fn insert_values(&mut self, table: &str, rows: Vec<Row>) -> Result<()> {
        // Validate arity up front so an invalid batch logs nothing.
        let width = self.db.table(table)?.columns.len();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return error::err(format!(
                "row arity {} does not match table `{table}` with {width} columns",
                bad.len(),
            ));
        }
        if self.wal.is_some() {
            self.log(&[wal::Record::InsertRows {
                table: table.to_string(),
                rows: rows.clone(),
            }])?;
        }
        self.apply_insert_rows(table, rows)
    }

    fn apply_insert_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<()> {
        let epoch = self.db.bump_epoch();
        let t = self.db.table_mut(table)?;
        t.begin_write(epoch);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(())
    }

    fn apply_replace_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<()> {
        let epoch = self.db.bump_epoch();
        let t = self.db.table_mut(table)?;
        t.begin_write(epoch);
        t.take_rows();
        for row in rows {
            t.push_row(row)?;
        }
        Ok(())
    }

    /// Note scanned rows (called by the executor).
    pub(crate) fn note_rows_scanned(&self, n: u64) {
        self.counters.add_rows_scanned(n);
    }

    /// Note one base-table scan's bucket accounting (called by the executor).
    pub(crate) fn note_partitions(&self, scanned: u64, pruned: u64) {
        self.counters.add_partitions(scanned, pruned);
    }

    /// Note one scan that ran its buckets on the parallel fast path.
    pub(crate) fn note_parallel_scan(&self) {
        self.counters.add_parallel_scan();
    }

    /// Note one pooled scan's morsel accounting (called by the executor).
    pub(crate) fn note_morsel_scan(&self, morsels: u64, workers: u64) {
        self.counters.add_morsel_scan(morsels, workers);
    }

    /// Note partial aggregate states merged into a final aggregate.
    pub(crate) fn note_partial_agg_merges(&self, n: u64) {
        self.counters.add_partial_agg_merges(n);
    }

    /// Note one scan's vectorized-evaluation accounting.
    pub(crate) fn note_vectorized(&self, rows: u64, materialized: u64) {
        if rows > 0 || materialized > 0 {
            self.counters.add_vectorized(rows, materialized);
        }
    }

    /// Note rows processed through dictionary code space (kernel, grouping
    /// or decode — see [`stats::StatsSnapshot::dict_kernel_rows`]).
    pub(crate) fn note_dict_kernel_rows(&self, rows: u64) {
        if rows > 0 {
            self.counters.add_dict_kernel_rows(rows);
        }
    }

    /// Note correlated sub-queries executed as unnested join plans (one per
    /// semi-/anti-/aggregate-join node executed — counted at execution time
    /// so prepared-plan cache hits still report engagement).
    pub(crate) fn note_subquery_unnested(&self, n: u64) {
        if n > 0 {
            self.counters.add_subqueries_unnested(n);
        }
    }

    /// Note one prepared-plan cache lookup outcome (called by the MTBase
    /// middleware, which owns the cache; the counter lives here so it resets
    /// and snapshots together with the execution statistics).
    pub fn note_prepared_cache(&self, hit: bool) {
        self.counters.add_prepared_cache(hit);
    }

    /// Snapshot the execution statistics.
    pub fn stats(&self) -> StatsSnapshot {
        let udf = self.udfs.stats();
        StatsSnapshot {
            rows_scanned: self.counters.rows_scanned(),
            partitions_scanned: self.counters.partitions_scanned(),
            partitions_pruned: self.counters.partitions_pruned(),
            parallel_scans: self.counters.parallel_scans(),
            morsels_dispatched: self.counters.morsels_dispatched(),
            morsel_workers: self.counters.morsel_workers(),
            partial_agg_merges: self.counters.partial_agg_merges(),
            rows_vectorized: self.counters.rows_vectorized(),
            late_materialized: self.counters.late_materialized(),
            dict_kernel_rows: self.counters.dict_kernel_rows(),
            subqueries_unnested: self.counters.subqueries_unnested(),
            dict_columns: self.db.tables().map(|t| t.dict_column_count() as u64).sum(),
            udf_calls: udf.calls,
            udf_cache_hits: udf.cache_hits,
            prepared_cache_hits: self.counters.prepared_cache_hits(),
            prepared_cache_misses: self.counters.prepared_cache_misses(),
            plans_verified: self.counters.plans_verified(),
            txn_commits: self.counters.txn_commits(),
            txn_rollbacks: self.counters.txn_rollbacks(),
            // Gauges from the WAL writer (like `dict_columns`, not reset by
            // `reset_stats` — `delta_from` handles windowing).
            wal_commits: self.wal.as_ref().map_or(0, |w| w.commits()),
            wal_fsyncs: self.wal.as_ref().map_or(0, |w| w.fsyncs()),
        }
    }

    /// Reset statistics and UDF caches (between measured runs).
    pub fn reset_stats(&self) {
        self.counters.reset();
        self.udfs.reset();
    }

    // ------------------------------------------------------------------
    // Statement execution
    // ------------------------------------------------------------------

    /// Parse and execute a single SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet> {
        let stmt = mtsql::parse_statement(sql)?;
        self.execute_statement(&stmt)
    }

    /// Parse and execute a read-only query.
    pub fn query(&self, sql: &str) -> Result<ResultSet> {
        let query = mtsql::parse_query(sql)?;
        self.execute_query(&query)
    }

    /// Execute a parsed query.
    pub fn execute_query(&self, query: &Query) -> Result<ResultSet> {
        let executor = Executor::new(self);
        let rel = executor.execute_query(query, None)?;
        Ok(ResultSet::from_relation(rel))
    }

    /// Execute a parsed query pinned to `txn`'s snapshot: the committed
    /// floor plus the transaction's own statement epochs, so the
    /// transaction reads its own staged writes but never another open
    /// transaction's.
    pub fn execute_query_txn(&self, query: &Query, txn: &txn::Transaction) -> Result<ResultSet> {
        let mut executor = Executor::new(self);
        executor.pin_txn_snapshot(self.db.committed_epoch(), txn.own_epochs());
        let rel = executor.execute_query(query, None)?;
        Ok(ResultSet::from_relation(rel))
    }

    /// Lower a parsed query to its physical plan without executing it. The
    /// plan is plain owned data (no engine borrows), so callers may cache it
    /// and re-execute via [`Engine::execute_plan`] — the prepared-statement
    /// path of the MTBase middleware.
    pub fn plan_query(&self, query: &Query) -> Result<plan::Plan> {
        let plan = plan::Planner::new(self).plan_query(query)?;
        if verify::verify_enabled(&self.config) {
            let opts = verify::VerifyOptions {
                param_count: Some(mtsql::visit::param_count_query(query)),
                ..Default::default()
            };
            verify::verify_plan_with(self, &plan, opts)?;
            self.counters.add_plans_verified(1);
        }
        Ok(plan)
    }

    /// Execute a previously lowered plan with the given bound parameter
    /// values (empty for parameter-free statements). While a transaction is
    /// open somewhere on the engine, the statement runs against the
    /// committed-epoch snapshot so uncommitted (and later rolled-back) rows
    /// are never observed; with no open transaction the snapshot equals the
    /// live state and the read is unbounded (the common, zero-cost path).
    pub fn execute_plan(&self, plan: &plan::Plan, params: &[Value]) -> Result<ResultSet> {
        self.execute_plan_pinned(plan, params, None)
    }

    /// Like [`Engine::execute_plan`] but pinned for the session that *owns*
    /// the open transaction `txn`: the committed floor plus the
    /// transaction's own statement epochs (read-your-writes without
    /// observing other open transactions' staged rows).
    pub fn execute_plan_txn(
        &self,
        plan: &plan::Plan,
        params: &[Value],
        txn: &txn::Transaction,
    ) -> Result<ResultSet> {
        self.execute_plan_pinned(plan, params, Some(txn))
    }

    fn execute_plan_pinned(
        &self,
        plan: &plan::Plan,
        params: &[Value],
        txn: Option<&txn::Transaction>,
    ) -> Result<ResultSet> {
        if verify::verify_enabled(&self.config) {
            let opts = verify::VerifyOptions {
                param_count: Some(params.len()),
                ..Default::default()
            };
            verify::verify_plan_with(self, plan, opts)?;
            self.counters.add_plans_verified(1);
        }
        let mut executor = Executor::with_params(self, params.to_vec());
        match txn {
            Some(txn) => executor.pin_txn_snapshot(self.db.committed_epoch(), txn.own_epochs()),
            None if self.db.has_uncommitted() => {
                executor.pin_snapshot(self.db.committed_epoch());
            }
            None => {}
        }
        let rel = executor.execute_plan(plan, None)?;
        Ok(ResultSet::from_relation(rel))
    }

    /// Stream a previously lowered plan row-by-row (see [`cursor::RowIter`]).
    /// Pipeline-able plans never materialize the full result set; blocking
    /// plans materialize internally and expose the same pull interface.
    pub fn row_iter<'e>(&'e self, plan: &'e plan::Plan, params: Vec<Value>) -> RowIter<'e> {
        RowIter::new(self, plan, params)
    }

    /// Lower a query to its physical plan and render it as an `EXPLAIN`
    /// result: one `QUERY PLAN` column, one row per plan line.
    pub fn explain_query(&self, query: &Query) -> Result<ResultSet> {
        let plan = plan::Planner::new(self).plan_query(query)?;
        Ok(self.explain_plan(&plan))
    }

    /// Render an already-lowered plan as an `EXPLAIN` result (used by the
    /// middleware to explain cached prepared plans).
    pub fn explain_plan(&self, plan: &plan::Plan) -> ResultSet {
        let text = plan::explain(self, plan);
        // EXPLAIN always runs the verifier regardless of configuration, so
        // the marker line is deterministic across debug and release builds
        // and golden plan snapshots pin the verifier's engagement.
        let marker = match verify::verify_plan(self, plan) {
            Ok(report) => format!("verified ({} operators)", report.operators),
            Err(e) => format!("NOT verified: {e}"),
        };
        ResultSet {
            columns: vec!["QUERY PLAN".to_string()],
            rows: text
                .lines()
                .map(|l| vec![Value::str(l)])
                .chain(std::iter::once(vec![Value::str(marker)]))
                .collect(),
        }
    }

    /// Execute a parsed statement (queries, DDL and DML).
    pub fn execute_statement(&mut self, stmt: &Statement) -> Result<ResultSet> {
        match stmt {
            Statement::Select(q) => self.execute_query(q),
            Statement::Explain(q) => self.explain_query(q),
            Statement::CreateTable(ct) => {
                let columns: Vec<String> = ct.columns.iter().map(|c| c.name.clone()).collect();
                self.create_table_owned(&ct.name, columns)?;
                Ok(ResultSet::default())
            }
            Statement::CreateView(cv) => {
                if self.wal.is_some() {
                    // Views are logged as SQL text and reparsed on replay.
                    self.log(&[wal::Record::CreateView {
                        name: cv.name.clone(),
                        sql: cv.query.to_string(),
                    }])?;
                }
                self.db.create_view(&cv.name, cv.query.clone());
                Ok(ResultSet::default())
            }
            Statement::CreateFunction(cf) => {
                // SQL-bodied conversion functions are registered natively by
                // the middleware; accepting the DDL keeps scripts portable.
                if !self.udfs.contains(&cf.name) {
                    return Err(EngineError::new(format!(
                        "function `{}` has no native implementation registered",
                        cf.name
                    )));
                }
                Ok(ResultSet::default())
            }
            Statement::DropTable { name, if_exists } => {
                // Existence is checked *before* logging so a no-op DROP of a
                // missing table appends nothing to the WAL.
                if !self.db.has_table(name) {
                    if *if_exists {
                        return Ok(ResultSet::default());
                    }
                    return error::err(format!("no such table `{name}`"));
                }
                self.log(&[wal::Record::DropTable { name: name.clone() }])?;
                self.db.bump_epoch();
                self.db.drop_table(name);
                Ok(ResultSet::default())
            }
            Statement::DropView { name, if_exists } => {
                if !self.db.has_view(name) {
                    if *if_exists {
                        return Ok(ResultSet::default());
                    }
                    return error::err(format!("no such view `{name}`"));
                }
                self.log(&[wal::Record::DropView { name: name.clone() }])?;
                self.db.drop_view(name);
                Ok(ResultSet::default())
            }
            Statement::Insert(insert) => {
                // `build_insert_rows` validates arity and fills defaults, so
                // the rows logged here are exactly the rows applied below.
                let rows = self.build_insert_rows(insert, None)?;
                let count = rows.len() as i64;
                if self.wal.is_some() {
                    self.log(&[wal::Record::InsertRows {
                        table: insert.table.clone(),
                        rows: rows.clone(),
                    }])?;
                }
                self.apply_insert_rows(&insert.table, rows)?;
                Ok(ResultSet {
                    columns: vec!["rows_inserted".to_string()],
                    rows: vec![vec![Value::Int(count)]],
                })
            }
            Statement::Update(update) => {
                let (schema, assignments, selection) = {
                    let table = self.db.table(&update.table)?;
                    (
                        Schema::qualified(&table.name, &table.columns),
                        update.assignments.clone(),
                        update.selection.clone(),
                    )
                };
                // Evaluate per-row updates against a snapshot executor.
                let mut new_rows: Vec<(bool, table::SharedRow)> = Vec::new();
                {
                    let executor = Executor::new(self);
                    let table = self.db.table(&update.table)?;
                    for row in table.rows() {
                        let env = Env {
                            schema: &schema,
                            row: &row,
                            parent: None,
                        };
                        let matches = match &selection {
                            Some(pred) => executor.eval(pred, &env)?.as_bool().unwrap_or(false),
                            None => true,
                        };
                        if matches {
                            let mut new_row = row.to_vec();
                            for (col, expr) in &assignments {
                                let idx = table.column_index(col).ok_or_else(|| {
                                    EngineError::new(format!(
                                        "no column `{col}` in `{}`",
                                        update.table
                                    ))
                                })?;
                                new_row[idx] = executor.eval(expr, &env)?;
                            }
                            new_rows.push((true, new_row.into()));
                        } else {
                            new_rows.push((false, row));
                        }
                    }
                }
                let changed = new_rows.iter().filter(|(m, _)| *m).count() as i64;
                if self.wal.is_some() {
                    // UPDATE rewrites storage wholesale (take + re-push), so
                    // it logs as a full-replacement record.
                    self.log(&[wal::Record::ReplaceRows {
                        table: update.table.clone(),
                        rows: new_rows.iter().map(|(_, r)| r.to_vec()).collect(),
                    }])?;
                }
                let epoch = self.db.bump_epoch();
                let table = self.db.table_mut(&update.table)?;
                table.begin_write(epoch);
                table.take_rows();
                for (_, row) in new_rows {
                    // Re-bucketing on insert keeps the partition layout right
                    // even when an UPDATE rewrites the partition key itself.
                    table.push_shared(row);
                }
                Ok(ResultSet {
                    columns: vec!["rows_updated".to_string()],
                    rows: vec![vec![Value::Int(changed)]],
                })
            }
            Statement::Delete(delete) => {
                let (schema, selection) = {
                    let table = self.db.table(&delete.table)?;
                    (
                        Schema::qualified(&table.name, &table.columns),
                        delete.selection.clone(),
                    )
                };
                let mut keep: Vec<table::SharedRow> = Vec::new();
                let mut removed = 0i64;
                {
                    let executor = Executor::new(self);
                    let table = self.db.table(&delete.table)?;
                    for row in table.rows() {
                        let env = Env {
                            schema: &schema,
                            row: &row,
                            parent: None,
                        };
                        let matches = match &selection {
                            Some(pred) => executor.eval(pred, &env)?.as_bool().unwrap_or(false),
                            None => true,
                        };
                        if matches {
                            removed += 1;
                        } else {
                            keep.push(row);
                        }
                    }
                }
                if self.wal.is_some() {
                    self.log(&[wal::Record::ReplaceRows {
                        table: delete.table.clone(),
                        rows: keep.iter().map(|r| r.to_vec()).collect(),
                    }])?;
                }
                let epoch = self.db.bump_epoch();
                let table = self.db.table_mut(&delete.table)?;
                table.begin_write(epoch);
                table.take_rows();
                for row in keep {
                    table.push_shared(row);
                }
                Ok(ResultSet {
                    columns: vec!["rows_deleted".to_string()],
                    rows: vec![vec![Value::Int(removed)]],
                })
            }
            Statement::Grant(_) | Statement::Revoke(_) | Statement::SetScope(_) => {
                Err(EngineError::new(
                    "DCL and SCOPE statements are handled by the MTBase middleware, not the engine",
                ))
            }
            Statement::Begin | Statement::Commit | Statement::Rollback => {
                // Transaction control is session state: the middleware owns
                // the open [`Transaction`] and drives the engine through
                // `begin_transaction` / `txn_*` instead.
                Err(EngineError::new(
                    "transaction control statements are handled by the MTBase session, not the engine",
                ))
            }
        }
    }

    fn build_insert_rows(
        &self,
        insert: &mtsql::ast::Insert,
        txn: Option<&txn::Transaction>,
    ) -> Result<Vec<Row>> {
        let table = self.db.table(&insert.table)?;
        let target_columns: Vec<String> = if insert.columns.is_empty() {
            table.columns.clone()
        } else {
            insert.columns.clone()
        };
        let column_indices: Vec<usize> = target_columns
            .iter()
            .map(|c| {
                table.column_index(c).ok_or_else(|| {
                    EngineError::new(format!("no column `{c}` in `{}`", insert.table))
                })
            })
            .collect::<Result<Vec<_>>>()?;

        // An `INSERT ... SELECT` source inside a transaction reads at the
        // transaction's snapshot, like every other in-transaction query.
        let mut executor = Executor::new(self);
        if let Some(txn) = txn {
            executor.pin_txn_snapshot(self.db.committed_epoch(), txn.own_epochs());
        }
        let executor = executor;
        let source_rows: Vec<Row> = match &insert.source {
            InsertSource::Values(rows) => {
                let empty_schema = Schema::new();
                let empty_row: Row = Vec::new();
                let env = Env {
                    schema: &empty_schema,
                    row: &empty_row,
                    parent: None,
                };
                rows.iter()
                    .map(|exprs| {
                        exprs
                            .iter()
                            .map(|e| executor.eval(e, &env))
                            .collect::<Result<Row>>()
                    })
                    .collect::<Result<Vec<_>>>()?
            }
            InsertSource::Query(q) => executor
                .execute_query(q, None)?
                .rows
                .iter()
                .map(|r| r.to_vec())
                .collect(),
        };

        let width = table.columns.len();
        let mut out = Vec::with_capacity(source_rows.len());
        for src in source_rows {
            if src.len() != column_indices.len() {
                return Err(EngineError::new(format!(
                    "INSERT provides {} values for {} columns",
                    src.len(),
                    column_indices.len()
                )));
            }
            let mut row = vec![Value::Null; width];
            for (value, &idx) in src.into_iter().zip(&column_indices) {
                row[idx] = value;
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Load a pre-built table wholesale (used by the MT-H generator). The
    /// bucket layout is re-encoded to follow [`EngineConfig::columnar_scan`].
    /// On durable engines the whole batch — schema, partition declaration
    /// and every row — is one WAL transaction.
    pub fn load_table(&mut self, mut table: Table) -> Result<()> {
        if self.wal.is_some() {
            let mut records = vec![wal::Record::CreateTable {
                name: table.name.clone(),
                columns: table.columns.clone(),
            }];
            if let Some(idx) = table.partition_column() {
                records.push(wal::Record::SetPartition {
                    table: table.name.clone(),
                    column: table.columns[idx].clone(),
                });
            }
            records.push(wal::Record::InsertRows {
                table: table.name.clone(),
                rows: table.rows().map(|r| r.to_vec()).collect(),
            });
            self.log(&records)?;
        }
        let epoch = self.db.bump_epoch();
        table.set_dictionary(self.config.columnar_scan && self.config.dictionary_encoding);
        table.set_columnar(self.config.columnar_scan);
        table.begin_write(epoch);
        table.force_rewrite_epoch(epoch);
        self.db.insert_table(table);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_engine() -> Engine {
        let mut e = Engine::new(EngineConfig::default());
        e.create_table(
            "Employees",
            &[
                "ttid",
                "E_emp_id",
                "E_name",
                "E_role_id",
                "E_reg_id",
                "E_salary",
                "E_age",
            ],
        );
        e.create_table("Roles", &["ttid", "R_role_id", "R_name"]);
        e.create_table("Regions", &["Re_reg_id", "Re_name"]);
        // Figure 2 of the paper.
        let emp = vec![
            (0, 0, "Patrick", 1, 3, 50_000.0, 30),
            (0, 1, "John", 0, 3, 70_000.0, 28),
            (0, 2, "Alice", 2, 3, 150_000.0, 46),
            (1, 0, "Allan", 1, 2, 80_000.0, 25),
            (1, 1, "Nancy", 2, 4, 200_000.0, 72),
            (1, 2, "Ed", 0, 4, 1_000_000.0, 46),
        ];
        e.insert_values(
            "Employees",
            emp.into_iter()
                .map(|(t, id, n, r, reg, sal, age)| {
                    vec![
                        Value::Int(t),
                        Value::Int(id),
                        Value::str(n),
                        Value::Int(r),
                        Value::Int(reg),
                        Value::Float(sal),
                        Value::Int(age),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let roles = vec![
            (0, 0, "phD stud."),
            (0, 1, "postdoc"),
            (0, 2, "professor"),
            (1, 0, "intern"),
            (1, 1, "researcher"),
            (1, 2, "executive"),
        ];
        e.insert_values(
            "Roles",
            roles
                .into_iter()
                .map(|(t, id, n)| vec![Value::Int(t), Value::Int(id), Value::str(n)])
                .collect(),
        )
        .unwrap();
        let regions = vec![
            (0, "AFRICA"),
            (1, "ASIA"),
            (2, "AUSTRALIA"),
            (3, "EUROPE"),
            (4, "N-AMERICA"),
            (5, "S-AMERICA"),
        ];
        e.insert_values(
            "Regions",
            regions
                .into_iter()
                .map(|(id, n)| vec![Value::Int(id), Value::str(n)])
                .collect(),
        )
        .unwrap();
        e
    }

    #[test]
    fn simple_filter_and_projection() {
        let e = sample_engine();
        let rs = e
            .query("SELECT E_name FROM Employees WHERE E_age > 40 ORDER BY E_name")
            .unwrap();
        assert_eq!(rs.columns, vec!["E_name"]);
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::str("Alice")],
                vec![Value::str("Ed")],
                vec![Value::str("Nancy")]
            ]
        );
    }

    #[test]
    fn join_with_ttid_predicate() {
        let e = sample_engine();
        // Joining on role id *and* ttid gives the semantically correct pairs.
        let rs = e
            .query(
                "SELECT E_name, R_name FROM Employees, Roles \
                 WHERE E_role_id = R_role_id AND Employees.ttid = Roles.ttid \
                 ORDER BY E_name",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 6);
        // Patrick (tenant 0, role 1) must be a postdoc, not a researcher.
        let patrick = rs
            .rows
            .iter()
            .find(|r| r[0] == Value::str("Patrick"))
            .unwrap();
        assert_eq!(patrick[1], Value::str("postdoc"));
    }

    #[test]
    fn join_without_ttid_mixes_tenants() {
        let e = sample_engine();
        // Without the ttid predicate the "nonsense" pairs of the paper appear.
        let rs = e
            .query(
                "SELECT E_name, R_name FROM Employees, Roles \
                 WHERE E_role_id = R_role_id AND E_name = 'Patrick'",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2); // postdoc (tenant 0) and researcher (tenant 1)
    }

    #[test]
    fn aggregation_with_group_by_and_having() {
        let e = sample_engine();
        let rs = e
            .query(
                "SELECT ttid, COUNT(*) AS cnt, AVG(E_age) AS avg_age FROM Employees \
                 GROUP BY ttid HAVING COUNT(*) > 1 ORDER BY ttid",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert_eq!(rs.rows[0][1], Value::Int(3));
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let e = sample_engine();
        let rs = e
            .query("SELECT COUNT(*), MIN(E_age), MAX(E_age) FROM Employees")
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![Value::Int(6), Value::Int(25), Value::Int(72)]]
        );
    }

    #[test]
    fn count_on_empty_input_is_zero() {
        let e = sample_engine();
        let rs = e
            .query("SELECT COUNT(*) FROM Employees WHERE E_age > 1000")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn subqueries_in_from_and_where() {
        let e = sample_engine();
        let rs = e
            .query(
                "SELECT x.E_name FROM (SELECT E_name, E_salary FROM Employees WHERE E_age >= 45) AS x \
                 WHERE x.E_salary > (SELECT AVG(E_salary) FROM Employees) ORDER BY x.E_name",
            )
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::str("Ed")]]);
    }

    #[test]
    fn correlated_exists() {
        let e = sample_engine();
        // Employees that have a colleague of the same tenant who is older.
        let rs = e
            .query(
                "SELECT E1.E_name FROM Employees E1 WHERE EXISTS (\
                   SELECT 1 FROM Employees E2 WHERE E2.ttid = E1.ttid AND E2.E_age > E1.E_age) \
                 ORDER BY E1.E_name",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 4);
    }

    #[test]
    fn in_subquery_and_distinct() {
        let e = sample_engine();
        let rs = e
            .query(
                "SELECT DISTINCT Re_name FROM Regions WHERE Re_reg_id IN \
                 (SELECT E_reg_id FROM Employees) ORDER BY Re_name",
            )
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![
                vec![Value::str("AUSTRALIA")],
                vec![Value::str("EUROPE")],
                vec![Value::str("N-AMERICA")]
            ]
        );
    }

    #[test]
    fn left_join_produces_nulls() {
        let mut e = sample_engine();
        e.create_table("Bonus", &["B_emp_id", "B_amount"]);
        e.insert_values("Bonus", vec![vec![Value::Int(0), Value::Float(100.0)]])
            .unwrap();
        let rs = e
            .query(
                "SELECT E_name, B_amount FROM Employees LEFT OUTER JOIN Bonus \
                 ON E_emp_id = B_emp_id WHERE ttid = 0 ORDER BY E_name",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        let john = rs.rows.iter().find(|r| r[0] == Value::str("John")).unwrap();
        assert!(john[1].is_null());
    }

    #[test]
    fn case_expression_and_arithmetic() {
        let e = sample_engine();
        let rs = e
            .query("SELECT SUM(CASE WHEN E_age >= 45 THEN 1 ELSE 0 END) AS seniors FROM Employees")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn udf_calls_and_caching_stats() {
        let mut e = sample_engine();
        e.register_udf_fn("double_it", true, |args| args[0].mul(&Value::Int(2)));
        let rs = e
            .query("SELECT double_it(E_age) FROM Employees WHERE ttid = 0 ORDER BY E_age")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(56));
        let stats = e.stats();
        assert_eq!(stats.udf_calls + stats.udf_cache_hits, 3);
    }

    #[test]
    fn insert_update_delete_roundtrip() {
        let mut e = sample_engine();
        e.execute("INSERT INTO Regions (Re_reg_id, Re_name) VALUES (6, 'ANTARCTICA')")
            .unwrap();
        assert_eq!(
            e.query("SELECT COUNT(*) FROM Regions").unwrap().rows[0][0],
            Value::Int(7)
        );
        let rs = e
            .execute("UPDATE Regions SET Re_name = 'ICE' WHERE Re_reg_id = 6")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(1));
        let rs = e
            .execute("DELETE FROM Regions WHERE Re_reg_id = 6")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(1));
        assert_eq!(
            e.query("SELECT COUNT(*) FROM Regions").unwrap().rows[0][0],
            Value::Int(6)
        );
    }

    #[test]
    fn insert_from_query() {
        let mut e = sample_engine();
        e.create_table("Names", &["n"]);
        e.execute("INSERT INTO Names (n) (SELECT E_name FROM Employees WHERE ttid = 1)")
            .unwrap();
        assert_eq!(
            e.query("SELECT COUNT(*) FROM Names").unwrap().rows[0][0],
            Value::Int(3)
        );
    }

    #[test]
    fn views_are_expanded() {
        let mut e = sample_engine();
        e.execute("CREATE VIEW seniors AS SELECT E_name, E_age FROM Employees WHERE E_age >= 45")
            .unwrap();
        let rs = e.query("SELECT COUNT(*) FROM seniors").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn date_arithmetic_in_queries() {
        let mut e = Engine::new(EngineConfig::default());
        e.create_table("d", &["when_day"]);
        e.insert_values(
            "d",
            vec![
                vec![Value::date_from_str("1995-03-10").unwrap()],
                vec![Value::date_from_str("1996-06-01").unwrap()],
            ],
        )
        .unwrap();
        let rs = e
            .query("SELECT COUNT(*) FROM d WHERE when_day < DATE '1995-01-01' + INTERVAL '1' YEAR")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(1));
    }

    #[test]
    fn limit_and_order() {
        let e = sample_engine();
        let rs = e
            .query("SELECT E_name FROM Employees ORDER BY E_salary DESC LIMIT 2")
            .unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![Value::str("Ed")], vec![Value::str("Nancy")]]
        );
    }

    #[test]
    fn scalar_subquery_in_select_without_from() {
        let e = sample_engine();
        let rs = e
            .query("SELECT (SELECT MAX(E_age) FROM Employees)")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(72)]]);
    }

    #[test]
    fn dcl_is_rejected_by_the_engine() {
        let mut e = sample_engine();
        assert!(e.execute("GRANT READ ON Employees TO 42").is_err());
        assert!(e.execute("SET SCOPE = \"IN (1)\"").is_err());
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let e = sample_engine();
        assert!(e.query("SELECT x FROM nope").is_err());
        assert!(e.query("SELECT no_such_col FROM Employees").is_err());
    }

    #[test]
    fn rows_scanned_counter() {
        let e = sample_engine();
        e.reset_stats();
        e.query("SELECT COUNT(*) FROM Employees").unwrap();
        assert_eq!(e.stats().rows_scanned, 6);
    }

    #[test]
    fn partition_pruning_skips_foreign_buckets() {
        let mut e = sample_engine();
        e.set_table_partition("Employees", "ttid").unwrap();
        e.reset_stats();
        let rs = e
            .query("SELECT COUNT(*) FROM Employees WHERE ttid = 0")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
        let stats = e.stats();
        // Only tenant 0's bucket is visited; tenant 1's rows are never read.
        assert_eq!(stats.rows_scanned, 3);
        assert_eq!(stats.partitions_scanned, 1);
        assert_eq!(stats.partitions_pruned, 1);
    }

    #[test]
    fn partition_pruning_handles_in_lists() {
        let mut e = sample_engine();
        e.set_table_partition("Employees", "ttid").unwrap();
        e.reset_stats();
        let rs = e
            .query("SELECT COUNT(*) FROM Employees WHERE ttid IN (0, 1, 7)")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(6));
        assert_eq!(e.stats().rows_scanned, 6);
        assert_eq!(e.stats().partitions_pruned, 0);

        e.reset_stats();
        let rs = e
            .query("SELECT COUNT(*) FROM Employees WHERE ttid IN (1) AND E_age < 70")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        // The scan visits only tenant 1's bucket; the residual age filter is
        // evaluated during the scan rather than after materialization.
        assert_eq!(e.stats().rows_scanned, 3);
        assert_eq!(e.stats().partitions_pruned, 1);
    }

    #[test]
    fn disabled_pruning_scans_everything_but_agrees_on_results() {
        let run = |pruning: bool| {
            let config = EngineConfig {
                partition_pruning: pruning,
                ..EngineConfig::default()
            };
            let mut e = Engine::new(config);
            e.create_table("t", &["ttid", "v"]);
            e.insert_values(
                "t",
                (0..4)
                    .flat_map(|tenant| {
                        (0..5).map(move |v| vec![Value::Int(tenant), Value::Int(v * 10)])
                    })
                    .collect(),
            )
            .unwrap();
            e.set_table_partition("t", "ttid").unwrap();
            e.reset_stats();
            let rs = e
                .query("SELECT SUM(v) FROM t WHERE ttid = 2 AND v >= 10")
                .unwrap();
            (rs, e.stats().rows_scanned, e.stats().partitions_pruned)
        };
        let (rs_on, scanned_on, pruned_on) = run(true);
        let (rs_off, scanned_off, pruned_off) = run(false);
        assert_eq!(rs_on, rs_off);
        assert_eq!(scanned_on, 5);
        assert_eq!(pruned_on, 3);
        assert_eq!(scanned_off, 20);
        assert_eq!(pruned_off, 0);
    }

    #[test]
    fn updates_keep_partitioned_rows_in_the_right_bucket() {
        let mut e = sample_engine();
        e.set_table_partition("Employees", "ttid").unwrap();
        // Move Patrick from tenant 0 to tenant 1 and make sure scans of both
        // buckets see the change.
        e.execute("UPDATE Employees SET ttid = 1 WHERE E_name = 'Patrick'")
            .unwrap();
        let rs = e
            .query("SELECT COUNT(*) FROM Employees WHERE ttid = 0")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        let rs = e
            .query("SELECT COUNT(*) FROM Employees WHERE ttid = 1")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(4));
        e.execute("DELETE FROM Employees WHERE ttid = 1").unwrap();
        let rs = e.query("SELECT COUNT(*) FROM Employees").unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }

    /// NULL rows must satisfy neither `BETWEEN` nor `NOT BETWEEN` on every
    /// evaluation path: the compiled fast predicate / column kernel
    /// (constant bounds, columnar and row layouts) and the interpreter
    /// (column-dependent bounds force `CompiledPred::Generic`), plus the
    /// group-evaluation path (HAVING). SQL three-valued logic — PostgreSQL
    /// filters the UNKNOWN row; this engine used to let NULLs pass
    /// NOT BETWEEN (see ROADMAP).
    #[test]
    fn not_between_filters_null_rows_on_every_path() {
        for columnar in [true, false] {
            let config = if columnar {
                EngineConfig::default()
            } else {
                EngineConfig::default().without_columnar_scan()
            };
            let mut e = Engine::new(config);
            e.create_table("t", &["ttid", "v"]);
            e.set_table_partition("t", "ttid").unwrap();
            e.insert_values(
                "t",
                vec![
                    vec![Value::Int(1), Value::Null],
                    vec![Value::Int(1), Value::Int(5)],
                    vec![Value::Int(1), Value::Int(50)],
                    vec![Value::Int(2), Value::Null],
                ],
            )
            .unwrap();

            // Compiled path (kernel on columnar, fast predicate on rows).
            let rs = e.query("SELECT v FROM t WHERE v BETWEEN 1 AND 10").unwrap();
            assert_eq!(rs.rows, vec![vec![Value::Int(5)]], "columnar={columnar}");
            let rs = e
                .query("SELECT v FROM t WHERE v NOT BETWEEN 1 AND 10")
                .unwrap();
            assert_eq!(rs.rows, vec![vec![Value::Int(50)]], "columnar={columnar}");

            // Interpreted path: column-dependent bounds cannot compile.
            let rs = e
                .query("SELECT v FROM t WHERE v NOT BETWEEN ttid AND ttid + 9")
                .unwrap();
            assert_eq!(rs.rows, vec![vec![Value::Int(50)]], "columnar={columnar}");

            // Group path: MIN over tenant 2's all-NULL group is NULL, which
            // must not satisfy the HAVING's NOT BETWEEN.
            let rs = e
                .query(
                    "SELECT ttid FROM t GROUP BY ttid \
                     HAVING MIN(v) NOT BETWEEN 1 AND 10 ORDER BY ttid",
                )
                .unwrap();
            assert!(rs.rows.is_empty(), "columnar={columnar}: {rs:?}");
        }
    }

    /// LIKE follows SQL three-valued logic on every evaluation path: a NULL
    /// operand (or NULL pattern) makes the outcome UNKNOWN, which satisfies
    /// neither `LIKE` nor `NOT LIKE`; the empty string is a real value (it
    /// matches `''` and `'%'` and satisfies `NOT LIKE 'MAIL%'`). Pinned for
    /// the interpreter (dynamic / column-dependent patterns force
    /// `CompiledPred::Generic`), the compiled fast predicate (row layout),
    /// the vectorized kernel (columnar layout), the dictionary bitmap path
    /// (columnar + dictionary encoding) and the group/HAVING context —
    /// mirroring the PR 4 `NOT BETWEEN` fix.
    #[test]
    fn like_three_valued_logic_on_every_path() {
        for (dict, columnar) in [(true, true), (false, true), (false, false)] {
            let config = EngineConfig {
                dictionary_encoding: dict,
                columnar_scan: columnar,
                ..EngineConfig::default()
            };
            let mut e = Engine::new(config);
            e.create_table("t", &["ttid", "s"]);
            e.set_table_partition("t", "ttid").unwrap();
            e.insert_values(
                "t",
                vec![
                    vec![Value::Int(1), Value::Null],
                    vec![Value::Int(1), Value::str("")],
                    vec![Value::Int(1), Value::str("MAIL")],
                    vec![Value::Int(1), Value::str("MAILBOX")],
                    vec![Value::Int(2), Value::Null],
                ],
            )
            .unwrap();
            let label = format!("dict={dict} columnar={columnar}");
            if dict && columnar {
                // The fixture must actually exercise the dictionary path.
                assert_eq!(e.stats().dict_columns, 1, "{label}");
            }

            // Compiled path (dictionary bitmap / Str kernel / fast pred).
            let rs = e.query("SELECT s FROM t WHERE s LIKE 'MAIL%'").unwrap();
            assert_eq!(
                rs.rows,
                vec![vec![Value::str("MAIL")], vec![Value::str("MAILBOX")]],
                "{label}"
            );
            // NULL rows satisfy neither polarity; '' satisfies NOT LIKE.
            let rs = e.query("SELECT s FROM t WHERE s NOT LIKE 'MAIL%'").unwrap();
            assert_eq!(rs.rows, vec![vec![Value::str("")]], "{label}");
            // The empty string matches the empty pattern and the bare '%'.
            let rs = e.query("SELECT s FROM t WHERE s LIKE ''").unwrap();
            assert_eq!(rs.rows, vec![vec![Value::str("")]], "{label}");
            let rs = e.query("SELECT COUNT(*) FROM t WHERE s LIKE '%'").unwrap();
            assert_eq!(rs.rows[0][0], Value::Int(3), "{label}");

            // Interpreted path: a column-dependent pattern cannot compile.
            let rs = e
                .query("SELECT s FROM t WHERE s LIKE s || '%' AND s LIKE 'MAIL%'")
                .unwrap();
            assert_eq!(rs.rows.len(), 2, "{label}");
            // A NULL pattern is UNKNOWN for every row, on both polarities.
            let rs = e.query("SELECT s FROM t WHERE s LIKE NULL").unwrap();
            assert!(rs.rows.is_empty(), "{label}: {rs:?}");
            let rs = e.query("SELECT s FROM t WHERE s NOT LIKE NULL").unwrap();
            assert!(rs.rows.is_empty(), "{label}: {rs:?}");

            // Group path: MIN over tenant 2's all-NULL group is NULL, which
            // must satisfy neither LIKE nor NOT LIKE in HAVING.
            for polarity in ["LIKE", "NOT LIKE"] {
                let rs = e
                    .query(&format!(
                        "SELECT ttid FROM t GROUP BY ttid \
                         HAVING MIN(s) {polarity} 'ZZZ%' ORDER BY ttid"
                    ))
                    .unwrap();
                let expected: Vec<Vec<Value>> = if polarity == "LIKE" {
                    vec![]
                } else {
                    vec![vec![Value::Int(1)]]
                };
                assert_eq!(rs.rows, expected, "{label} HAVING {polarity}");
            }
        }
    }

    /// GROUP BY over dictionary-encoded columns groups on codes (the
    /// engagement is visible through `dict_kernel_rows`) and returns exactly
    /// what the no-dictionary baseline returns — including NULL group keys
    /// and groups spanning several partition buckets (whose dictionaries
    /// assign different codes to the same string).
    #[test]
    fn dictionary_grouping_matches_baseline_and_engages() {
        let run = |dict: bool| {
            let config = if dict {
                EngineConfig::default()
            } else {
                EngineConfig::default().without_dictionary_encoding()
            };
            let mut e = Engine::new(config);
            e.create_table("t", &["ttid", "flag", "v"]);
            e.set_table_partition("t", "ttid").unwrap();
            let flags = ["R", "A", "N"];
            e.insert_values(
                "t",
                (0..300)
                    .map(|i| {
                        let flag = if i % 10 == 9 {
                            Value::Null
                        } else {
                            Value::str(flags[(i % 3) as usize])
                        };
                        vec![Value::Int(i % 4), flag, Value::Int(i)]
                    })
                    .collect(),
            )
            .unwrap();
            e.reset_stats();
            let rs = e
                .query(
                    "SELECT flag, COUNT(*) AS cnt, SUM(v) AS total FROM t \
                     WHERE v >= 10 GROUP BY flag ORDER BY cnt, flag",
                )
                .unwrap();
            (rs, e.stats())
        };
        let (dict_rs, dict_stats) = run(true);
        let (base_rs, base_stats) = run(false);
        assert_eq!(dict_rs, base_rs);
        assert_eq!(dict_stats.rows_scanned, base_stats.rows_scanned);
        assert_eq!(dict_stats.partitions_pruned, base_stats.partitions_pruned);
        assert!(
            dict_stats.dict_kernel_rows > 0,
            "code-space grouping did not engage: {dict_stats:?}"
        );
        assert_eq!(base_stats.dict_kernel_rows, 0);
        assert_eq!(base_stats.dict_columns, 0);
        assert!(dict_stats.dict_columns > 0);
    }

    /// Dictionary predicates on scans engage the code-space kernel and agree
    /// with the baseline, and `EXPLAIN` carries the `dict` marker only on
    /// dictionary-encoded deployments.
    #[test]
    fn dictionary_kernels_engage_on_string_predicates() {
        let run = |dict: bool| {
            let config = if dict {
                EngineConfig::default()
            } else {
                EngineConfig::default().without_dictionary_encoding()
            };
            let mut e = Engine::new(config);
            e.create_table("t", &["ttid", "mode"]);
            e.set_table_partition("t", "ttid").unwrap();
            let modes = ["MAIL", "SHIP", "RAIL", "AIR"];
            e.insert_values(
                "t",
                (0..200)
                    .map(|i| vec![Value::Int(i % 2), Value::str(modes[(i % 4) as usize])])
                    .collect(),
            )
            .unwrap();
            e.reset_stats();
            let rs = e
                .query("SELECT COUNT(*) FROM t WHERE mode IN ('MAIL', 'SHIP') AND ttid = 1")
                .unwrap();
            let explain = e
                .execute("EXPLAIN SELECT COUNT(*) FROM t WHERE mode IN ('MAIL', 'SHIP')")
                .unwrap();
            let text: String = explain
                .rows
                .iter()
                .map(|r| format!("{}\n", r[0].as_str().unwrap()))
                .collect();
            (rs, e.stats(), text)
        };
        let (dict_rs, dict_stats, dict_explain) = run(true);
        let (base_rs, base_stats, base_explain) = run(false);
        assert_eq!(dict_rs, base_rs);
        assert_eq!(dict_rs.rows[0][0], Value::Int(50));
        assert!(dict_stats.dict_kernel_rows > 0, "{dict_stats:?}");
        assert_eq!(base_stats.dict_kernel_rows, 0);
        assert!(dict_explain.contains("dict"), "{dict_explain}");
        assert!(!base_explain.contains("dict"), "{base_explain}");
    }

    #[test]
    fn contradictory_partition_predicates_scan_nothing() {
        let mut e = sample_engine();
        e.set_table_partition("Employees", "ttid").unwrap();
        e.reset_stats();
        let rs = e
            .query("SELECT COUNT(*) FROM Employees WHERE ttid = 0 AND ttid IN (1)")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(0));
        assert_eq!(e.stats().rows_scanned, 0);
        assert_eq!(e.stats().partitions_pruned, 2);
    }
}

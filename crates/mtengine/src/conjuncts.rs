//! Conjunct analysis shared by the planner and the executor.
//!
//! The WHERE clause of a rewritten query is handled as a pool of top-level
//! AND conjuncts (split by [`mtsql::visit::split_conjuncts`]). This module
//! answers the questions the planner asks about individual conjuncts:
//! against which schemas they resolve, which of them form equi-join keys,
//! which restrict a partition column to a computable key set, and what a
//! column-free expression folds to without running the executor.

use std::collections::BTreeSet;

use mtsql::ast::{BinaryOperator, ColumnRef, Expr, FunctionCall};
use mtsql::visit::{collect_aggregate_calls, collect_columns, contains_subquery};

use crate::schema::Schema;
use crate::value::Value;

/// `true` when every column referenced by `expr` resolves in `schema`.
pub fn expr_resolvable(expr: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    cols.iter().all(|c| schema.resolve(c).is_some())
}

/// Does the expression reference any column at all?
pub fn has_columns(expr: &Expr) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    !cols.is_empty()
}

/// Remove (and return) every conjunct that is sub-query free and fully
/// resolvable against `schema` — the ones a scan of that schema may evaluate
/// itself.
pub fn take_applicable(conjuncts: &mut Vec<Expr>, schema: &Schema) -> Vec<Expr> {
    let mut taken = Vec::new();
    conjuncts.retain(|c| {
        if !contains_subquery(c) && expr_resolvable(c, schema) {
            taken.push(c.clone());
            false
        } else {
            true
        }
    });
    taken
}

/// Find equi-join keys between two schemas among the conjuncts: conjuncts of
/// the form `lhs = rhs` where one side resolves fully in `left` and the other
/// fully in `right`. Returns pairs `(left key expr, right key expr)`.
pub fn equi_join_keys(conjuncts: &[Expr], left: &Schema, right: &Schema) -> Vec<(Expr, Expr)> {
    let mut keys = Vec::new();
    for c in conjuncts {
        if let Expr::BinaryOp {
            left: l,
            op: BinaryOperator::Eq,
            right: r,
        } = c
        {
            if contains_subquery(c) {
                continue;
            }
            let l_in_left = expr_resolvable(l, left) && has_columns(l);
            let l_in_right = expr_resolvable(l, right) && has_columns(l);
            let r_in_left = expr_resolvable(r, left) && has_columns(r);
            let r_in_right = expr_resolvable(r, right) && has_columns(r);
            if l_in_left && r_in_right && !l_in_right {
                keys.push(((**l).clone(), (**r).clone()));
            } else if r_in_left && l_in_right && !r_in_right {
                keys.push(((**r).clone(), (**l).clone()));
            }
        }
    }
    keys
}

/// Is this conjunct one of the equalities a hash join consumed as a key pair?
pub fn is_consumed_equi_key(conjunct: &Expr, keys: &[(Expr, Expr)]) -> bool {
    keys.iter().any(|(l, r)| {
        matches!(conjunct, Expr::BinaryOp { left, op: BinaryOperator::Eq, right }
            if (**left == *l && **right == *r) || (**left == *r && **right == *l))
    })
}

/// The set of partition keys a conjunct restricts the partition column to, or
/// `None` when the conjunct is not a recognizable key predicate
/// (`col = constant` / `col IN (constants)` on the partition column). The
/// `fold` callback evaluates candidate key expressions to constants — the
/// planner passes the executor's full constant folder so pruning recognises
/// every constant form a scan filter would.
pub fn partition_keys_of_conjunct(
    conjunct: &Expr,
    schema: &Schema,
    partition_col: usize,
    fold: &dyn Fn(&Expr) -> Option<Value>,
) -> Option<BTreeSet<i64>> {
    let is_partition_column =
        |e: &Expr| matches!(e, Expr::Column(c) if schema.resolve(c) == Some(partition_col));
    match conjunct {
        Expr::BinaryOp {
            left,
            op: BinaryOperator::Eq,
            right,
        } => {
            let key_expr = if is_partition_column(left) {
                right
            } else if is_partition_column(right) {
                left
            } else {
                return None;
            };
            match fold(key_expr)? {
                Value::Int(k) => Some([k].into_iter().collect()),
                _ => None,
            }
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } if is_partition_column(expr) => {
            let mut keys = BTreeSet::new();
            for item in list {
                match fold(item)? {
                    Value::Int(k) => {
                        keys.insert(k);
                    }
                    _ => return None,
                }
            }
            Some(keys)
        }
        _ => None,
    }
}

/// Does the expression contain an aggregate call (outside sub-queries)?
pub fn contains_aggregate(expr: &Expr) -> bool {
    let mut calls = Vec::new();
    collect_aggregate_calls(expr, &mut calls);
    !calls.is_empty()
}

/// Rebuild `expr` with every column reference replaced through `subst`;
/// `None` when any substitution fails. Sub-query variants are rejected — the
/// callers only pass sub-query-free conjuncts.
pub fn map_columns(expr: &Expr, subst: &mut dyn FnMut(&ColumnRef) -> Option<Expr>) -> Option<Expr> {
    let map_box = |e: &Expr, s: &mut dyn FnMut(&ColumnRef) -> Option<Expr>| -> Option<Box<Expr>> {
        map_columns(e, s).map(Box::new)
    };
    Some(match expr {
        Expr::Column(c) => return subst(c),
        Expr::Literal(l) => Expr::Literal(l.clone()),
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: map_box(left, subst)?,
            op: *op,
            right: map_box(right, subst)?,
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: map_box(expr, subst)?,
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| map_columns(a, subst))
                .collect::<Option<Vec<_>>>()?,
            distinct: f.distinct,
        }),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: match operand {
                Some(o) => Some(map_box(o, subst)?),
                None => None,
            },
            when_then: when_then
                .iter()
                .map(|(w, t)| Some((map_columns(w, subst)?, map_columns(t, subst)?)))
                .collect::<Option<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(map_box(e, subst)?),
                None => None,
            },
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: map_box(expr, subst)?,
            list: list
                .iter()
                .map(|i| map_columns(i, subst))
                .collect::<Option<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: map_box(expr, subst)?,
            low: map_box(low, subst)?,
            high: map_box(high, subst)?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: map_box(expr, subst)?,
            pattern: map_box(pattern, subst)?,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: map_box(expr, subst)?,
            negated: *negated,
        },
        Expr::Extract { field, expr } => Expr::Extract {
            field: *field,
            expr: map_box(expr, subst)?,
        },
        Expr::Substring {
            expr,
            start,
            length,
        } => Expr::Substring {
            expr: map_box(expr, subst)?,
            start: map_box(start, subst)?,
            length: match length {
                Some(l) => Some(map_box(l, subst)?),
                None => None,
            },
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: map_box(expr, subst)?,
            data_type: *data_type,
        },
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsql::parse_expression;

    fn schema() -> Schema {
        Schema::qualified("t", &["ttid".into(), "v".into()])
    }

    /// The production fold: the executor's full constant folder over an
    /// empty engine (what the planner passes in).
    fn with_fold(check: impl FnOnce(&dyn Fn(&Expr) -> Option<Value>)) {
        let engine = crate::Engine::new(crate::EngineConfig::default());
        let executor = crate::exec::Executor::new(&engine);
        check(&|e: &Expr| executor.fold_const(e));
    }

    #[test]
    fn take_applicable_consumes_resolvable_conjuncts() {
        let mut pool = vec![
            parse_expression("t.v > 10").unwrap(),
            parse_expression("other.x = 1").unwrap(),
            parse_expression("v IN (SELECT v FROM s)").unwrap(),
        ];
        let taken = take_applicable(&mut pool, &schema());
        assert_eq!(taken.len(), 1);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn partition_keys_from_eq_and_in() {
        with_fold(|fold| {
            let s = schema();
            let eq = parse_expression("t.ttid = 3").unwrap();
            assert_eq!(
                partition_keys_of_conjunct(&eq, &s, 0, fold),
                Some([3].into_iter().collect())
            );
            let folded = parse_expression("ttid = 1 + 2").unwrap();
            assert_eq!(
                partition_keys_of_conjunct(&folded, &s, 0, fold),
                Some([3].into_iter().collect())
            );
            let cast = parse_expression("ttid = CAST('4' AS INTEGER)").unwrap();
            assert_eq!(
                partition_keys_of_conjunct(&cast, &s, 0, fold),
                Some([4].into_iter().collect())
            );
            let inl = parse_expression("ttid IN (1, 2, 5)").unwrap();
            assert_eq!(
                partition_keys_of_conjunct(&inl, &s, 0, fold),
                Some([1, 2, 5].into_iter().collect())
            );
            let other = parse_expression("v = 3").unwrap();
            assert_eq!(partition_keys_of_conjunct(&other, &s, 0, fold), None);
            let column_bound = parse_expression("ttid = v + 1").unwrap();
            assert_eq!(partition_keys_of_conjunct(&column_bound, &s, 0, fold), None);
        });
    }

    #[test]
    fn map_columns_substitutes_everywhere() {
        let e =
            parse_expression("x BETWEEN 1 AND 10 AND SUBSTRING(x FROM 1 FOR 2) = 'ab'").unwrap();
        let replacement = parse_expression("base.col * 2").unwrap();
        let mapped = map_columns(&e, &mut |_| Some(replacement.clone())).unwrap();
        let mut cols = Vec::new();
        collect_columns(&mapped, &mut cols);
        assert!(cols.iter().all(|c| c.name == "col"));
    }
}

//! Conjunct analysis and compiled scan predicates, shared by the planner and
//! the executor.
//!
//! The WHERE clause of a rewritten query is handled as a pool of top-level
//! AND conjuncts (split by [`mtsql::visit::split_conjuncts`]). This module
//! answers the questions the planner asks about individual conjuncts:
//! against which schemas they resolve, which of them form equi-join keys,
//! which restrict a partition column to a computable key set, and what a
//! column-free expression folds to without running the executor.
//!
//! It also owns the *compiled* predicate forms a scan evaluates per row
//! ([`CompiledPred`], produced by the executor's predicate compiler) and
//! their **column kernels**: [`eval_vectorized`] applies one compiled
//! predicate to a whole [`ColumnBucket`] column at a time, narrowing a
//! [`Selection`] bitmap, so columnar scans touch only the predicate columns
//! and materialize full rows for the surviving row ids alone.

use std::cmp::Ordering;
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

use mtsql::ast::{BinaryOperator, ColumnRef, Expr, FunctionCall};
use mtsql::visit::{collect_aggregate_calls, collect_columns, contains_param, contains_subquery};

use crate::schema::Schema;
use crate::table::{ColumnBucket, ColumnVec};
use crate::value::Value;

/// `true` when every column referenced by `expr` resolves in `schema`.
pub fn expr_resolvable(expr: &Expr, schema: &Schema) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    cols.iter().all(|c| schema.resolve(c).is_some())
}

/// Does the expression reference any column at all?
pub fn has_columns(expr: &Expr) -> bool {
    let mut cols = Vec::new();
    collect_columns(expr, &mut cols);
    !cols.is_empty()
}

/// Remove (and return) every conjunct that is sub-query free and fully
/// resolvable against `schema` — the ones a scan of that schema may evaluate
/// itself.
pub fn take_applicable(conjuncts: &mut Vec<Expr>, schema: &Schema) -> Vec<Expr> {
    let mut taken = Vec::new();
    conjuncts.retain(|c| {
        if !contains_subquery(c) && expr_resolvable(c, schema) {
            taken.push(c.clone());
            false
        } else {
            true
        }
    });
    taken
}

/// Find equi-join keys between two schemas among the conjuncts: conjuncts of
/// the form `lhs = rhs` where one side resolves fully in `left` and the other
/// fully in `right`. Returns pairs `(left key expr, right key expr)`.
pub fn equi_join_keys(conjuncts: &[Expr], left: &Schema, right: &Schema) -> Vec<(Expr, Expr)> {
    let mut keys = Vec::new();
    for c in conjuncts {
        if let Expr::BinaryOp {
            left: l,
            op: BinaryOperator::Eq,
            right: r,
        } = c
        {
            if contains_subquery(c) {
                continue;
            }
            let l_in_left = expr_resolvable(l, left) && has_columns(l);
            let l_in_right = expr_resolvable(l, right) && has_columns(l);
            let r_in_left = expr_resolvable(r, left) && has_columns(r);
            let r_in_right = expr_resolvable(r, right) && has_columns(r);
            if l_in_left && r_in_right && !l_in_right {
                keys.push(((**l).clone(), (**r).clone()));
            } else if r_in_left && l_in_right && !r_in_right {
                keys.push(((**r).clone(), (**l).clone()));
            }
        }
    }
    keys
}

/// Is this conjunct one of the equalities a hash join consumed as a key pair?
pub fn is_consumed_equi_key(conjunct: &Expr, keys: &[(Expr, Expr)]) -> bool {
    keys.iter().any(|(l, r)| {
        matches!(conjunct, Expr::BinaryOp { left, op: BinaryOperator::Eq, right }
            if (**left == *l && **right == *r) || (**left == *r && **right == *l))
    })
}

/// The set of partition keys a conjunct restricts the partition column to, or
/// `None` when the conjunct is not a recognizable key predicate
/// (`col = constant` / `col IN (constants)` on the partition column). The
/// `fold` callback evaluates candidate key expressions to constants — the
/// planner passes the executor's full constant folder so pruning recognises
/// every constant form a scan filter would.
pub fn partition_keys_of_conjunct(
    conjunct: &Expr,
    schema: &Schema,
    partition_col: usize,
    fold: &dyn Fn(&Expr) -> Option<Value>,
) -> Option<BTreeSet<i64>> {
    let is_partition_column =
        |e: &Expr| matches!(e, Expr::Column(c) if schema.resolve(c) == Some(partition_col));
    match conjunct {
        Expr::BinaryOp {
            left,
            op: BinaryOperator::Eq,
            right,
        } => {
            let key_expr = if is_partition_column(left) {
                right
            } else if is_partition_column(right) {
                left
            } else {
                return None;
            };
            match fold(key_expr)? {
                Value::Int(k) => Some([k].into_iter().collect()),
                _ => None,
            }
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } if is_partition_column(expr) => {
            let mut keys = BTreeSet::new();
            for item in list {
                match fold(item)? {
                    Value::Int(k) => {
                        keys.insert(k);
                    }
                    _ => return None,
                }
            }
            Some(keys)
        }
        _ => None,
    }
}

/// Is this conjunct a partition-key predicate whose key expressions involve
/// parameter placeholders (`ttid = $1`, `ttid IN ($1, 3)`)? Such a conjunct
/// cannot prune at plan time — the parameter value is unknown — but
/// re-resolves to a concrete key set at execution time once parameters are
/// bound (see the executor's effective-prune-keys computation). The key side
/// must be column- and sub-query-free so binding alone makes it constant.
pub fn is_param_partition_key_conjunct(
    conjunct: &Expr,
    schema: &Schema,
    partition_col: usize,
) -> bool {
    let is_partition_column =
        |e: &Expr| matches!(e, Expr::Column(c) if schema.resolve(c) == Some(partition_col));
    let bindable_const = |e: &Expr| !has_columns(e) && !contains_subquery(e);
    match conjunct {
        Expr::BinaryOp {
            left,
            op: BinaryOperator::Eq,
            right,
        } => {
            (is_partition_column(left) && bindable_const(right) && contains_param(right))
                || (is_partition_column(right) && bindable_const(left) && contains_param(left))
        }
        Expr::InList {
            expr,
            list,
            negated: false,
        } if is_partition_column(expr) => {
            list.iter().all(bindable_const) && list.iter().any(contains_param)
        }
        _ => false,
    }
}

/// Does the expression contain an aggregate call (outside sub-queries)?
pub fn contains_aggregate(expr: &Expr) -> bool {
    let mut calls = Vec::new();
    collect_aggregate_calls(expr, &mut calls);
    !calls.is_empty()
}

/// Rebuild `expr` with every column reference replaced through `subst`;
/// `None` when any substitution fails. Sub-query variants are rejected — the
/// callers only pass sub-query-free conjuncts.
pub fn map_columns(expr: &Expr, subst: &mut dyn FnMut(&ColumnRef) -> Option<Expr>) -> Option<Expr> {
    let map_box = |e: &Expr, s: &mut dyn FnMut(&ColumnRef) -> Option<Expr>| -> Option<Box<Expr>> {
        map_columns(e, s).map(Box::new)
    };
    Some(match expr {
        Expr::Column(c) => return subst(c),
        Expr::Literal(l) => Expr::Literal(l.clone()),
        Expr::Param(i) => Expr::Param(*i),
        Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
            left: map_box(left, subst)?,
            op: *op,
            right: map_box(right, subst)?,
        },
        Expr::UnaryOp { op, expr } => Expr::UnaryOp {
            op: *op,
            expr: map_box(expr, subst)?,
        },
        Expr::Function(f) => Expr::Function(FunctionCall {
            name: f.name.clone(),
            args: f
                .args
                .iter()
                .map(|a| map_columns(a, subst))
                .collect::<Option<Vec<_>>>()?,
            distinct: f.distinct,
        }),
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => Expr::Case {
            operand: match operand {
                Some(o) => Some(map_box(o, subst)?),
                None => None,
            },
            when_then: when_then
                .iter()
                .map(|(w, t)| Some((map_columns(w, subst)?, map_columns(t, subst)?)))
                .collect::<Option<Vec<_>>>()?,
            else_expr: match else_expr {
                Some(e) => Some(map_box(e, subst)?),
                None => None,
            },
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: map_box(expr, subst)?,
            list: list
                .iter()
                .map(|i| map_columns(i, subst))
                .collect::<Option<Vec<_>>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: map_box(expr, subst)?,
            low: map_box(low, subst)?,
            high: map_box(high, subst)?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: map_box(expr, subst)?,
            pattern: map_box(pattern, subst)?,
            negated: *negated,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: map_box(expr, subst)?,
            negated: *negated,
        },
        Expr::Extract { field, expr } => Expr::Extract {
            field: *field,
            expr: map_box(expr, subst)?,
        },
        Expr::Substring {
            expr,
            start,
            length,
        } => Expr::Substring {
            expr: map_box(expr, subst)?,
            start: map_box(start, subst)?,
            length: match length {
                Some(l) => Some(map_box(l, subst)?),
                None => None,
            },
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: map_box(expr, subst)?,
            data_type: *data_type,
        },
        Expr::Exists { .. } | Expr::InSubquery { .. } | Expr::ScalarSubquery(_) => return None,
    })
}

// ---------------------------------------------------------------------------
// Compiled scan predicates
// ---------------------------------------------------------------------------

/// One conjunct of a scan filter, pre-lowered for per-row evaluation. All
/// variants except [`CompiledPred::Generic`] are pure value comparisons:
/// `Send + Sync`, no engine access — the forms parallel scans may evaluate
/// on worker threads and columnar scans may evaluate as column kernels.
#[derive(Debug, Clone)]
pub enum CompiledPred {
    /// `column <cmp> constant` with a pre-resolved column index.
    Compare {
        /// Column index into the scan schema.
        idx: usize,
        /// The comparison operator (normalized so the column is on the left).
        op: BinaryOperator,
        /// The pre-folded constant operand.
        value: Value,
    },
    /// `column [NOT] IN (constants)`.
    InSet {
        /// Column index into the scan schema.
        idx: usize,
        /// The pre-folded constant list.
        values: Vec<Value>,
        /// `NOT IN` when set.
        negated: bool,
    },
    /// `column [NOT] BETWEEN constant AND constant`.
    Between {
        /// Column index into the scan schema.
        idx: usize,
        /// Pre-folded lower bound.
        lo: Value,
        /// Pre-folded upper bound.
        hi: Value,
        /// `NOT BETWEEN` when set.
        negated: bool,
    },
    /// `column [NOT] LIKE 'literal'` with a precompiled pattern.
    Like {
        /// Column index into the scan schema.
        idx: usize,
        /// The precompiled pattern.
        pattern: Arc<LikePattern>,
        /// `NOT LIKE` when set.
        negated: bool,
    },
    /// `column ∈ key set` — the probe-side membership kernel of a
    /// decorrelated semi join: the build side's key values, shared as a hash
    /// set and probed per row *before* materialization (the "bloom" filter
    /// of the unnested plan; exact, not approximate). Never produced by the
    /// predicate compiler — the executor injects it into the probe scan's
    /// filter. NULL never matches (the set holds no NULLs, and a NULL probe
    /// key cannot equal anything).
    KeySet {
        /// Column index into the scan schema.
        idx: usize,
        /// The build-side key values (one key column's projection).
        set: Arc<HashSet<Value>>,
    },
    /// Any other conjunct, evaluated by the interpreter (no kernel form).
    Generic(Expr),
}

impl CompiledPred {
    /// `true` for the pure pre-compiled forms (everything but `Generic`) —
    /// the predicates that may run on worker threads and as column kernels.
    pub fn is_fast(&self) -> bool {
        !matches!(self, CompiledPred::Generic(_))
    }

    /// The pre-resolved column index of a fast predicate form; `None` for
    /// the interpreted fallback. Lets callers that read columns individually
    /// (streaming cursors) fetch only the predicate's column.
    pub fn column_index(&self) -> Option<usize> {
        match self {
            CompiledPred::Compare { idx, .. }
            | CompiledPred::InSet { idx, .. }
            | CompiledPred::Between { idx, .. }
            | CompiledPred::Like { idx, .. }
            | CompiledPred::KeySet { idx, .. } => Some(*idx),
            CompiledPred::Generic(_) => None,
        }
    }
}

/// Does the operator hold for the given concrete ordering?
#[inline]
fn ord_matches(op: BinaryOperator, ord: Ordering) -> bool {
    match op {
        BinaryOperator::Eq => ord == Ordering::Equal,
        BinaryOperator::NotEq => ord != Ordering::Equal,
        BinaryOperator::Lt => ord == Ordering::Less,
        BinaryOperator::LtEq => ord != Ordering::Greater,
        BinaryOperator::Gt => ord == Ordering::Greater,
        BinaryOperator::GtEq => ord != Ordering::Less,
        _ => unreachable!("predicate compilation only emits comparisons"),
    }
}

/// SQL comparison outcome: an incomparable pair (NULL involved) is false.
#[inline]
fn ord_opt_matches(op: BinaryOperator, ord: Option<Ordering>) -> bool {
    ord.is_some_and(|o| ord_matches(op, o))
}

/// SQL three-valued `v [NOT] BETWEEN lo AND hi`, reduced to the WHERE-clause
/// outcome (UNKNOWN filters the row). `inside` is evaluated as
/// `(v >= lo) AND (v <= hi)` under three-valued logic: a NULL or otherwise
/// incomparable operand makes a leg UNKNOWN, a definite `false` leg makes the
/// whole AND false, and `NOT` maps UNKNOWN to UNKNOWN — so NULL rows satisfy
/// neither `BETWEEN` nor `NOT BETWEEN`, matching PostgreSQL. This is the
/// single definition all three evaluation paths (interpreter, compiled row
/// predicates, column kernels) share.
#[inline]
pub fn between_matches(v: &Value, lo: &Value, hi: &Value, negated: bool) -> bool {
    let ge = v.compare(lo).map(|o| o != Ordering::Less);
    let le = v.compare(hi).map(|o| o != Ordering::Greater);
    let inside = match (ge, le) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    };
    match inside {
        Some(b) => b != negated,
        None => false,
    }
}

/// Evaluate one *fast* compiled predicate against a single value (the value
/// of the predicate's column in some row). Panics on
/// [`CompiledPred::Generic`] — callers route those through the interpreter.
pub fn fast_pred_value(pred: &CompiledPred, v: &Value) -> bool {
    match pred {
        CompiledPred::Compare { op, value, .. } => ord_opt_matches(*op, v.compare(value)),
        CompiledPred::InSet {
            values, negated, ..
        } => {
            if v.is_null() {
                false
            } else {
                let found = values.iter().any(|i| v.sql_eq(i) == Some(true));
                found != *negated
            }
        }
        CompiledPred::Between {
            lo, hi, negated, ..
        } => between_matches(v, lo, hi, *negated),
        CompiledPred::Like {
            pattern, negated, ..
        } => match v.as_str() {
            Some(text) => pattern.matches(text) != *negated,
            None => false,
        },
        CompiledPred::KeySet { set, .. } => !v.is_null() && set.contains(v),
        CompiledPred::Generic(_) => unreachable!("fast paths only run compiled predicates"),
    }
}

/// Evaluate one *fast* compiled predicate against a row.
pub fn fast_pred_matches(pred: &CompiledPred, row: &[Value]) -> bool {
    let idx = match pred {
        CompiledPred::Compare { idx, .. }
        | CompiledPred::InSet { idx, .. }
        | CompiledPred::Between { idx, .. }
        | CompiledPred::Like { idx, .. }
        | CompiledPred::KeySet { idx, .. } => *idx,
        CompiledPred::Generic(_) => unreachable!("fast paths only run compiled predicates"),
    };
    fast_pred_value(pred, &row[idx])
}

/// `true` when every fast predicate accepts the row (parallel scan workers).
pub fn fast_filter_matches(filter: &[CompiledPred], row: &[Value]) -> bool {
    filter.iter().all(|p| fast_pred_matches(p, row))
}

/// Mirror a comparison operator for swapped operands (`5 < x` ⇒ `x > 5`).
pub(crate) fn flip_comparison(op: BinaryOperator) -> BinaryOperator {
    match op {
        BinaryOperator::Lt => BinaryOperator::Gt,
        BinaryOperator::LtEq => BinaryOperator::GtEq,
        BinaryOperator::Gt => BinaryOperator::Lt,
        BinaryOperator::GtEq => BinaryOperator::LtEq,
        other => other,
    }
}

/// A SQL LIKE pattern (`%` and `_` wildcards) precompiled to its character
/// sequence, so matching a row does not re-collect the pattern.
#[derive(Debug, Clone)]
pub struct LikePattern {
    chars: Vec<char>,
}

impl LikePattern {
    /// Compile a pattern.
    pub fn new(pattern: &str) -> Self {
        LikePattern {
            chars: pattern.chars().collect(),
        }
    }

    /// Match a text against the pattern.
    pub fn matches(&self, text: &str) -> bool {
        fn rec(t: &[char], p: &[char]) -> bool {
            if p.is_empty() {
                return t.is_empty();
            }
            match p[0] {
                '%' => {
                    // Try consuming 0..=len characters.
                    (0..=t.len()).any(|k| rec(&t[k..], &p[1..]))
                }
                '_' => !t.is_empty() && rec(&t[1..], &p[1..]),
                c => !t.is_empty() && t[0] == c && rec(&t[1..], &p[1..]),
            }
        }
        let t: Vec<char> = text.chars().collect();
        rec(&t, &self.chars)
    }
}

/// SQL LIKE pattern matching with `%` and `_` wildcards (one-shot form; hot
/// paths precompile via [`LikePattern`]).
pub fn like_match(text: &str, pattern: &str) -> bool {
    LikePattern::new(pattern).matches(text)
}

// ---------------------------------------------------------------------------
// Selection bitmaps and column kernels
// ---------------------------------------------------------------------------

/// A selection bitmap over the rows of one bucket: bit set ⇒ the row is still
/// selected. Kernels narrow the selection predicate by predicate; the
/// surviving row ids are the ones a columnar scan materializes.
#[derive(Debug, Clone)]
pub struct Selection {
    words: Vec<u64>,
    len: usize,
}

impl Selection {
    /// A selection with all `len` rows selected.
    pub fn all(len: usize) -> Self {
        let mut words = vec![!0u64; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        Selection { words, len }
    }

    /// Number of rows the selection ranges over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the selection ranges over no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of rows still selected.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Keep only the selected rows for which `keep` holds.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        for (w, word) in self.words.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if !keep(w * 64 + b) {
                    *word &= !(1u64 << b);
                }
            }
        }
    }

    /// Visit every selected row id, in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(usize)) {
        for (w, word) in self.words.iter().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                f(w * 64 + b);
            }
        }
    }

    /// Narrow the selection word-at-a-time: for every 64-row chunk whose
    /// word still has a bit set, `mask(chunk_start, chunk_len)` returns the
    /// match bitmap of rows `chunk_start .. chunk_start + chunk_len` (bit
    /// `k` set ⇒ row `chunk_start + k` matches), which is ANDed in. Chunks
    /// earlier predicates already emptied are skipped without evaluating
    /// `mask` — the word-level form of short-circuiting a conjunction.
    /// Kernels build the mask with branchless 64-lane loops the compiler
    /// can unroll and autovectorize.
    pub fn narrow_words(&mut self, mut mask: impl FnMut(usize, usize) -> u64) {
        for (w, word) in self.words.iter_mut().enumerate() {
            if *word == 0 {
                continue;
            }
            let start = w * 64;
            *word &= mask(start, (self.len - start).min(64));
        }
    }
}

/// Build the match mask of one 64-lane chunk: bit `k` is set when row
/// `offset + start + k` of the column is non-null and `pred` holds for its
/// value. No early exit and no data-dependent branches — the predicate
/// outcome is accumulated as a bit — so the loop autovectorizes over the
/// typed column array.
#[inline]
fn chunk_mask<T: Copy>(
    vals: &[T],
    is_null: impl Fn(usize) -> bool,
    offset: usize,
    start: usize,
    len: usize,
    pred: impl Fn(T) -> bool,
) -> u64 {
    let mut m = 0u64;
    for k in 0..len {
        let i = offset + start + k;
        m |= ((!is_null(i) && pred(vals[i])) as u64) << k;
    }
    m
}

/// The match bitmap of one fast compiled predicate over a dictionary: entry
/// `c` is the predicate's outcome for dictionary value `c`. Resolving the
/// predicate costs one [`fast_pred_value`] call *per distinct value* (≤
/// [`crate::table::DICT_MAX_DISTINCT`]) instead of one per row — this is the
/// code-space form of equality, IN, BETWEEN-on-strings and LIKE. Because each
/// entry is computed by the row path's own [`fast_pred_value`], the bitmap is
/// result-identical to per-row evaluation by construction.
pub fn dict_filter_bitmap(pred: &CompiledPred, dict: &[Arc<str>]) -> Vec<bool> {
    dict.iter()
        .map(|s| fast_pred_value(pred, &Value::Str(Arc::clone(s))))
        .collect()
}

/// Apply one fast compiled predicate to a columnar bucket, column-at-a-time,
/// narrowing `sel` to the rows that satisfy it. Equivalent to
/// [`eval_vectorized_range`] at offset 0 over the whole bucket.
pub fn eval_vectorized(pred: &CompiledPred, bucket: &ColumnBucket, sel: &mut Selection) -> u64 {
    eval_vectorized_range(pred, bucket, 0, sel)
}

/// Apply one fast compiled predicate to the row range
/// `[offset, offset + sel.len())` of a columnar bucket, narrowing `sel`
/// (whose bit `i` stands for bucket row `offset + i`) to the rows that
/// satisfy it. Morsel workers evaluate their row range this way without
/// copying columns. Returns the number of rows evaluated *in code space*
/// (dictionary-encoded columns: the predicate is resolved against the
/// dictionary once via [`dict_filter_bitmap`] and rows compare codes) — 0
/// for every other column layout; callers feed it into the
/// `dict_kernel_rows` counter.
///
/// The dictionary and typed numeric/date kernels run through
/// [`Selection::narrow_words`]: branchless 64-lane chunk loops over the raw
/// `u32` code / `i64` / `f64` / day-number arrays that the compiler can
/// autovectorize, with already-empty selection words skipped entirely. They
/// mirror [`Value::compare`] exactly for their (column type, constant type)
/// pair; string kernels and every other combination fall back to a
/// per-value loop — the string fallbacks chase heap pointers, and
/// [`fast_pred_value`] is the same code as the row path — so columnar and
/// row scans are result-identical by construction. NULL slots follow the
/// row path's three-valued semantics: they never satisfy a comparison, IN,
/// LIKE, BETWEEN or NOT BETWEEN (the comparison is UNKNOWN and UNKNOWN rows
/// are filtered, see [`between_matches`]).
///
/// Panics on [`CompiledPred::Generic`]; the executor interprets those against
/// late-materialized rows instead.
pub fn eval_vectorized_range(
    pred: &CompiledPred,
    bucket: &ColumnBucket,
    offset: usize,
    sel: &mut Selection,
) -> u64 {
    // Dictionary-encoded predicate columns take the code-space kernel for
    // every predicate form: resolve once against the dictionary, compare
    // codes per row. NULL slots hold placeholder codes (always in-bounds),
    // so the chunk loop may index the bitmap before the null bit wins.
    if let Some(idx) = pred.column_index() {
        let col = bucket.column(idx);
        if let ColumnVec::Dict(d) = col.data() {
            let bitmap = dict_filter_bitmap(pred, d.dict());
            let evaluated = sel.count() as u64;
            let codes = d.codes();
            sel.narrow_words(|start, len| {
                chunk_mask(
                    codes,
                    |i| col.is_null(i),
                    offset,
                    start,
                    len,
                    |c| bitmap[c as usize],
                )
            });
            return evaluated;
        }
    }
    match pred {
        CompiledPred::Compare { idx, op, value } => {
            let col = bucket.column(*idx);
            let op = *op;
            match (col.data(), value) {
                (ColumnVec::Int(xs), Value::Int(k)) => {
                    let k = *k;
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| ord_matches(op, x.cmp(&k)),
                        )
                    });
                }
                (ColumnVec::Int(xs), Value::Float(f)) => {
                    let f = *f;
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| ord_opt_matches(op, (x as f64).partial_cmp(&f)),
                        )
                    });
                }
                (ColumnVec::Float(xs), Value::Int(k)) => {
                    let k = *k as f64;
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| ord_opt_matches(op, x.partial_cmp(&k)),
                        )
                    });
                }
                (ColumnVec::Float(xs), Value::Float(f)) => {
                    let f = *f;
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| ord_opt_matches(op, x.partial_cmp(&f)),
                        )
                    });
                }
                (ColumnVec::Date(xs), Value::Date(d)) => {
                    let d = *d;
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| ord_matches(op, x.cmp(&d)),
                        )
                    });
                }
                (ColumnVec::Date(xs), Value::Int(k)) => {
                    let k = *k;
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| ord_matches(op, (x as i64).cmp(&k)),
                        )
                    });
                }
                (ColumnVec::Str(xs), Value::Str(s)) => {
                    let s: &str = s;
                    sel.retain(|i| {
                        let i = offset + i;
                        !col.is_null(i) && ord_matches(op, xs[i].as_ref().cmp(s))
                    });
                }
                _ => sel.retain(|i| fast_pred_value(pred, &col.value(offset + i))),
            }
        }
        CompiledPred::Between {
            idx,
            lo,
            hi,
            negated,
        } => {
            let col = bucket.column(*idx);
            let negated = *negated;
            // NULL rows mirror the row path's three-valued logic: the
            // comparison is UNKNOWN, and UNKNOWN filters the row for both
            // BETWEEN and NOT BETWEEN (see [`between_matches`]).
            match (col.data(), lo, hi) {
                (ColumnVec::Int(xs), Value::Int(lo), Value::Int(hi)) => {
                    let (lo, hi) = (*lo, *hi);
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| (x >= lo && x <= hi) != negated,
                        )
                    });
                }
                // NaN bounds make every comparison UNKNOWN — leave those to
                // the generic fallback; a NaN *value* is likewise UNKNOWN
                // and filtered for both polarities, matching the row path.
                (ColumnVec::Float(xs), Value::Float(lo), Value::Float(hi))
                    if !lo.is_nan() && !hi.is_nan() =>
                {
                    let (lo, hi) = (*lo, *hi);
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| !x.is_nan() && ((x >= lo && x <= hi) != negated),
                        )
                    });
                }
                (ColumnVec::Date(xs), Value::Date(lo), Value::Date(hi)) => {
                    let (lo, hi) = (*lo, *hi);
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| (x >= lo && x <= hi) != negated,
                        )
                    });
                }
                _ => sel.retain(|i| fast_pred_value(pred, &col.value(offset + i))),
            }
        }
        CompiledPred::InSet {
            idx,
            values,
            negated,
        } => {
            let col = bucket.column(*idx);
            let negated = *negated;
            match col.data() {
                ColumnVec::Int(xs) if values.iter().all(|v| matches!(v, Value::Int(_))) => {
                    let set: Vec<i64> = values
                        .iter()
                        .filter_map(|v| match v {
                            Value::Int(k) => Some(*k),
                            _ => None,
                        })
                        .collect();
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| set.contains(&x) != negated,
                        )
                    });
                }
                ColumnVec::Str(xs) if values.iter().all(|v| matches!(v, Value::Str(_))) => {
                    sel.retain(|i| {
                        let i = offset + i;
                        if col.is_null(i) {
                            return false;
                        }
                        let found = values
                            .iter()
                            .any(|v| matches!(v, Value::Str(s) if s.as_ref() == xs[i].as_ref()));
                        found != negated
                    });
                }
                _ => sel.retain(|i| fast_pred_value(pred, &col.value(offset + i))),
            }
        }
        CompiledPred::Like {
            idx,
            pattern,
            negated,
        } => {
            let col = bucket.column(*idx);
            let negated = *negated;
            match col.data() {
                ColumnVec::Str(xs) => {
                    sel.retain(|i| {
                        let i = offset + i;
                        !col.is_null(i) && (pattern.matches(&xs[i]) != negated)
                    });
                }
                _ => sel.retain(|i| fast_pred_value(pred, &col.value(offset + i))),
            }
        }
        CompiledPred::KeySet { idx, set } => {
            let col = bucket.column(*idx);
            match col.data() {
                // Typed numeric/date lanes probe the shared set per value;
                // `Value`'s `Hash`/`Eq` coerce Int and Float consistently
                // with join-key equality, so the kernel matches the exact
                // post-materialization membership check row for row.
                ColumnVec::Int(xs) => {
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| set.contains(&Value::Int(x)),
                        )
                    });
                }
                ColumnVec::Date(xs) => {
                    sel.narrow_words(|s, l| {
                        chunk_mask(
                            xs,
                            |i| col.is_null(i),
                            offset,
                            s,
                            l,
                            |x| set.contains(&Value::Date(x)),
                        )
                    });
                }
                ColumnVec::Str(xs) => {
                    sel.retain(|i| {
                        let i = offset + i;
                        !col.is_null(i) && set.contains(&Value::Str(Arc::clone(&xs[i])))
                    });
                }
                _ => sel.retain(|i| fast_pred_value(pred, &col.value(offset + i))),
            }
        }
        CompiledPred::Generic(_) => unreachable!("column kernels only run compiled predicates"),
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtsql::parse_expression;

    fn schema() -> Schema {
        Schema::qualified("t", &["ttid".into(), "v".into()])
    }

    /// The production fold: the executor's full constant folder over an
    /// empty engine (what the planner passes in).
    fn with_fold(check: impl FnOnce(&dyn Fn(&Expr) -> Option<Value>)) {
        let engine = crate::Engine::new(crate::EngineConfig::default());
        let executor = crate::exec::Executor::new(&engine);
        check(&|e: &Expr| executor.fold_const(e));
    }

    #[test]
    fn take_applicable_consumes_resolvable_conjuncts() {
        let mut pool = vec![
            parse_expression("t.v > 10").unwrap(),
            parse_expression("other.x = 1").unwrap(),
            parse_expression("v IN (SELECT v FROM s)").unwrap(),
        ];
        let taken = take_applicable(&mut pool, &schema());
        assert_eq!(taken.len(), 1);
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn partition_keys_from_eq_and_in() {
        with_fold(|fold| {
            let s = schema();
            let eq = parse_expression("t.ttid = 3").unwrap();
            assert_eq!(
                partition_keys_of_conjunct(&eq, &s, 0, fold),
                Some([3].into_iter().collect())
            );
            let folded = parse_expression("ttid = 1 + 2").unwrap();
            assert_eq!(
                partition_keys_of_conjunct(&folded, &s, 0, fold),
                Some([3].into_iter().collect())
            );
            let cast = parse_expression("ttid = CAST('4' AS INTEGER)").unwrap();
            assert_eq!(
                partition_keys_of_conjunct(&cast, &s, 0, fold),
                Some([4].into_iter().collect())
            );
            let inl = parse_expression("ttid IN (1, 2, 5)").unwrap();
            assert_eq!(
                partition_keys_of_conjunct(&inl, &s, 0, fold),
                Some([1, 2, 5].into_iter().collect())
            );
            let other = parse_expression("v = 3").unwrap();
            assert_eq!(partition_keys_of_conjunct(&other, &s, 0, fold), None);
            let column_bound = parse_expression("ttid = v + 1").unwrap();
            assert_eq!(partition_keys_of_conjunct(&column_bound, &s, 0, fold), None);
        });
    }

    #[test]
    fn map_columns_substitutes_everywhere() {
        let e =
            parse_expression("x BETWEEN 1 AND 10 AND SUBSTRING(x FROM 1 FOR 2) = 'ab'").unwrap();
        let replacement = parse_expression("base.col * 2").unwrap();
        let mapped = map_columns(&e, &mut |_| Some(replacement.clone())).unwrap();
        let mut cols = Vec::new();
        collect_columns(&mapped, &mut cols);
        assert!(cols.iter().all(|c| c.name == "col"));
    }

    #[test]
    fn selection_bitmap_counts_retains_and_iterates() {
        // Spanning more than one 64-bit word, with a ragged tail.
        let mut sel = Selection::all(70);
        assert_eq!(sel.len(), 70);
        assert_eq!(sel.count(), 70);
        sel.retain(|i| i % 3 == 0);
        assert_eq!(sel.count(), 24);
        let mut seen = Vec::new();
        sel.for_each(|i| seen.push(i));
        assert_eq!(seen.first(), Some(&0));
        assert_eq!(seen.last(), Some(&69));
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "ascending order");
        // A second retain only ever narrows.
        sel.retain(|i| i >= 30);
        assert_eq!(seen.iter().filter(|i| **i >= 30).count(), sel.count());
        assert!(Selection::all(0).is_empty());
    }

    /// SQL three-valued logic: a NULL operand satisfies neither BETWEEN nor
    /// NOT BETWEEN (the comparison is UNKNOWN and WHERE filters it), and a
    /// NULL *bound* only decides the outcome when the other leg already
    /// fails. Pinned here for the compiled row form; the kernel-equivalence
    /// test below pins the column kernels to this, and the engine-level
    /// `not_between_filters_null_rows_on_every_path` test pins the
    /// interpreter.
    #[test]
    fn null_rows_satisfy_neither_between_nor_not_between() {
        let inside = CompiledPred::Between {
            idx: 0,
            lo: Value::Int(1),
            hi: Value::Int(10),
            negated: false,
        };
        let outside = CompiledPred::Between {
            idx: 0,
            lo: Value::Int(1),
            hi: Value::Int(10),
            negated: true,
        };
        assert!(!fast_pred_value(&inside, &Value::Null));
        assert!(!fast_pred_value(&outside, &Value::Null), "NOT BETWEEN 3VL");
        // Non-null sanity.
        assert!(fast_pred_value(&inside, &Value::Int(5)));
        assert!(!fast_pred_value(&outside, &Value::Int(5)));
        assert!(fast_pred_value(&outside, &Value::Int(11)));
        // NULL bound: `5 NOT BETWEEN NULL AND 10` is UNKNOWN (filtered),
        // but `11 NOT BETWEEN NULL AND 10` is definitely true (false leg).
        let null_lo = CompiledPred::Between {
            idx: 0,
            lo: Value::Null,
            hi: Value::Int(10),
            negated: true,
        };
        assert!(!fast_pred_value(&null_lo, &Value::Int(5)));
        assert!(fast_pred_value(&null_lo, &Value::Int(11)));
    }

    /// Every kernel must agree with the row-path evaluation of the same
    /// predicate over the same values — including NULLs, type promotions
    /// and the Mixed fallback.
    #[test]
    fn vectorized_kernels_match_row_path() {
        use crate::table::ColumnBucket;

        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Float(0.05), Value::str("MAIL")],
            vec![Value::Int(24), Value::Null, Value::str("SHIP")],
            vec![Value::Null, Value::Float(0.07), Value::str("TRUCK")],
            vec![Value::Int(-3), Value::Float(0.061), Value::Null],
            vec![Value::Int(100), Value::Float(-1.0), Value::str("MAILBOX")],
            // NaN is UNKNOWN in every comparison: filtered by BETWEEN and
            // NOT BETWEEN alike, on both layouts.
            vec![Value::Int(7), Value::Float(f64::NAN), Value::str("AIR")],
        ];
        let mut bucket = ColumnBucket::new(3);
        for r in &rows {
            bucket.push_row(r);
        }
        let preds = vec![
            CompiledPred::Compare {
                idx: 0,
                op: BinaryOperator::Lt,
                value: Value::Int(24),
            },
            // Int column vs Float constant promotes, like Value::compare.
            CompiledPred::Compare {
                idx: 0,
                op: BinaryOperator::GtEq,
                value: Value::Float(0.5),
            },
            CompiledPred::Between {
                idx: 1,
                lo: Value::Float(0.05),
                hi: Value::Float(0.07),
                negated: false,
            },
            // Typed negated BETWEEN: NULL rows must survive, like the row
            // path (inside = false, flipped by `negated`).
            CompiledPred::Between {
                idx: 1,
                lo: Value::Float(0.05),
                hi: Value::Float(0.07),
                negated: true,
            },
            // Mixed-type bounds take the generic fallback.
            CompiledPred::Between {
                idx: 1,
                lo: Value::Int(0),
                hi: Value::Float(0.065),
                negated: true,
            },
            // A NaN bound makes the comparison UNKNOWN for every row; the
            // kernel must defer to the generic fallback and agree.
            CompiledPred::Between {
                idx: 1,
                lo: Value::Float(f64::NAN),
                hi: Value::Float(1.0),
                negated: true,
            },
            // Typed negated BETWEEN on the Int column (NULL at row 2).
            CompiledPred::Between {
                idx: 0,
                lo: Value::Int(0),
                hi: Value::Int(50),
                negated: true,
            },
            CompiledPred::InSet {
                idx: 2,
                values: vec![Value::str("MAIL"), Value::str("SHIP")],
                negated: false,
            },
            CompiledPred::Like {
                idx: 2,
                pattern: Arc::new(LikePattern::new("MAIL%")),
                negated: false,
            },
        ];
        for pred in &preds {
            let mut sel = Selection::all(rows.len());
            eval_vectorized(pred, &bucket, &mut sel);
            let mut kernel_hits = Vec::new();
            sel.for_each(|i| kernel_hits.push(i));
            let row_hits: Vec<usize> = (0..rows.len())
                .filter(|&i| fast_pred_matches(pred, &rows[i]))
                .collect();
            assert_eq!(kernel_hits, row_hits, "kernel disagrees for {pred:?}");
        }
    }

    /// `narrow_words` skips chunks earlier predicates already emptied (the
    /// mask closure never sees them) and masks the ragged tail exactly like
    /// `retain`.
    #[test]
    fn narrow_words_skips_dead_words_and_masks_tail() {
        let mut sel = Selection::all(70);
        sel.retain(|i| i < 5); // word 1 (rows 64..70) goes empty
        let mut chunks = Vec::new();
        sel.narrow_words(|start, len| {
            chunks.push((start, len));
            !0
        });
        assert_eq!(chunks, vec![(0, 64)], "empty word skipped, tail not seen");
        assert_eq!(sel.count(), 5);
        // The tail chunk reports its ragged length, and mask bits beyond the
        // current selection can only narrow, never widen.
        let mut sel = Selection::all(70);
        let mut chunks = Vec::new();
        sel.narrow_words(|start, len| {
            chunks.push((start, len));
            0b1010
        });
        assert_eq!(chunks, vec![(0, 64), (64, 6)]);
        let mut seen = Vec::new();
        sel.for_each(|i| seen.push(i));
        assert_eq!(seen, vec![1, 3, 65, 67]);
    }

    /// Evaluating a predicate over a row *range* (what morsel workers do)
    /// must select exactly the rows the whole-bucket kernels select within
    /// that range — across word boundaries, ragged tails, NULLs and every
    /// kernel family (typed chunk kernels, string fallbacks, dictionary
    /// code space).
    #[test]
    fn range_kernels_match_whole_bucket_kernels() {
        use crate::table::ColumnBucket;

        let n = 200;
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    if i % 13 == 0 {
                        Value::Null
                    } else {
                        Value::Int((i % 29) as i64)
                    },
                    Value::Float(i as f64 * 0.01),
                    Value::str(["MAIL", "SHIP", "TRUCK", "AIR"][i % 4]),
                ]
            })
            .collect();
        let mut plain = ColumnBucket::new(3);
        let mut dict = ColumnBucket::with_dictionary(3);
        for r in &rows {
            plain.push_row(r);
            dict.push_row(r);
        }
        assert!(dict.column(2).is_dict());
        let preds = vec![
            CompiledPred::Compare {
                idx: 0,
                op: BinaryOperator::Lt,
                value: Value::Int(14),
            },
            CompiledPred::Between {
                idx: 1,
                lo: Value::Float(0.30),
                hi: Value::Float(1.20),
                negated: false,
            },
            CompiledPred::InSet {
                idx: 2,
                values: vec![Value::str("MAIL"), Value::str("AIR")],
                negated: false,
            },
            CompiledPred::Like {
                idx: 2,
                pattern: Arc::new(LikePattern::new("%AI%")),
                negated: false,
            },
        ];
        // Offsets exercise word-aligned, mid-word and ragged-tail ranges.
        let ranges = [(0, n), (64, 134), (37, 103), (128, 200), (190, 199)];
        for bucket in [&plain, &dict] {
            for pred in &preds {
                let mut whole = Selection::all(n);
                eval_vectorized(pred, bucket, &mut whole);
                let mut whole_hits = Vec::new();
                whole.for_each(|i| whole_hits.push(i));
                for &(start, end) in &ranges {
                    let mut sel = Selection::all(end - start);
                    eval_vectorized_range(pred, bucket, start, &mut sel);
                    let mut range_hits = Vec::new();
                    sel.for_each(|i| range_hits.push(start + i));
                    let expected: Vec<usize> = whole_hits
                        .iter()
                        .copied()
                        .filter(|&i| i >= start && i < end)
                        .collect();
                    assert_eq!(
                        range_hits, expected,
                        "range [{start}, {end}) disagrees for {pred:?}"
                    );
                }
            }
        }
    }

    /// The dictionary code-space kernels must agree with the row path for
    /// every fast predicate form — including NULLs, empty strings, negated
    /// variants and non-string constants (UNKNOWN comparisons).
    #[test]
    fn dict_kernels_match_row_path() {
        use crate::table::ColumnBucket;

        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::str("MAIL")],
            vec![Value::Int(2), Value::Null],
            vec![Value::Int(3), Value::str("")],
            vec![Value::Int(4), Value::str("SHIP")],
            vec![Value::Int(5), Value::str("MAILBOX")],
            vec![Value::Int(6), Value::str("AIR")],
            vec![Value::Int(7), Value::str("MAIL")],
        ];
        let mut bucket = ColumnBucket::with_dictionary(2);
        for r in &rows {
            bucket.push_row(r);
        }
        // The string column must actually be dictionary-encoded, otherwise
        // this test silently degenerates to the plain Str kernels.
        assert!(bucket.column(1).is_dict());
        let preds = vec![
            CompiledPred::Compare {
                idx: 1,
                op: BinaryOperator::Eq,
                value: Value::str("MAIL"),
            },
            CompiledPred::Compare {
                idx: 1,
                op: BinaryOperator::NotEq,
                value: Value::str("MAIL"),
            },
            // String order through the sorted dictionary.
            CompiledPred::Compare {
                idx: 1,
                op: BinaryOperator::Lt,
                value: Value::str("MAILZ"),
            },
            // Incomparable constant: UNKNOWN for every row, like the row path.
            CompiledPred::Compare {
                idx: 1,
                op: BinaryOperator::Eq,
                value: Value::Int(5),
            },
            CompiledPred::InSet {
                idx: 1,
                values: vec![Value::str("MAIL"), Value::str("SHIP")],
                negated: false,
            },
            CompiledPred::InSet {
                idx: 1,
                values: vec![Value::str("MAIL"), Value::str("SHIP")],
                negated: true,
            },
            CompiledPred::Between {
                idx: 1,
                lo: Value::str("AIR"),
                hi: Value::str("MAILZ"),
                negated: false,
            },
            CompiledPred::Between {
                idx: 1,
                lo: Value::str("AIR"),
                hi: Value::str("MAILZ"),
                negated: true,
            },
            CompiledPred::Like {
                idx: 1,
                pattern: Arc::new(LikePattern::new("MAIL%")),
                negated: false,
            },
            CompiledPred::Like {
                idx: 1,
                pattern: Arc::new(LikePattern::new("MAIL%")),
                negated: true,
            },
            // Empty pattern matches only the empty string.
            CompiledPred::Like {
                idx: 1,
                pattern: Arc::new(LikePattern::new("")),
                negated: false,
            },
        ];
        for pred in &preds {
            let mut sel = Selection::all(rows.len());
            let dict_rows = eval_vectorized(pred, &bucket, &mut sel);
            assert_eq!(
                dict_rows,
                rows.len() as u64,
                "dict kernel did not engage for {pred:?}"
            );
            let mut kernel_hits = Vec::new();
            sel.for_each(|i| kernel_hits.push(i));
            let row_hits: Vec<usize> = (0..rows.len())
                .filter(|&i| fast_pred_matches(pred, &rows[i]))
                .collect();
            assert_eq!(kernel_hits, row_hits, "dict kernel disagrees for {pred:?}");
        }
    }

    /// `dict_filter_bitmap` resolves a LIKE against the dictionary once:
    /// entry per distinct value, outcomes identical to per-row matching.
    #[test]
    fn dict_bitmap_resolves_pattern_per_distinct_value() {
        let dict: Vec<Arc<str>> = vec![Arc::from("AIR"), Arc::from("MAIL"), Arc::from("MAILBOX")];
        let pred = CompiledPred::Like {
            idx: 0,
            pattern: Arc::new(LikePattern::new("MAIL%")),
            negated: false,
        };
        assert_eq!(dict_filter_bitmap(&pred, &dict), vec![false, true, true]);
    }
}

//! In-memory storage: tables, views and the database holding them.
//!
//! Tables hand rows out behind [`SharedRow`] (`Arc<[Value]>`) handles so that
//! scans share reference-counted pointers instead of deep copies. A table may
//! additionally declare a *partition column* (the invisible `ttid` of the
//! MTBase shared-table layout): rows are then bucketed by that column's
//! integer value, and the executor can skip entire foreign-tenant buckets
//! when the query carries a `ttid = k` / `ttid IN (...)` scope predicate.
//!
//! # Bucket layouts
//!
//! Each partition bucket stores its rows in one of two physical layouts,
//! chosen per table by [`Table::set_columnar`]:
//!
//! * **Row buckets** (`Bucket::Rows`) — a `Vec<SharedRow>`; every row already
//!   exists as an `Arc<[Value]>` and scans clone pointers. This is the
//!   equivalence baseline (`EngineConfig::columnar_scan = false`).
//! * **Columnar buckets** (`Bucket::Columnar`) — one typed [`ColumnVec`]
//!   array per column (`i64` / `f64` / `Arc<str>` / `bool` / date days) plus
//!   a null bitmap. Scans evaluate compiled predicates column-at-a-time over
//!   a selection bitmap and *late-materialize* a `SharedRow` only for the
//!   qualifying row ids.
//!
//! Both layouts are read through the [`BucketRead`] trait, so operators that
//! do not care about the layout (DML, generic filters) stay layout-agnostic.
//! Loose rows (non-integer partition keys, unpartitioned tables) always use
//! the row layout.
//!
//! # Snapshot watermarks
//!
//! Buckets are append-only between destructive rewrites, so snapshot
//! isolation reduces to *length* visibility: every push records a
//! `(epoch, len)` watermark per bucket (and for the loose rows), where the
//! epoch is the [`Database`]-wide mutation counter stamped via
//! [`Table::begin_write`]. A reader pinned to snapshot `s` sees
//! [`Table::visible_bucket_len`] rows of each bucket — the largest
//! watermark whose epoch is ≤ `s` — and therefore never observes rows a
//! later mutation appended. Destructive rewrites ([`Table::take_rows`]:
//! UPDATE, DELETE, re-partitioning, layout changes) invalidate older
//! snapshots instead: they record the rewriting epoch
//! ([`Table::rewrite_epoch`]), and cursors pinned before it fail with a
//! typed error rather than silently reading rewritten storage.
//!
//! # Rewrite shadows
//!
//! A destructive rewrite issued by a *still-open transaction* must not
//! invalidate the committed floor: every other connection keeps reading at
//! [`Database::committed_epoch`] until the transaction publishes, and a
//! ROLLBACK takes the rewrite back entirely. [`Table::begin_txn_rewrite`]
//! therefore moves the committed storage — buckets, loose rows, watermarks
//! and the previous rewrite epoch — into a [`RewriteShadow`] instead of
//! dropping it. Readers whose [`Snapshot`] does not admit the uncommitted
//! rewrite are served from the shadow through [`Table::read_at`];
//! [`Table::publish_rewrite`] drops the shadow at commit, and
//! [`Table::rollback_rewrite`] restores it wholesale at rollback, leaving
//! snapshot visibility exactly as the transaction found it.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use mtsql::ast::Query;

use crate::error::{err, Result};
use crate::value::Value;

/// A mutable row under construction (DML, projections).
pub type Row = Vec<Value>;

/// An immutable, reference-counted stored row. Cloning is a pointer bump.
pub type SharedRow = Arc<[Value]>;

// ---------------------------------------------------------------------------
// Columnar bucket storage
// ---------------------------------------------------------------------------

/// Maximum number of distinct values a dictionary-encoded string column may
/// hold. The 257th distinct value demotes the column to the plain
/// [`ColumnVec::Str`] layout (see [`DictColumn`]). Low enough that resolving
/// a predicate against the whole dictionary is trivially cheap, high enough
/// to cover every low-cardinality MT-H column (`l_returnflag`,
/// `l_linestatus`, `l_shipmode`, `p_type`, nation/region names).
pub const DICT_MAX_DISTINCT: usize = 256;

/// A dictionary-encoded string column: one `u32` code per row into a shared
/// *sorted* dictionary of distinct values. Because the dictionary is kept
/// sorted, code order equals string order; inserting a new distinct value
/// remaps the existing codes at or above its insertion point (cheap — the
/// dictionary is bounded by [`DICT_MAX_DISTINCT`] entries, so at most that
/// many remap passes ever happen per bucket).
///
/// NULL rows store an arbitrary placeholder code that remap passes may push
/// past the dictionary length; the owning [`Column`]'s null bitmap is checked
/// before any code is interpreted, so placeholder codes are never read as
/// dictionary indices on the query paths.
#[derive(Debug, Clone, Default)]
pub struct DictColumn {
    /// Per-row codes into `dict` (placeholder for NULL rows).
    codes: Vec<u32>,
    /// Sorted distinct values; `Arc`-shared with every reader.
    dict: Vec<Arc<str>>,
}

impl DictColumn {
    /// A dictionary column with `len` placeholder slots (NULL backfill).
    fn with_len(len: usize) -> Self {
        DictColumn {
            codes: vec![0; len],
            dict: Vec::new(),
        }
    }

    /// The per-row code array.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The code of row `row`. Only meaningful for non-NULL rows (NULL slots
    /// hold placeholders) — callers check the null bitmap first.
    #[inline]
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// The sorted dictionary of distinct values.
    pub fn dict(&self) -> &[Arc<str>] {
        &self.dict
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// `true` when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code of `value` in the dictionary, when present.
    pub fn lookup(&self, value: &str) -> Option<u32> {
        self.dict
            .binary_search_by(|d| d.as_ref().cmp(value))
            .ok()
            .map(|i| i as u32)
    }

    /// The decoded value of a non-NULL row.
    #[inline]
    pub fn value(&self, row: usize) -> Arc<str> {
        Arc::clone(&self.dict[self.codes[row] as usize])
    }

    /// Append one value, growing the dictionary if needed. Returns `false`
    /// (without appending) when the value would push the dictionary past
    /// [`DICT_MAX_DISTINCT`] — the caller demotes the column to plain layout.
    fn push(&mut self, value: &Arc<str>) -> bool {
        match self
            .dict
            .binary_search_by(|d| d.as_ref().cmp(value.as_ref()))
        {
            Ok(code) => {
                self.codes.push(code as u32);
                true
            }
            Err(at) => {
                if self.dict.len() >= DICT_MAX_DISTINCT {
                    return false;
                }
                // Keep the dictionary sorted: codes at or above the insertion
                // point shift up by one (placeholder codes of NULL rows shift
                // too — harmless, they are never read).
                for code in &mut self.codes {
                    if *code >= at as u32 {
                        *code += 1;
                    }
                }
                self.dict.insert(at, Arc::clone(value));
                self.codes.push(at as u32);
                true
            }
        }
    }

    /// Append a placeholder slot for a NULL row.
    fn push_null(&mut self) {
        self.codes.push(0);
    }

    /// Drop every row past `len` (rollback of appended rows). The dictionary
    /// keeps entries the surviving rows may no longer reference — harmless:
    /// code order still equals string order, and an unreferenced entry just
    /// matches no row.
    fn truncate(&mut self, len: usize) {
        self.codes.truncate(len);
    }

    /// Decode every slot into a plain string array (demotion). Placeholder
    /// codes of NULL rows may be out of range; they decode to an arbitrary
    /// value, masked by the null bitmap exactly like other placeholders.
    fn decode_all(&self) -> Vec<Arc<str>> {
        let fallback: Arc<str> = self.dict.first().cloned().unwrap_or_else(|| Arc::from(""));
        self.codes
            .iter()
            .map(|&c| {
                self.dict
                    .get(c as usize)
                    .cloned()
                    .unwrap_or_else(|| Arc::clone(&fallback))
            })
            .collect()
    }
}

/// One typed column array of a [`ColumnBucket`].
///
/// The variant is decided by the first non-null value stored; a later value
/// of a different runtime type demotes the column to [`ColumnVec::Mixed`]
/// (never produced by the MT-H workloads, but kept correct regardless).
/// NULL slots hold a type-default placeholder; the authoritative null
/// information lives in the owning [`Column`]'s bitmap.
#[derive(Debug, Clone)]
pub enum ColumnVec {
    /// No non-null value seen yet; the column length is tracked by the null
    /// bitmap alone.
    Untyped,
    /// `Value::Int` payloads.
    Int(Vec<i64>),
    /// `Value::Float` payloads.
    Float(Vec<f64>),
    /// `Value::Bool` payloads.
    Bool(Vec<bool>),
    /// `Value::Date` payloads (days since the epoch).
    Date(Vec<i32>),
    /// `Value::Str` payloads (interned, cloning is a pointer bump).
    Str(Vec<Arc<str>>),
    /// Low-cardinality `Value::Str` payloads, dictionary-encoded: `u32`
    /// codes into a shared sorted dictionary. Demotes to [`ColumnVec::Str`]
    /// when the distinct-value count passes [`DICT_MAX_DISTINCT`].
    Dict(DictColumn),
    /// Mixed-type fallback storing the values directly.
    Mixed(Vec<Value>),
}

/// One column of a [`ColumnBucket`]: the typed array plus a null bitmap
/// (bit set ⇒ the slot is SQL NULL).
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnVec,
    nulls: Vec<u64>,
    /// Dictionary-encode low-cardinality string payloads?
    dict: bool,
}

impl Column {
    fn new(dict: bool) -> Self {
        Column {
            data: ColumnVec::Untyped,
            nulls: Vec::new(),
            dict,
        }
    }

    /// Append `value` as row `row` (callers push rows in order, so `row` is
    /// also the column length before the push). Returns the column's
    /// dictionary transition: `+1` when it adopted the dictionary layout,
    /// `-1` when it left it (cardinality or type demotion), `0` otherwise —
    /// the owning [`Table`] keeps its `dict_columns` gauge current from
    /// these deltas instead of re-walking buckets per stats snapshot.
    fn push(&mut self, value: &Value, row: usize) -> i8 {
        if row.is_multiple_of(64) {
            self.nulls.push(0);
        }
        if value.is_null() {
            self.nulls[row / 64] |= 1 << (row % 64);
            match &mut self.data {
                ColumnVec::Untyped => {}
                ColumnVec::Int(xs) => xs.push(0),
                ColumnVec::Float(xs) => xs.push(0.0),
                ColumnVec::Bool(xs) => xs.push(false),
                ColumnVec::Date(xs) => xs.push(0),
                // Any placeholder works (the null bit masks it); reuse an
                // existing Arc so a NULL costs a pointer bump, not an alloc.
                ColumnVec::Str(xs) => {
                    let placeholder = xs.first().cloned().unwrap_or_else(|| Arc::from(""));
                    xs.push(placeholder);
                }
                ColumnVec::Dict(d) => d.push_null(),
                ColumnVec::Mixed(xs) => xs.push(Value::Null),
            }
            return 0;
        }
        let mut delta: i8 = 0;
        if matches!(self.data, ColumnVec::Untyped) {
            // First non-null value: adopt its type, backfilling placeholders
            // for the `row` null slots that preceded it.
            self.data = match value {
                Value::Int(_) => ColumnVec::Int(vec![0; row]),
                Value::Float(_) => ColumnVec::Float(vec![0.0; row]),
                Value::Bool(_) => ColumnVec::Bool(vec![false; row]),
                Value::Date(_) => ColumnVec::Date(vec![0; row]),
                Value::Str(_) if self.dict => {
                    delta = 1;
                    ColumnVec::Dict(DictColumn::with_len(row))
                }
                Value::Str(_) => ColumnVec::Str(vec![Arc::from(""); row]),
                Value::Null => unreachable!("null handled above"),
            };
        }
        match (&mut self.data, value) {
            (ColumnVec::Int(xs), Value::Int(x)) => xs.push(*x),
            (ColumnVec::Float(xs), Value::Float(x)) => xs.push(*x),
            (ColumnVec::Bool(xs), Value::Bool(x)) => xs.push(*x),
            (ColumnVec::Date(xs), Value::Date(x)) => xs.push(*x),
            (ColumnVec::Str(xs), Value::Str(x)) => xs.push(Arc::clone(x)),
            (ColumnVec::Dict(d), Value::Str(x)) => {
                if !d.push(x) {
                    // Cardinality passed the dictionary threshold: demote to
                    // the plain string layout and append there.
                    let mut values = d.decode_all();
                    values.push(Arc::clone(x));
                    self.data = ColumnVec::Str(values);
                    delta -= 1;
                }
            }
            (ColumnVec::Mixed(xs), v) => xs.push(v.clone()),
            // Type mismatch: demote to the mixed layout and retry.
            (_, v) => {
                if matches!(self.data, ColumnVec::Dict(_)) {
                    delta -= 1;
                }
                self.demote_to_mixed(row);
                let ColumnVec::Mixed(xs) = &mut self.data else {
                    unreachable!("demote_to_mixed installs Mixed");
                };
                xs.push(v.clone());
            }
        }
        delta
    }

    /// Rebuild the first `len` slots as a [`ColumnVec::Mixed`] array.
    fn demote_to_mixed(&mut self, len: usize) {
        let values: Vec<Value> = (0..len).map(|i| self.value(i)).collect();
        self.data = ColumnVec::Mixed(values);
    }

    /// Is row `row` NULL in this column?
    #[inline]
    pub fn is_null(&self, row: usize) -> bool {
        (self.nulls[row / 64] >> (row % 64)) & 1 == 1
    }

    /// The value at `row` (owned; cheap — strings are `Arc`-interned).
    pub fn value(&self, row: usize) -> Value {
        if self.is_null(row) {
            return Value::Null;
        }
        match &self.data {
            ColumnVec::Untyped => Value::Null,
            ColumnVec::Int(xs) => Value::Int(xs[row]),
            ColumnVec::Float(xs) => Value::Float(xs[row]),
            ColumnVec::Bool(xs) => Value::Bool(xs[row]),
            ColumnVec::Date(xs) => Value::Date(xs[row]),
            ColumnVec::Str(xs) => Value::Str(Arc::clone(&xs[row])),
            ColumnVec::Dict(d) => Value::Str(d.value(row)),
            ColumnVec::Mixed(xs) => xs[row].clone(),
        }
    }

    /// Drop every row past `len` (rollback of appended rows). The layout is
    /// kept as-is: a dictionary demotion that happened while the dropped rows
    /// were pushed is not re-promoted, matching the recovery convention that
    /// physical layout is never part of the durable state.
    fn truncate(&mut self, len: usize) {
        match &mut self.data {
            ColumnVec::Untyped => {}
            ColumnVec::Int(xs) => xs.truncate(len),
            ColumnVec::Float(xs) => xs.truncate(len),
            ColumnVec::Bool(xs) => xs.truncate(len),
            ColumnVec::Date(xs) => xs.truncate(len),
            ColumnVec::Str(xs) => xs.truncate(len),
            ColumnVec::Dict(d) => d.truncate(len),
            ColumnVec::Mixed(xs) => xs.truncate(len),
        }
        self.nulls.truncate(len.div_ceil(64));
        // Pushes only ever *set* null bits (a fresh word is appended per 64
        // rows), so the dropped rows' bits in the now-partial last word must
        // be cleared here — otherwise rows pushed after the rollback would
        // inherit the dropped rows' null flags.
        if !len.is_multiple_of(64) {
            if let Some(last) = self.nulls.last_mut() {
                *last &= (1u64 << (len % 64)) - 1;
            }
        }
    }

    /// The typed array behind this column (kernel input).
    pub fn data(&self) -> &ColumnVec {
        &self.data
    }

    /// Is this column currently dictionary-encoded?
    pub fn is_dict(&self) -> bool {
        matches!(self.data, ColumnVec::Dict(_))
    }
}

/// A partition bucket in the columnar layout: one [`Column`] per table
/// column, all of the same length.
#[derive(Debug, Clone)]
pub struct ColumnBucket {
    len: usize,
    columns: Vec<Column>,
}

impl ColumnBucket {
    /// An empty bucket with `width` columns (no dictionary encoding).
    pub fn new(width: usize) -> Self {
        ColumnBucket {
            len: 0,
            columns: (0..width).map(|_| Column::new(false)).collect(),
        }
    }

    /// An empty bucket whose string columns dictionary-encode while their
    /// distinct-value count stays under [`DICT_MAX_DISTINCT`].
    pub fn with_dictionary(width: usize) -> Self {
        ColumnBucket {
            len: 0,
            columns: (0..width).map(|_| Column::new(true)).collect(),
        }
    }

    /// Number of columns currently dictionary-encoded in this bucket.
    pub fn dict_column_count(&self) -> usize {
        self.columns.iter().filter(|c| c.is_dict()).count()
    }

    /// Append one row (arity is the caller's responsibility).
    pub fn push_row(&mut self, row: &[Value]) {
        for (column, value) in self.columns.iter_mut().zip(row) {
            column.push(value, self.len);
        }
        self.len += 1;
    }

    /// Append one row, applying each column's dictionary transition to
    /// `dict_buckets` (per table column: how many of the table's buckets
    /// currently dictionary-encode it). Used by [`Table::push_shared`] to
    /// keep the `dict_columns` gauge current without walking buckets.
    fn push_row_tracked(&mut self, row: &[Value], dict_buckets: &mut [u32]) {
        for (col, (column, value)) in self.columns.iter_mut().zip(row).enumerate() {
            match column.push(value, self.len) {
                1 => dict_buckets[col] += 1,
                -1 => dict_buckets[col] = dict_buckets[col].saturating_sub(1),
                _ => {}
            }
        }
        self.len += 1;
    }

    /// Drop every row past `len` (rollback of appended rows). Layout
    /// transitions are not reverted (see [`Column::truncate`]).
    fn truncate(&mut self, len: usize) {
        for column in &mut self.columns {
            column.truncate(len);
        }
        self.len = len;
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bucket holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One column by index.
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }
}

/// Read access to one bucket's rows, independent of the physical layout.
/// Implemented by row slices and by [`ColumnBucket`], so scan fallbacks and
/// DML stay layout-agnostic. All implementations are pure reads
/// (`Send + Sync` data), which is what lets parallel scan workers share them.
pub trait BucketRead: Sync {
    /// Number of rows in the bucket.
    fn row_count(&self) -> usize;

    /// The value at (`row`, `col`), owned (cheap: `Arc` bump for strings).
    fn value(&self, row: usize, col: usize) -> Value;

    /// The full row as a [`SharedRow`]. Row buckets clone the existing
    /// pointer; columnar buckets build the row (*late materialization*).
    fn materialize(&self, row: usize) -> SharedRow;
}

impl BucketRead for Vec<SharedRow> {
    fn row_count(&self) -> usize {
        self.len()
    }

    fn value(&self, row: usize, col: usize) -> Value {
        self[row][col].clone()
    }

    fn materialize(&self, row: usize) -> SharedRow {
        SharedRow::clone(&self[row])
    }
}

impl BucketRead for ColumnBucket {
    fn row_count(&self) -> usize {
        self.len
    }

    fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    fn materialize(&self, row: usize) -> SharedRow {
        self.columns
            .iter()
            .map(|c| c.value(row))
            .collect::<Vec<_>>()
            .into()
    }
}

/// One partition bucket, in either physical layout.
#[derive(Debug, Clone)]
pub enum Bucket {
    /// Row layout: every row pre-materialized as a [`SharedRow`].
    Rows(Vec<SharedRow>),
    /// Columnar layout: typed per-column arrays, rows materialized on demand.
    Columnar(ColumnBucket),
}

impl Bucket {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Bucket::Rows(rows) => rows.len(),
            Bucket::Columnar(cols) => cols.len(),
        }
    }

    /// `true` when the bucket holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Layout-agnostic read access.
    pub fn reader(&self) -> &dyn BucketRead {
        match self {
            Bucket::Rows(rows) => rows,
            Bucket::Columnar(cols) => cols,
        }
    }

    /// The columnar form, when this bucket uses it.
    pub fn as_columns(&self) -> Option<&ColumnBucket> {
        match self {
            Bucket::Columnar(cols) => Some(cols),
            Bucket::Rows(_) => None,
        }
    }

    /// The row form, when this bucket uses it.
    pub fn as_rows(&self) -> Option<&[SharedRow]> {
        match self {
            Bucket::Rows(rows) => Some(rows),
            Bucket::Columnar(_) => None,
        }
    }

    /// Append one row, applying dictionary transitions of columnar buckets
    /// to `dict_buckets` (see [`ColumnBucket::push_row_tracked`]).
    fn push(&mut self, row: SharedRow, dict_buckets: &mut [u32]) {
        match self {
            Bucket::Rows(rows) => rows.push(row),
            Bucket::Columnar(cols) => cols.push_row_tracked(&row, dict_buckets),
        }
    }

    /// Drop every row past `len` (rollback of appended rows).
    fn truncate(&mut self, len: usize) {
        match self {
            Bucket::Rows(rows) => rows.truncate(len),
            Bucket::Columnar(cols) => cols.truncate(len),
        }
    }

    /// Iterate over the bucket's rows as [`SharedRow`]s (materializing for
    /// columnar buckets).
    pub fn iter_rows(&self) -> BucketRows<'_> {
        BucketRows {
            bucket: self.reader(),
            next: 0,
        }
    }
}

/// Iterator over a bucket's rows as [`SharedRow`]s (see [`Bucket::iter_rows`]).
pub struct BucketRows<'a> {
    bucket: &'a dyn BucketRead,
    next: usize,
}

impl Iterator for BucketRows<'_> {
    type Item = SharedRow;

    fn next(&mut self) -> Option<SharedRow> {
        if self.next >= self.bucket.row_count() {
            return None;
        }
        let row = self.bucket.materialize(self.next);
        self.next += 1;
        Some(row)
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// What a reader is allowed to observe, expressed over mutation epochs.
#[derive(Debug, Clone)]
pub enum Snapshot {
    /// A plain epoch pin: every row stamped at an epoch ≤ the pin is
    /// visible. Used by cursors and by the per-statement committed floor.
    At(u64),
    /// A transaction-scoped pin: the committed floor plus the owning
    /// transaction's *own* uncommitted statement epochs (read-your-writes
    /// without observing other open transactions' staged rows).
    Txn {
        /// The committed floor at read time.
        floor: u64,
        /// The owning transaction's uncommitted epochs.
        own: Arc<BTreeSet<u64>>,
    },
}

impl Snapshot {
    /// Is a row stamped at `epoch` visible to this snapshot?
    pub fn admits(&self, epoch: u64) -> bool {
        match self {
            Snapshot::At(s) => epoch <= *s,
            Snapshot::Txn { floor, own } => epoch <= *floor || own.contains(&epoch),
        }
    }

    /// The plain epoch bound: the pin itself, or the committed floor of a
    /// transaction-scoped snapshot.
    pub fn floor(&self) -> u64 {
        match self {
            Snapshot::At(s) => *s,
            Snapshot::Txn { floor, .. } => *floor,
        }
    }

    /// The visible prefix length of storage carrying `marks` watermarks and
    /// `full` rows: the whole prefix when the last watermark is admitted,
    /// otherwise clipped at the floor. Sound for transaction-scoped
    /// snapshots because the writer locks grant at most one open
    /// transaction per bucket, so every non-admitted mark above the floor
    /// belongs to a single *other* transaction — there is no interleaving
    /// in which an admitted mark sits above a non-admitted one.
    pub fn visible_len(&self, marks: &[(u64, u32)], full: usize) -> usize {
        if marks.last().is_none_or(|&(e, _)| self.admits(e)) {
            return full;
        }
        let floor = self.floor();
        let idx = marks.partition_point(|&(e, _)| e <= floor);
        if idx == 0 {
            0
        } else {
            (marks[idx - 1].1 as usize).min(full)
        }
    }
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// Committed pre-rewrite storage, retained while the transaction that
/// issued a destructive rewrite (UPDATE / DELETE) is still open so the
/// committed floor stays servable (see the module docs on rewrite shadows).
#[derive(Debug, Clone, Default)]
pub struct RewriteShadow {
    buckets: BTreeMap<i64, Bucket>,
    loose: Vec<SharedRow>,
    bucket_marks: BTreeMap<i64, Vec<(u64, u32)>>,
    loose_marks: Vec<(u64, u32)>,
    /// The table's rewrite epoch *before* the shadowed rewrite — restored
    /// on rollback, and the bound under which the shadow itself can serve
    /// older pins.
    rewrite_epoch: u64,
    dict_bucket_cols: Vec<u32>,
}

/// An in-memory table: named columns plus rows, optionally bucketed by a
/// partition column, with per-bucket storage in either the row or the
/// columnar layout (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table name as registered.
    pub name: String,
    /// Column names, in storage order.
    pub columns: Vec<String>,
    /// Index of the partition column, when declared.
    partition_col: Option<usize>,
    /// Store partition buckets in the columnar layout?
    columnar: bool,
    /// Dictionary-encode low-cardinality string columns of columnar buckets?
    dict: bool,
    /// Per table column: number of partition buckets currently
    /// dictionary-encoding it. Maintained incrementally from the column
    /// transitions reported by pushes (lazily sized on first bucketed push,
    /// cleared with the buckets), so the `dict_columns` stats gauge costs
    /// O(width) instead of a walk over every bucket.
    dict_bucket_cols: Vec<u32>,
    /// Rows bucketed by partition-key value (partitioned tables only).
    buckets: BTreeMap<i64, Bucket>,
    /// Rows of unpartitioned tables, plus rows of partitioned tables whose
    /// partition key is not an integer (never produced by the MT layout, but
    /// kept correct regardless). Always row layout.
    loose: Vec<SharedRow>,
    /// Per bucket: `(epoch, len)` watermarks in epoch order — the bucket
    /// length after the last push of each writing epoch (see the module
    /// docs on snapshot watermarks).
    bucket_marks: BTreeMap<i64, Vec<(u64, u32)>>,
    /// Watermarks for the loose rows, mirroring `bucket_marks`.
    loose_marks: Vec<(u64, u32)>,
    /// The epoch stamped on subsequent pushes (set by [`Table::begin_write`]).
    write_epoch: u64,
    /// The epoch of the last destructive rewrite ([`Table::take_rows`]);
    /// snapshots pinned before it cannot be served from the live storage.
    rewrite_epoch: u64,
    /// Committed pre-rewrite storage while an open transaction's rewrite is
    /// unpublished (see the module docs on rewrite shadows). Boxed — the
    /// overwhelmingly common state is `None`.
    shadow: Option<Box<RewriteShadow>>,
}

impl Table {
    /// Create an empty table (row layout).
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            name: name.into(),
            columns,
            partition_col: None,
            columnar: false,
            dict: false,
            dict_bucket_cols: Vec::new(),
            buckets: BTreeMap::new(),
            loose: Vec::new(),
            bucket_marks: BTreeMap::new(),
            loose_marks: Vec::new(),
            write_epoch: 0,
            rewrite_epoch: 0,
            shadow: None,
        }
    }

    /// Stamp subsequent pushes with `epoch` (the database mutation counter).
    /// Watermarks written at epoch 0 — pushes that never went through a
    /// mutation entry point, e.g. pre-built tables — are visible to every
    /// snapshot.
    pub fn begin_write(&mut self, epoch: u64) {
        self.write_epoch = epoch;
    }

    /// The epoch of the last destructive rewrite. Readers pinned to an
    /// older snapshot must not serve rows from this table.
    pub fn rewrite_epoch(&self) -> u64 {
        self.rewrite_epoch
    }

    /// Force the rewrite epoch (used when a whole pre-built table replaces
    /// this name, which invalidates older snapshots exactly like a rewrite).
    pub fn force_rewrite_epoch(&mut self, epoch: u64) {
        self.rewrite_epoch = self.rewrite_epoch.max(epoch);
    }

    /// Begin a *transactional* destructive rewrite at `epoch`, leaving the
    /// table empty for the re-push. The first rewrite of a transaction
    /// moves the committed storage into the rewrite shadow (so
    /// committed-floor readers stay servable — see the module docs) and
    /// returns `true`; the caller's undo record must restore the shadow via
    /// [`Table::rollback_rewrite`]. A later rewrite of the *same*
    /// transaction (the live storage is already uncommitted) discards the
    /// live storage like [`Table::take_rows`] and returns `false` — the
    /// existing shadow already restores the committed state.
    pub fn begin_txn_rewrite(&mut self, epoch: u64) -> bool {
        self.begin_write(epoch);
        if self.shadow.is_some() {
            self.take_rows();
            return false;
        }
        self.shadow = Some(Box::new(RewriteShadow {
            buckets: std::mem::take(&mut self.buckets),
            loose: std::mem::take(&mut self.loose),
            bucket_marks: std::mem::take(&mut self.bucket_marks),
            loose_marks: std::mem::take(&mut self.loose_marks),
            rewrite_epoch: self.rewrite_epoch,
            dict_bucket_cols: std::mem::take(&mut self.dict_bucket_cols),
        }));
        self.rewrite_epoch = self.rewrite_epoch.max(epoch);
        true
    }

    /// Publish a transactional rewrite: the pre-rewrite shadow is dropped
    /// and the (now committed) rewritten storage is the only copy. Snapshots
    /// pinned before the rewrite become unservable, exactly like a
    /// non-transactional [`Table::take_rows`].
    pub fn publish_rewrite(&mut self) {
        self.shadow = None;
    }

    /// Roll a transactional rewrite back: discard the uncommitted live
    /// storage and restore the committed pre-rewrite storage — including
    /// its watermarks and rewrite epoch, so snapshot cursors pinned before
    /// the aborted transaction keep working as if it never ran.
    pub fn rollback_rewrite(&mut self) {
        if let Some(shadow) = self.shadow.take() {
            let s = *shadow;
            self.buckets = s.buckets;
            self.loose = s.loose;
            self.bucket_marks = s.bucket_marks;
            self.loose_marks = s.loose_marks;
            self.rewrite_epoch = s.rewrite_epoch;
            self.dict_bucket_cols = s.dict_bucket_cols;
        }
    }

    /// Is a pre-rewrite shadow currently retained?
    pub fn has_rewrite_shadow(&self) -> bool {
        self.shadow.is_some()
    }

    /// Can a reader pinned at `snapshot` be served — from the live storage
    /// when the last rewrite is at or below the pin, else from the retained
    /// pre-rewrite shadow of a still-open transaction?
    pub fn snapshot_servable(&self, snapshot: u64) -> bool {
        self.rewrite_epoch <= snapshot
            || self
                .shadow
                .as_ref()
                .is_some_and(|s| s.rewrite_epoch <= snapshot)
    }

    /// Resolve the storage a reader with `snapshot` scans: the live buckets
    /// normally, or the retained pre-rewrite shadow when the snapshot does
    /// not admit an open transaction's rewrite. An unservable pin (no
    /// shadow, or the shadow itself rewritten past the pin) falls back to
    /// the live storage — cursors and the plan verifier reject that case
    /// via [`Table::snapshot_servable`] before scanning, and statement-level
    /// floor pins never reach it (a *committed* rewrite is ≤ the floor by
    /// construction).
    pub fn read_at(&self, snapshot: Option<&Snapshot>) -> TableRead<'_> {
        let shadow = match snapshot {
            Some(s) if !s.admits(self.rewrite_epoch) => self
                .shadow
                .as_deref()
                .filter(|sh| sh.rewrite_epoch <= s.floor()),
            _ => None,
        };
        TableRead {
            table: self,
            shadow,
            snapshot: snapshot.cloned(),
        }
    }

    fn mark(marks: &mut Vec<(u64, u32)>, epoch: u64, len: u32) {
        match marks.last_mut() {
            Some((e, l)) if *e == epoch => *l = len,
            _ => marks.push((epoch, len)),
        }
    }

    /// Rows of bucket `key` visible to `snapshot`: the largest watermark
    /// length recorded at an epoch ≤ `snapshot`. `u64::MAX` (or any epoch
    /// at/after the last write) sees the full bucket.
    pub fn visible_bucket_len(&self, key: i64, snapshot: u64) -> usize {
        let full = self.partition_len(key);
        if snapshot == u64::MAX {
            return full;
        }
        match self.bucket_marks.get(&key).map(Vec::as_slice) {
            None | Some([]) => full,
            Some(marks) => {
                if marks.last().is_some_and(|&(e, _)| e <= snapshot) {
                    return full;
                }
                let idx = marks.partition_point(|&(e, _)| e <= snapshot);
                if idx == 0 {
                    0
                } else {
                    marks[idx - 1].1 as usize
                }
            }
        }
    }

    /// Loose rows visible to `snapshot` (see [`Table::visible_bucket_len`]).
    pub fn visible_loose_len(&self, snapshot: u64) -> usize {
        let full = self.loose.len();
        if snapshot == u64::MAX || self.loose_marks.last().is_none_or(|&(e, _)| e <= snapshot) {
            return full;
        }
        let idx = self.loose_marks.partition_point(|&(e, _)| e <= snapshot);
        if idx == 0 {
            0
        } else {
            self.loose_marks[idx - 1].1 as usize
        }
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Declare (or clear) the partition column by name, re-bucketing any
    /// existing rows. Returns `false` when the column does not exist.
    pub fn set_partition_column(&mut self, column: Option<&str>) -> bool {
        let idx = match column {
            None => None,
            Some(name) => match self.column_index(name) {
                Some(i) => Some(i),
                None => return false,
            },
        };
        if idx == self.partition_col {
            return true;
        }
        let rows = self.take_rows();
        self.partition_col = idx;
        for row in rows {
            self.push_shared(row);
        }
        true
    }

    /// Switch the partition buckets between the row and the columnar layout,
    /// re-encoding any existing rows. Loose rows always stay in row form.
    pub fn set_columnar(&mut self, columnar: bool) {
        if columnar == self.columnar {
            return;
        }
        let rows = self.take_rows();
        self.columnar = columnar;
        for row in rows {
            self.push_shared(row);
        }
    }

    /// Do the partition buckets use the columnar layout?
    pub fn is_columnar(&self) -> bool {
        self.columnar
    }

    /// Enable or disable dictionary encoding for the string columns of
    /// columnar buckets, re-encoding any existing rows. A no-op on the row
    /// layout (the flag still sticks and applies if the table later switches
    /// to columnar buckets).
    pub fn set_dictionary(&mut self, dict: bool) {
        if dict == self.dict {
            return;
        }
        self.dict = dict;
        if self.columnar {
            let rows = self.take_rows();
            for row in rows {
                self.push_shared(row);
            }
        }
    }

    /// Is dictionary encoding enabled for this table's columnar buckets?
    pub fn is_dictionary(&self) -> bool {
        self.dict
    }

    /// Number of columns currently dictionary-encoded in at least one
    /// partition bucket. O(width) — read from the incrementally maintained
    /// per-column bucket counts, not by walking buckets (the stats gauge
    /// reads this on every snapshot, twice per middleware statement).
    pub fn dict_column_count(&self) -> usize {
        self.dict_bucket_cols.iter().filter(|&&c| c > 0).count()
    }

    /// The declared partition column index, if any.
    pub fn partition_column(&self) -> Option<usize> {
        self.partition_col
    }

    /// Number of partition buckets currently holding rows.
    pub fn partition_count(&self) -> usize {
        self.buckets.len()
    }

    /// One partition bucket by key.
    pub fn partition(&self, key: i64) -> Option<&Bucket> {
        self.buckets.get(&key)
    }

    /// Number of rows in one partition bucket (0 for absent keys).
    pub fn partition_len(&self, key: i64) -> usize {
        self.buckets.get(&key).map_or(0, Bucket::len)
    }

    /// Iterate over `(key, bucket)` of every partition bucket, in key order.
    pub fn partitions(&self) -> impl Iterator<Item = (i64, &Bucket)> {
        self.buckets.iter().map(|(k, v)| (*k, v))
    }

    /// Rows that are not held in any partition bucket.
    pub fn loose_rows(&self) -> &[SharedRow] {
        &self.loose
    }

    /// Append a row after checking its arity.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return err(format!(
                "row arity {} does not match table `{}` with {} columns",
                row.len(),
                self.name,
                self.columns.len()
            ));
        }
        self.push_shared(row.into());
        Ok(())
    }

    /// Append an already-shared row, routing it into its partition bucket.
    /// The arity must have been checked by the caller.
    pub fn push_shared(&mut self, row: SharedRow) {
        let epoch = self.write_epoch;
        match self.partition_col {
            Some(idx) => match row.get(idx) {
                Some(Value::Int(key)) => {
                    let key = *key;
                    let width = self.columns.len();
                    let columnar = self.columnar;
                    let dict = self.dict;
                    if self.dict_bucket_cols.len() != width {
                        self.dict_bucket_cols = vec![0; width];
                    }
                    let bucket = self.buckets.entry(key).or_insert_with(|| {
                        if columnar && dict {
                            Bucket::Columnar(ColumnBucket::with_dictionary(width))
                        } else if columnar {
                            Bucket::Columnar(ColumnBucket::new(width))
                        } else {
                            Bucket::Rows(Vec::new())
                        }
                    });
                    bucket.push(row, &mut self.dict_bucket_cols);
                    let len = bucket.len() as u32;
                    Self::mark(self.bucket_marks.entry(key).or_default(), epoch, len);
                }
                _ => {
                    self.loose.push(row);
                    let len = self.loose.len() as u32;
                    Self::mark(&mut self.loose_marks, epoch, len);
                }
            },
            None => {
                self.loose.push(row);
                let len = self.loose.len() as u32;
                Self::mark(&mut self.loose_marks, epoch, len);
            }
        }
    }

    /// Length and watermark count of bucket `key` (`None` when the bucket
    /// does not exist) — captured *before* a transactional statement appends,
    /// so its undo record can truncate back on rollback.
    pub fn bucket_state(&self, key: i64) -> Option<(u32, u32)> {
        self.buckets.get(&key).map(|b| {
            let marks = self.bucket_marks.get(&key).map_or(0, |m| m.len() as u32);
            (b.len() as u32, marks)
        })
    }

    /// Length and watermark count of the loose rows (see
    /// [`Table::bucket_state`]).
    pub fn loose_state(&self) -> (u32, u32) {
        (self.loose.len() as u32, self.loose_marks.len() as u32)
    }

    /// Undo appends into bucket `key`: drop rows past `len` and watermarks
    /// past `marks`, clamping surviving watermark lengths to the new bucket
    /// length (a later undo step may have rebuilt the bucket with a single
    /// full-length watermark). `existed == false` removes the bucket
    /// entirely — it was created by the statement being undone.
    pub fn truncate_bucket(&mut self, key: i64, existed: bool, len: u32, marks: u32) {
        if !existed {
            if let Some(Bucket::Columnar(cols)) = self.buckets.remove(&key).as_ref() {
                for col in 0..self.columns.len() {
                    if cols.column(col).is_dict() {
                        if let Some(c) = self.dict_bucket_cols.get_mut(col) {
                            *c = c.saturating_sub(1);
                        }
                    }
                }
            }
            self.bucket_marks.remove(&key);
            return;
        }
        if let Some(bucket) = self.buckets.get_mut(&key) {
            bucket.truncate(len as usize);
        }
        if let Some(m) = self.bucket_marks.get_mut(&key) {
            m.truncate(marks as usize);
            for (_, l) in m.iter_mut() {
                *l = (*l).min(len);
            }
        }
    }

    /// Undo appends to the loose rows (see [`Table::truncate_bucket`]).
    pub fn truncate_loose(&mut self, len: u32, marks: u32) {
        self.loose.truncate(len as usize);
        self.loose_marks.truncate(marks as usize);
        for (_, l) in self.loose_marks.iter_mut() {
            *l = (*l).min(len);
        }
    }

    /// Iterate over all rows: partition buckets in key order, then loose
    /// rows. Rows from columnar buckets are materialized on the fly.
    pub fn rows(&self) -> impl Iterator<Item = SharedRow> + '_ {
        self.buckets
            .values()
            .flat_map(Bucket::iter_rows)
            .chain(self.loose.iter().cloned())
    }

    /// Remove and return every row, leaving the table empty (used by DML that
    /// rewrites the row set; re-inserting re-buckets and re-encodes).
    pub fn take_rows(&mut self) -> Vec<SharedRow> {
        let mut out: Vec<SharedRow> = Vec::with_capacity(self.len());
        for bucket in std::mem::take(&mut self.buckets).into_values() {
            match bucket {
                Bucket::Rows(rows) => out.extend(rows),
                Bucket::Columnar(cols) => out.extend((0..cols.len()).map(|i| cols.materialize(i))),
            }
        }
        // No buckets left ⇒ no dictionary-encoded columns left.
        self.dict_bucket_cols.clear();
        out.append(&mut self.loose);
        // The old storage is gone: snapshots pinned before this epoch can
        // no longer be served, and the watermarks restart with the re-push.
        self.bucket_marks.clear();
        self.loose_marks.clear();
        self.rewrite_epoch = self.rewrite_epoch.max(self.write_epoch);
        out
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Bucket::len).sum::<usize>() + self.loose.len()
    }

    /// `true` when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.loose.is_empty() && self.buckets.values().all(Bucket::is_empty)
    }
}

/// One table's storage as resolved for a reader by [`Table::read_at`]:
/// either the live buckets or an open transaction's pre-rewrite shadow,
/// with visible lengths bounded at the reader's snapshot. Every scan path
/// (serial, morsel-parallel, streaming cursors) routes bucket selection
/// through this view so storage choice and snapshot bounding can never
/// drift apart.
#[derive(Clone)]
pub struct TableRead<'t> {
    table: &'t Table,
    /// Read the shadow instead of the live storage?
    shadow: Option<&'t RewriteShadow>,
    /// Bound visible lengths at this snapshot (`None` = live, unbounded).
    snapshot: Option<Snapshot>,
}

impl<'t> TableRead<'t> {
    fn buckets(&self) -> &'t BTreeMap<i64, Bucket> {
        match self.shadow {
            Some(s) => &s.buckets,
            None => &self.table.buckets,
        }
    }

    fn bucket_marks(&self, key: i64) -> &'t [(u64, u32)] {
        let marks = match self.shadow {
            Some(s) => &s.bucket_marks,
            None => &self.table.bucket_marks,
        };
        marks.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over `(key, bucket)` of every partition bucket, in key order.
    pub fn partitions(&self) -> impl Iterator<Item = (i64, &'t Bucket)> + '_ {
        self.buckets().iter().map(|(k, b)| (*k, b))
    }

    /// Number of partition buckets in the resolved storage.
    pub fn partition_count(&self) -> usize {
        self.buckets().len()
    }

    /// Rows of bucket `key` visible to the reader's snapshot.
    pub fn visible_bucket_len(&self, key: i64) -> usize {
        let full = self.buckets().get(&key).map_or(0, Bucket::len);
        match &self.snapshot {
            None => full,
            Some(s) => s.visible_len(self.bucket_marks(key), full),
        }
    }

    /// The loose rows of the resolved storage (unbounded — pair with
    /// [`TableRead::visible_loose_len`]).
    pub fn loose_rows(&self) -> &'t [SharedRow] {
        match self.shadow {
            Some(s) => &s.loose,
            None => &self.table.loose,
        }
    }

    /// Loose rows visible to the reader's snapshot.
    pub fn visible_loose_len(&self) -> usize {
        let (marks, full) = match self.shadow {
            Some(s) => (s.loose_marks.as_slice(), s.loose.len()),
            None => (self.table.loose_marks.as_slice(), self.table.loose.len()),
        };
        match &self.snapshot {
            None => full,
            Some(s) => s.visible_len(marks, full),
        }
    }
}

/// The database: a set of tables and views, keyed case-insensitively.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    views: BTreeMap<String, Query>,
    /// Mutation counter: bumped once per engine mutation, stamped onto the
    /// rows that mutation pushes (via [`Table::begin_write`]) and pinned by
    /// snapshot readers. Epoch 0 is "before any tracked mutation".
    epoch: u64,
    /// Epochs allocated by statements of still-open transactions. Readers
    /// outside those transactions pin [`Database::committed_epoch`], which
    /// stays below every unresolved epoch.
    uncommitted: BTreeSet<u64>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current mutation epoch — what a snapshot reader pins.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Advance the mutation epoch and return the new value (stamped onto
    /// the rows the mutation is about to push).
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Advance the epoch for a transactional statement whose commit is still
    /// pending: the epoch is registered as uncommitted, holding the
    /// committed visibility floor below it until the transaction resolves.
    pub fn begin_uncommitted_epoch(&mut self) -> u64 {
        let epoch = self.bump_epoch();
        self.uncommitted.insert(epoch);
        epoch
    }

    /// The newest epoch every reader outside a transaction may observe: one
    /// below the oldest unresolved transaction epoch, or the current epoch
    /// when no transaction is open. Snapshot readers pin this instead of
    /// [`Database::current_epoch`], so uncommitted (and later rolled-back)
    /// rows are never visible to them.
    pub fn committed_epoch(&self) -> u64 {
        match self.uncommitted.first() {
            Some(&e) => e - 1,
            None => self.epoch,
        }
    }

    /// Are any transaction epochs unresolved?
    pub fn has_uncommitted(&self) -> bool {
        !self.uncommitted.is_empty()
    }

    /// Resolve a transaction's epochs (on commit *or* rollback): they stop
    /// holding down the committed visibility floor.
    pub fn resolve_epochs(&mut self, epochs: &[u64]) {
        for e in epochs {
            self.uncommitted.remove(e);
        }
    }

    /// Create (or replace) a table.
    pub fn create_table(&mut self, name: impl Into<String>, columns: Vec<String>) {
        let name = name.into();
        self.tables
            .insert(name.to_ascii_lowercase(), Table::new(name, columns));
    }

    /// Register an already-populated table.
    pub fn insert_table(&mut self, table: Table) {
        self.tables.insert(table.name.to_ascii_lowercase(), table);
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Get a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or(())
            .or_else(|_| err(format!("no such table `{name}`")))
    }

    /// Get a mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or(())
            .or_else(|_| err(format!("no such table `{name}`")))
    }

    /// Does a table with that name exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterate over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Register (or replace) a view.
    pub fn create_view(&mut self, name: impl Into<String>, query: Query) {
        self.views.insert(name.into().to_ascii_lowercase(), query);
    }

    /// Drop a view; returns whether it existed.
    pub fn drop_view(&mut self, name: &str) -> bool {
        self.views.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Get a view definition by name.
    pub fn view(&self, name: &str) -> Option<&Query> {
        self.views.get(&name.to_ascii_lowercase())
    }

    /// Does a view with that name exist?
    pub fn has_view(&self, name: &str) -> bool {
        self.views.contains_key(&name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_is_case_insensitive() {
        let mut db = Database::new();
        db.create_table("Employees", vec!["a".into(), "b".into()]);
        assert!(db.has_table("employees"));
        assert_eq!(db.table("EMPLOYEES").unwrap().columns.len(), 2);
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn push_row_checks_arity() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        assert!(t.push_row(vec![Value::Int(1), Value::Int(2)]).is_ok());
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn views_are_stored_and_dropped() {
        let mut db = Database::new();
        let q = mtsql::parse_query("SELECT 1").unwrap();
        db.create_view("v", q);
        assert!(db.view("V").is_some());
        assert!(db.drop_view("v"));
        assert!(db.view("v").is_none());
    }

    #[test]
    fn drop_table() {
        let mut db = Database::new();
        db.create_table("t", vec!["a".into()]);
        assert!(db.drop_table("T"));
        assert!(!db.drop_table("t"));
    }

    #[test]
    fn column_index_lookup() {
        let t = Table::new("t", vec!["Alpha".into(), "beta".into()]);
        assert_eq!(t.column_index("alpha"), Some(0));
        assert_eq!(t.column_index("BETA"), Some(1));
        assert_eq!(t.column_index("gamma"), None);
    }

    fn tenant_row(t: i64, v: i64) -> Row {
        vec![Value::Int(t), Value::Int(v)]
    }

    #[test]
    fn partitioning_buckets_rows_by_key() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        assert!(t.set_partition_column(Some("TTID")));
        for (tenant, v) in [(1, 10), (2, 20), (1, 11), (3, 30)] {
            t.push_row(tenant_row(tenant, v)).unwrap();
        }
        assert_eq!(t.partition_count(), 3);
        assert_eq!(t.partition_len(1), 2);
        assert_eq!(t.partition_len(2), 1);
        assert_eq!(t.partition_len(99), 0);
        assert_eq!(t.len(), 4);
        assert!(t.loose_rows().is_empty());
    }

    #[test]
    fn declaring_partition_late_rebuckets_existing_rows() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.push_row(tenant_row(1, 10)).unwrap();
        t.push_row(tenant_row(2, 20)).unwrap();
        assert_eq!(t.partition_count(), 0);
        assert!(t.set_partition_column(Some("ttid")));
        assert_eq!(t.partition_count(), 2);
        assert!(t.loose_rows().is_empty());
        // clearing the partition moves rows back to loose storage
        assert!(t.set_partition_column(None));
        assert_eq!(t.partition_count(), 0);
        assert_eq!(t.loose_rows().len(), 2);
    }

    #[test]
    fn non_integer_partition_keys_fall_back_to_loose_rows() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.set_partition_column(Some("ttid"));
        t.push_row(vec![Value::str("odd"), Value::Int(1)]).unwrap();
        t.push_row(tenant_row(1, 10)).unwrap();
        assert_eq!(t.loose_rows().len(), 1);
        assert_eq!(t.partition_len(1), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unknown_partition_column_is_rejected() {
        let mut t = Table::new("t", vec!["a".into()]);
        assert!(!t.set_partition_column(Some("nope")));
        assert_eq!(t.partition_column(), None);
    }

    #[test]
    fn take_rows_empties_all_storage() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.set_partition_column(Some("ttid"));
        t.push_row(tenant_row(1, 10)).unwrap();
        t.push_row(tenant_row(2, 20)).unwrap();
        let rows = t.take_rows();
        assert_eq!(rows.len(), 2);
        assert!(t.is_empty());
        assert_eq!(t.partition_count(), 0);
    }

    fn columnar_table() -> Table {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into(), "s".into()]);
        t.set_partition_column(Some("ttid"));
        t.set_columnar(true);
        t
    }

    #[test]
    fn columnar_roundtrip_preserves_rows_and_order() {
        let mut t = columnar_table();
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Int(10), Value::str("a")],
            vec![Value::Int(2), Value::Float(0.5), Value::str("b")],
            vec![Value::Int(1), Value::Int(11), Value::Null],
        ];
        for r in rows.clone() {
            t.push_row(r).unwrap();
        }
        assert!(t.is_columnar());
        assert!(matches!(t.partition(1), Some(Bucket::Columnar(_))));
        let bucket1 = t.partition(1).unwrap();
        assert_eq!(bucket1.len(), 2);
        assert_eq!(bucket1.reader().materialize(1).as_ref(), rows[2].as_slice());
        // The full-row iterator materializes in bucket order.
        let all: Vec<Vec<Value>> = t.rows().map(|r| r.to_vec()).collect();
        assert_eq!(all, vec![rows[0].clone(), rows[2].clone(), rows[1].clone()]);
    }

    #[test]
    fn columnar_mixed_type_column_demotes_without_losing_values() {
        let mut t = columnar_table();
        t.push_row(vec![Value::Int(1), Value::Int(10), Value::str("a")])
            .unwrap();
        // `v` flips from Int to Str: the column demotes to Mixed.
        t.push_row(vec![Value::Int(1), Value::str("oops"), Value::str("b")])
            .unwrap();
        let bucket = t.partition(1).unwrap().as_columns().unwrap();
        assert!(matches!(bucket.column(1).data(), ColumnVec::Mixed(_)));
        assert_eq!(bucket.value(0, 1), Value::Int(10));
        assert_eq!(bucket.value(1, 1), Value::str("oops"));
    }

    #[test]
    fn columnar_nulls_before_first_typed_value_are_backfilled() {
        let mut t = columnar_table();
        t.push_row(vec![Value::Int(1), Value::Null, Value::Null])
            .unwrap();
        t.push_row(vec![Value::Int(1), Value::Int(7), Value::str("x")])
            .unwrap();
        let bucket = t.partition(1).unwrap().as_columns().unwrap();
        assert!(bucket.column(1).is_null(0));
        assert!(!bucket.column(1).is_null(1));
        assert_eq!(bucket.value(0, 1), Value::Null);
        assert_eq!(bucket.value(1, 1), Value::Int(7));
        assert_eq!(bucket.value(0, 2), Value::Null);
        assert_eq!(bucket.value(1, 2), Value::str("x"));
    }

    fn dict_table() -> Table {
        let mut t = Table::new("t", vec!["ttid".into(), "s".into()]);
        t.set_partition_column(Some("ttid"));
        t.set_dictionary(true);
        t.set_columnar(true);
        t
    }

    #[test]
    fn dictionary_encodes_low_cardinality_strings_sorted() {
        let mut t = dict_table();
        for s in ["MAIL", "SHIP", "AIR", "MAIL", "RAIL", "AIR"] {
            t.push_row(vec![Value::Int(1), Value::str(s)]).unwrap();
        }
        let bucket = t.partition(1).unwrap().as_columns().unwrap();
        assert_eq!(bucket.dict_column_count(), 1);
        let ColumnVec::Dict(d) = bucket.column(1).data() else {
            panic!(
                "expected a dictionary column, got {:?}",
                bucket.column(1).data()
            );
        };
        // The dictionary is sorted and deduplicated; code order = string order.
        let dict: Vec<&str> = d.dict().iter().map(|s| s.as_ref()).collect();
        assert_eq!(dict, vec!["AIR", "MAIL", "RAIL", "SHIP"]);
        assert_eq!(d.codes(), &[1, 3, 0, 1, 2, 0]);
        assert_eq!(d.lookup("RAIL"), Some(2));
        assert_eq!(d.lookup("TRUCK"), None);
        // Decoded values round-trip through the generic reader.
        assert_eq!(bucket.value(1, 1), Value::str("SHIP"));
        assert_eq!(t.dict_column_count(), 1);
    }

    #[test]
    fn dictionary_handles_nulls_and_preserves_rows() {
        let mut t = dict_table();
        // NULLs before the first value, between values, and an empty string.
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(1), Value::str("b")],
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(1), Value::str("")],
            vec![Value::Int(1), Value::str("a")],
        ];
        for r in rows.clone() {
            t.push_row(r).unwrap();
        }
        let all: Vec<Vec<Value>> = t.rows().map(|r| r.to_vec()).collect();
        assert_eq!(all, rows);
        let bucket = t.partition(1).unwrap().as_columns().unwrap();
        assert!(bucket.column(1).is_null(0));
        assert!(bucket.column(1).is_null(2));
        assert_eq!(bucket.value(3, 1), Value::str(""));
    }

    #[test]
    fn dictionary_demotes_past_the_distinct_threshold() {
        let mut t = dict_table();
        let rows: Vec<Row> = (0..=DICT_MAX_DISTINCT as i64)
            .map(|i| vec![Value::Int(1), Value::str(format!("v{i:05}"))])
            .collect();
        for (n, r) in rows.clone().into_iter().enumerate() {
            t.push_row(r).unwrap();
            let bucket = t.partition(1).unwrap().as_columns().unwrap();
            let is_dict = bucket.column(1).is_dict();
            // Exactly the (threshold + 1)-th distinct value demotes.
            assert_eq!(is_dict, n < DICT_MAX_DISTINCT, "after {} rows", n + 1);
        }
        let bucket = t.partition(1).unwrap().as_columns().unwrap();
        assert!(matches!(bucket.column(1).data(), ColumnVec::Str(_)));
        assert_eq!(t.dict_column_count(), 0);
        // Every value survived the demotion, in order.
        let all: Vec<Vec<Value>> = t.rows().map(|r| r.to_vec()).collect();
        assert_eq!(all, rows);
    }

    #[test]
    fn dictionary_demotion_keeps_null_slots_null() {
        let mut t = dict_table();
        t.push_row(vec![Value::Int(1), Value::Null]).unwrap();
        for i in 0..=DICT_MAX_DISTINCT as i64 {
            t.push_row(vec![Value::Int(1), Value::str(format!("v{i:05}"))])
                .unwrap();
        }
        let bucket = t.partition(1).unwrap().as_columns().unwrap();
        assert!(matches!(bucket.column(1).data(), ColumnVec::Str(_)));
        assert_eq!(bucket.value(0, 1), Value::Null);
        assert_eq!(bucket.value(1, 1), Value::str("v00000"));
    }

    #[test]
    fn dictionary_column_demotes_to_mixed_on_type_flip() {
        let mut t = dict_table();
        t.push_row(vec![Value::Int(1), Value::str("a")]).unwrap();
        t.push_row(vec![Value::Int(1), Value::Int(7)]).unwrap();
        let bucket = t.partition(1).unwrap().as_columns().unwrap();
        assert!(matches!(bucket.column(1).data(), ColumnVec::Mixed(_)));
        assert_eq!(bucket.value(0, 1), Value::str("a"));
        assert_eq!(bucket.value(1, 1), Value::Int(7));
    }

    #[test]
    fn set_dictionary_re_encodes_existing_buckets_both_ways() {
        let mut t = Table::new("t", vec!["ttid".into(), "s".into()]);
        t.set_partition_column(Some("ttid"));
        t.set_columnar(true);
        for s in ["x", "y", "x"] {
            t.push_row(vec![Value::Int(1), Value::str(s)]).unwrap();
        }
        let before: Vec<Vec<Value>> = t.rows().map(|r| r.to_vec()).collect();
        assert_eq!(t.dict_column_count(), 0);
        t.set_dictionary(true);
        assert_eq!(t.dict_column_count(), 1);
        assert_eq!(t.rows().map(|r| r.to_vec()).collect::<Vec<_>>(), before);
        t.set_dictionary(false);
        assert_eq!(t.dict_column_count(), 0);
        assert_eq!(t.rows().map(|r| r.to_vec()).collect::<Vec<_>>(), before);
    }

    #[test]
    fn snapshot_watermarks_bound_visible_rows() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.set_partition_column(Some("ttid"));
        t.begin_write(1);
        t.push_row(tenant_row(1, 10)).unwrap();
        t.push_row(tenant_row(1, 11)).unwrap();
        t.begin_write(3);
        t.push_row(tenant_row(1, 12)).unwrap();
        t.push_row(tenant_row(2, 20)).unwrap();
        // Snapshot 1 sees only epoch-1 rows; bucket 2 does not exist yet.
        assert_eq!(t.visible_bucket_len(1, 1), 2);
        assert_eq!(t.visible_bucket_len(1, 2), 2);
        assert_eq!(t.visible_bucket_len(2, 1), 0);
        // Snapshot 3 (and "current") see everything.
        assert_eq!(t.visible_bucket_len(1, 3), 3);
        assert_eq!(t.visible_bucket_len(2, 3), 1);
        assert_eq!(t.visible_bucket_len(1, u64::MAX), 3);
        // Snapshot 0 predates every tracked write.
        assert_eq!(t.visible_bucket_len(1, 0), 0);
    }

    #[test]
    fn snapshot_watermarks_cover_loose_rows() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.begin_write(2);
        t.push_row(vec![Value::Int(1)]).unwrap();
        t.begin_write(5);
        t.push_row(vec![Value::Int(2)]).unwrap();
        assert_eq!(t.visible_loose_len(1), 0);
        assert_eq!(t.visible_loose_len(2), 1);
        assert_eq!(t.visible_loose_len(4), 1);
        assert_eq!(t.visible_loose_len(5), 2);
        assert_eq!(t.visible_loose_len(u64::MAX), 2);
    }

    #[test]
    fn take_rows_records_the_rewrite_epoch() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.set_partition_column(Some("ttid"));
        t.begin_write(1);
        t.push_row(tenant_row(1, 10)).unwrap();
        assert_eq!(t.rewrite_epoch(), 0);
        t.begin_write(4);
        let rows = t.take_rows();
        assert_eq!(t.rewrite_epoch(), 4);
        // Re-pushed rows watermark at the rewriting epoch: older snapshots
        // are invalidated, the rewriter's own snapshot sees everything.
        for row in rows {
            t.push_shared(row);
        }
        assert_eq!(t.visible_bucket_len(1, 4), 1);
    }

    #[test]
    fn snapshot_visible_len_clips_at_the_floor() {
        let at = Snapshot::At(5);
        assert_eq!(at.visible_len(&[(3, 2), (5, 4)], 4), 4, "tail admitted");
        assert_eq!(at.visible_len(&[(3, 2), (7, 4)], 4), 2, "clip at floor");
        assert_eq!(at.visible_len(&[(7, 4)], 4), 0, "nothing admitted");
        assert_eq!(at.visible_len(&[], 3), 3, "pre-watermark storage");
        let own = std::sync::Arc::new(std::collections::BTreeSet::from([8u64]));
        let txn = Snapshot::Txn { floor: 5, own };
        assert!(txn.admits(5) && txn.admits(8) && !txn.admits(7));
        // A bucket our transaction wrote last is fully visible; a bucket
        // another open transaction wrote last clips at the floor.
        assert_eq!(txn.visible_len(&[(3, 2), (8, 4)], 4), 4);
        assert_eq!(txn.visible_len(&[(3, 2), (7, 4)], 4), 2);
    }

    #[test]
    fn txn_rewrite_shadow_serves_floor_readers_and_rolls_back() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.set_partition_column(Some("ttid"));
        t.begin_write(1);
        t.push_row(tenant_row(1, 10)).unwrap();
        t.push_row(tenant_row(1, 11)).unwrap();
        // First transactional rewrite (epoch 3): committed storage moves
        // into the shadow; the caller pushes the replacement row set.
        assert!(t.begin_txn_rewrite(3));
        t.push_row(tenant_row(1, 110)).unwrap();
        let pinned = Snapshot::At(1);
        let view = t.read_at(Some(&pinned));
        assert_eq!(view.visible_bucket_len(1), 2, "floor reads the shadow");
        assert_eq!(
            t.read_at(None).visible_bucket_len(1),
            1,
            "live reads the rewrite"
        );
        // A second rewrite in the same transaction reuses the shadow.
        assert!(!t.begin_txn_rewrite(4));
        assert!(t.has_rewrite_shadow());
        t.rollback_rewrite();
        assert!(!t.has_rewrite_shadow());
        assert_eq!(t.rewrite_epoch(), 0, "rewrite epoch restored");
        assert_eq!(t.partition_len(1), 2, "committed rows restored");
        assert!(t.snapshot_servable(1));
    }

    #[test]
    fn publishing_a_txn_rewrite_drops_the_shadow() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.set_partition_column(Some("ttid"));
        t.begin_write(1);
        t.push_row(tenant_row(1, 10)).unwrap();
        assert!(t.begin_txn_rewrite(3));
        t.push_row(tenant_row(1, 110)).unwrap();
        t.publish_rewrite();
        assert!(!t.has_rewrite_shadow());
        assert_eq!(t.partition_len(1), 1);
        // The commit makes the rewrite real: snapshots from before it are
        // now invalid, exactly like a non-transactional rewrite.
        assert!(!t.snapshot_servable(1));
        assert!(t.snapshot_servable(3));
    }

    #[test]
    fn set_columnar_re_encodes_existing_buckets_both_ways() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.set_partition_column(Some("ttid"));
        for (tenant, v) in [(1, 10), (2, 20), (1, 11)] {
            t.push_row(tenant_row(tenant, v)).unwrap();
        }
        let before: Vec<Vec<Value>> = t.rows().map(|r| r.to_vec()).collect();
        t.set_columnar(true);
        assert!(matches!(t.partition(1), Some(Bucket::Columnar(_))));
        let columnar: Vec<Vec<Value>> = t.rows().map(|r| r.to_vec()).collect();
        assert_eq!(before, columnar);
        t.set_columnar(false);
        assert!(matches!(t.partition(1), Some(Bucket::Rows(_))));
        let back: Vec<Vec<Value>> = t.rows().map(|r| r.to_vec()).collect();
        assert_eq!(before, back);
    }
}

//! In-memory row storage: tables, views and the database holding them.

use std::collections::BTreeMap;

use mtsql::ast::Query;

use crate::error::{err, Result};
use crate::value::Value;

/// A materialized row.
pub type Row = Vec<Value>;

/// An in-memory table: a flat list of rows with named columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table name as registered.
    pub name: String,
    /// Column names, in storage order.
    pub columns: Vec<String>,
    /// Row data.
    pub rows: Vec<Row>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Append a row after checking its arity.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return err(format!(
                "row arity {} does not match table `{}` with {} columns",
                row.len(),
                self.name,
                self.columns.len()
            ));
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The database: a set of tables and views, keyed case-insensitively.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    views: BTreeMap<String, Query>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create (or replace) a table.
    pub fn create_table(&mut self, name: impl Into<String>, columns: Vec<String>) {
        let name = name.into();
        self.tables
            .insert(name.to_ascii_lowercase(), Table::new(name, columns));
    }

    /// Register an already-populated table.
    pub fn insert_table(&mut self, table: Table) {
        self.tables.insert(table.name.to_ascii_lowercase(), table);
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Get a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or(())
            .or_else(|_| err(format!("no such table `{name}`")))
    }

    /// Get a mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or(())
            .or_else(|_| err(format!("no such table `{name}`")))
    }

    /// Does a table with that name exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterate over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Register (or replace) a view.
    pub fn create_view(&mut self, name: impl Into<String>, query: Query) {
        self.views.insert(name.into().to_ascii_lowercase(), query);
    }

    /// Drop a view; returns whether it existed.
    pub fn drop_view(&mut self, name: &str) -> bool {
        self.views.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Get a view definition by name.
    pub fn view(&self, name: &str) -> Option<&Query> {
        self.views.get(&name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_is_case_insensitive() {
        let mut db = Database::new();
        db.create_table("Employees", vec!["a".into(), "b".into()]);
        assert!(db.has_table("employees"));
        assert_eq!(db.table("EMPLOYEES").unwrap().columns.len(), 2);
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn push_row_checks_arity() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        assert!(t.push_row(vec![Value::Int(1), Value::Int(2)]).is_ok());
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn views_are_stored_and_dropped() {
        let mut db = Database::new();
        let q = mtsql::parse_query("SELECT 1").unwrap();
        db.create_view("v", q);
        assert!(db.view("V").is_some());
        assert!(db.drop_view("v"));
        assert!(db.view("v").is_none());
    }

    #[test]
    fn drop_table() {
        let mut db = Database::new();
        db.create_table("t", vec!["a".into()]);
        assert!(db.drop_table("T"));
        assert!(!db.drop_table("t"));
    }

    #[test]
    fn column_index_lookup() {
        let t = Table::new("t", vec!["Alpha".into(), "beta".into()]);
        assert_eq!(t.column_index("alpha"), Some(0));
        assert_eq!(t.column_index("BETA"), Some(1));
        assert_eq!(t.column_index("gamma"), None);
    }
}

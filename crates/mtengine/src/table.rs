//! In-memory row storage: tables, views and the database holding them.
//!
//! Tables store rows behind [`SharedRow`] (`Arc<[Value]>`) handles so that
//! scans hand out reference-counted pointers instead of deep copies. A table
//! may additionally declare a *partition column* (the invisible `ttid` of the
//! MTBase shared-table layout): rows are then bucketed by that column's
//! integer value, and the executor can skip entire foreign-tenant buckets
//! when the query carries a `ttid = k` / `ttid IN (...)` scope predicate.

use std::collections::BTreeMap;
use std::sync::Arc;

use mtsql::ast::Query;

use crate::error::{err, Result};
use crate::value::Value;

/// A mutable row under construction (DML, projections).
pub type Row = Vec<Value>;

/// An immutable, reference-counted stored row. Cloning is a pointer bump.
pub type SharedRow = Arc<[Value]>;

/// An in-memory table: named columns plus rows, optionally bucketed by a
/// partition column.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table name as registered.
    pub name: String,
    /// Column names, in storage order.
    pub columns: Vec<String>,
    /// Index of the partition column, when declared.
    partition_col: Option<usize>,
    /// Rows bucketed by partition-key value (partitioned tables only).
    buckets: BTreeMap<i64, Vec<SharedRow>>,
    /// Rows of unpartitioned tables, plus rows of partitioned tables whose
    /// partition key is not an integer (never produced by the MT layout, but
    /// kept correct regardless).
    loose: Vec<SharedRow>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            name: name.into(),
            columns,
            partition_col: None,
            buckets: BTreeMap::new(),
            loose: Vec::new(),
        }
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Declare (or clear) the partition column by name, re-bucketing any
    /// existing rows. Returns `false` when the column does not exist.
    pub fn set_partition_column(&mut self, column: Option<&str>) -> bool {
        let idx = match column {
            None => None,
            Some(name) => match self.column_index(name) {
                Some(i) => Some(i),
                None => return false,
            },
        };
        if idx == self.partition_col {
            return true;
        }
        let rows = self.take_rows();
        self.partition_col = idx;
        for row in rows {
            self.push_shared(row);
        }
        true
    }

    /// The declared partition column index, if any.
    pub fn partition_column(&self) -> Option<usize> {
        self.partition_col
    }

    /// Number of partition buckets currently holding rows.
    pub fn partition_count(&self) -> usize {
        self.buckets.len()
    }

    /// The rows of one partition bucket (empty slice for absent keys).
    pub fn partition(&self, key: i64) -> &[SharedRow] {
        self.buckets.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate over `(key, rows)` of every partition bucket, in key order.
    pub fn partitions(&self) -> impl Iterator<Item = (i64, &[SharedRow])> {
        self.buckets.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Rows that are not held in any partition bucket.
    pub fn loose_rows(&self) -> &[SharedRow] {
        &self.loose
    }

    /// Append a row after checking its arity.
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return err(format!(
                "row arity {} does not match table `{}` with {} columns",
                row.len(),
                self.name,
                self.columns.len()
            ));
        }
        self.push_shared(row.into());
        Ok(())
    }

    /// Append an already-shared row, routing it into its partition bucket.
    /// The arity must have been checked by the caller.
    pub fn push_shared(&mut self, row: SharedRow) {
        match self.partition_col {
            Some(idx) => match row.get(idx) {
                Some(Value::Int(key)) => {
                    let key = *key;
                    self.buckets.entry(key).or_default().push(row);
                }
                _ => self.loose.push(row),
            },
            None => self.loose.push(row),
        }
    }

    /// Iterate over all rows: partition buckets in key order, then loose rows.
    pub fn rows(&self) -> impl Iterator<Item = &SharedRow> {
        self.buckets
            .values()
            .flat_map(|b| b.iter())
            .chain(self.loose.iter())
    }

    /// Remove and return every row, leaving the table empty (used by DML that
    /// rewrites the row set; re-inserting re-buckets).
    pub fn take_rows(&mut self) -> Vec<SharedRow> {
        let mut out: Vec<SharedRow> = Vec::with_capacity(self.len());
        for bucket in std::mem::take(&mut self.buckets).into_values() {
            out.extend(bucket);
        }
        out.append(&mut self.loose);
        out
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum::<usize>() + self.loose.len()
    }

    /// `true` when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.loose.is_empty() && self.buckets.values().all(Vec::is_empty)
    }
}

/// The database: a set of tables and views, keyed case-insensitively.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    views: BTreeMap<String, Query>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create (or replace) a table.
    pub fn create_table(&mut self, name: impl Into<String>, columns: Vec<String>) {
        let name = name.into();
        self.tables
            .insert(name.to_ascii_lowercase(), Table::new(name, columns));
    }

    /// Register an already-populated table.
    pub fn insert_table(&mut self, table: Table) {
        self.tables.insert(table.name.to_ascii_lowercase(), table);
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&mut self, name: &str) -> bool {
        self.tables.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Get a table by name.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or(())
            .or_else(|_| err(format!("no such table `{name}`")))
    }

    /// Get a mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or(())
            .or_else(|_| err(format!("no such table `{name}`")))
    }

    /// Does a table with that name exist?
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterate over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Register (or replace) a view.
    pub fn create_view(&mut self, name: impl Into<String>, query: Query) {
        self.views.insert(name.into().to_ascii_lowercase(), query);
    }

    /// Drop a view; returns whether it existed.
    pub fn drop_view(&mut self, name: &str) -> bool {
        self.views.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Get a view definition by name.
    pub fn view(&self, name: &str) -> Option<&Query> {
        self.views.get(&name.to_ascii_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_is_case_insensitive() {
        let mut db = Database::new();
        db.create_table("Employees", vec!["a".into(), "b".into()]);
        assert!(db.has_table("employees"));
        assert_eq!(db.table("EMPLOYEES").unwrap().columns.len(), 2);
        assert!(db.table("nope").is_err());
    }

    #[test]
    fn push_row_checks_arity() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        assert!(t.push_row(vec![Value::Int(1), Value::Int(2)]).is_ok());
        assert!(t.push_row(vec![Value::Int(1)]).is_err());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn views_are_stored_and_dropped() {
        let mut db = Database::new();
        let q = mtsql::parse_query("SELECT 1").unwrap();
        db.create_view("v", q);
        assert!(db.view("V").is_some());
        assert!(db.drop_view("v"));
        assert!(db.view("v").is_none());
    }

    #[test]
    fn drop_table() {
        let mut db = Database::new();
        db.create_table("t", vec!["a".into()]);
        assert!(db.drop_table("T"));
        assert!(!db.drop_table("t"));
    }

    #[test]
    fn column_index_lookup() {
        let t = Table::new("t", vec!["Alpha".into(), "beta".into()]);
        assert_eq!(t.column_index("alpha"), Some(0));
        assert_eq!(t.column_index("BETA"), Some(1));
        assert_eq!(t.column_index("gamma"), None);
    }

    fn tenant_row(t: i64, v: i64) -> Row {
        vec![Value::Int(t), Value::Int(v)]
    }

    #[test]
    fn partitioning_buckets_rows_by_key() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        assert!(t.set_partition_column(Some("TTID")));
        for (tenant, v) in [(1, 10), (2, 20), (1, 11), (3, 30)] {
            t.push_row(tenant_row(tenant, v)).unwrap();
        }
        assert_eq!(t.partition_count(), 3);
        assert_eq!(t.partition(1).len(), 2);
        assert_eq!(t.partition(2).len(), 1);
        assert_eq!(t.partition(99).len(), 0);
        assert_eq!(t.len(), 4);
        assert!(t.loose_rows().is_empty());
    }

    #[test]
    fn declaring_partition_late_rebuckets_existing_rows() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.push_row(tenant_row(1, 10)).unwrap();
        t.push_row(tenant_row(2, 20)).unwrap();
        assert_eq!(t.partition_count(), 0);
        assert!(t.set_partition_column(Some("ttid")));
        assert_eq!(t.partition_count(), 2);
        assert!(t.loose_rows().is_empty());
        // clearing the partition moves rows back to loose storage
        assert!(t.set_partition_column(None));
        assert_eq!(t.partition_count(), 0);
        assert_eq!(t.loose_rows().len(), 2);
    }

    #[test]
    fn non_integer_partition_keys_fall_back_to_loose_rows() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.set_partition_column(Some("ttid"));
        t.push_row(vec![Value::str("odd"), Value::Int(1)]).unwrap();
        t.push_row(tenant_row(1, 10)).unwrap();
        assert_eq!(t.loose_rows().len(), 1);
        assert_eq!(t.partition(1).len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn unknown_partition_column_is_rejected() {
        let mut t = Table::new("t", vec!["a".into()]);
        assert!(!t.set_partition_column(Some("nope")));
        assert_eq!(t.partition_column(), None);
    }

    #[test]
    fn take_rows_empties_all_storage() {
        let mut t = Table::new("t", vec!["ttid".into(), "v".into()]);
        t.set_partition_column(Some("ttid"));
        t.push_row(tenant_row(1, 10)).unwrap();
        t.push_row(tenant_row(2, 20)).unwrap();
        let rows = t.take_rows();
        assert_eq!(rows.len(), 2);
        assert!(t.is_empty());
        assert_eq!(t.partition_count(), 0);
    }
}

//! User-defined scalar functions with optional result caching.
//!
//! Conversion functions are the hot path of MTBase query execution; the paper
//! distinguishes DBMSs that cache results of deterministic (`IMMUTABLE`) UDFs
//! (PostgreSQL) from ones that cannot (the commercial "System C"). The
//! registry reproduces both behaviours behind a configuration flag and counts
//! calls so experiments can report the analytic effect of each optimization.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{err, Result};
use crate::value::Value;

/// Signature of a native scalar UDF implementation.
pub type UdfImpl = Arc<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A registered UDF.
#[derive(Clone)]
pub struct Udf {
    /// Function name (case-insensitive lookup).
    pub name: String,
    /// Whether the function is deterministic (`IMMUTABLE`), which permits
    /// result caching when the engine is configured to do so.
    pub immutable: bool,
    /// Native implementation.
    pub implementation: UdfImpl,
}

/// Counters describing UDF activity; cheap to snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UdfStats {
    /// Number of calls that actually executed the function body.
    pub calls: u64,
    /// Number of calls answered from the immutable-result cache.
    pub cache_hits: u64,
}

/// Registry of UDFs plus the immutable-result cache.
pub struct UdfRegistry {
    functions: HashMap<String, Udf>,
    cache_enabled: bool,
    cache: Mutex<HashMap<(String, Vec<Value>), Value>>,
    calls: AtomicU64,
    cache_hits: AtomicU64,
}

impl UdfRegistry {
    /// Create a registry; `cache_enabled` models PostgreSQL-style caching of
    /// deterministic function results (disable it to model "System C").
    pub fn new(cache_enabled: bool) -> Self {
        UdfRegistry {
            functions: HashMap::new(),
            cache_enabled,
            cache: Mutex::new(HashMap::new()),
            calls: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
        }
    }

    /// Register (or replace) a UDF.
    pub fn register(&mut self, name: impl Into<String>, immutable: bool, implementation: UdfImpl) {
        let name = name.into();
        self.functions.insert(
            name.to_ascii_lowercase(),
            Udf {
                name,
                immutable,
                implementation,
            },
        );
    }

    /// Is a function with this name registered?
    pub fn contains(&self, name: &str) -> bool {
        self.functions.contains_key(&name.to_ascii_lowercase())
    }

    /// Invoke a UDF, consulting the immutable-result cache when allowed.
    pub fn call(&self, name: &str, args: &[Value]) -> Result<Value> {
        let Some(udf) = self.functions.get(&name.to_ascii_lowercase()) else {
            return err(format!("unknown function `{name}`"));
        };
        if self.cache_enabled && udf.immutable {
            let key = (name.to_ascii_lowercase(), args.to_vec());
            if let Some(hit) = self.cache.lock().get(&key) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit.clone());
            }
            self.calls.fetch_add(1, Ordering::Relaxed);
            let result = (udf.implementation)(args)?;
            self.cache.lock().insert(key, result.clone());
            return Ok(result);
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        (udf.implementation)(args)
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> UdfStats {
        UdfStats {
            calls: self.calls.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
        }
    }

    /// Reset counters and cache (call between measured query runs).
    pub fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache.lock().clear();
    }

    /// Whether immutable-result caching is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn make_counting_udf(counter: Arc<AtomicUsize>) -> UdfImpl {
        Arc::new(move |args: &[Value]| {
            counter.fetch_add(1, Ordering::SeqCst);
            args[0].mul(&Value::Float(2.0))
        })
    }

    #[test]
    fn call_dispatches_and_counts() {
        let mut reg = UdfRegistry::new(false);
        let hits = Arc::new(AtomicUsize::new(0));
        reg.register("double", true, make_counting_udf(hits.clone()));
        let v = reg.call("DOUBLE", &[Value::Int(21)]).unwrap();
        assert_eq!(v, Value::Float(42.0));
        assert_eq!(reg.stats().calls, 1);
        assert_eq!(reg.stats().cache_hits, 0);
    }

    #[test]
    fn unknown_function_errors() {
        let reg = UdfRegistry::new(false);
        assert!(reg.call("nope", &[]).is_err());
    }

    #[test]
    fn immutable_results_are_cached_when_enabled() {
        let mut reg = UdfRegistry::new(true);
        let executions = Arc::new(AtomicUsize::new(0));
        reg.register("double", true, make_counting_udf(executions.clone()));
        for _ in 0..5 {
            reg.call("double", &[Value::Int(3)]).unwrap();
        }
        assert_eq!(executions.load(Ordering::SeqCst), 1);
        let stats = reg.stats();
        assert_eq!(stats.calls, 1);
        assert_eq!(stats.cache_hits, 4);
    }

    #[test]
    fn caching_disabled_reexecutes_every_time() {
        let mut reg = UdfRegistry::new(false);
        let executions = Arc::new(AtomicUsize::new(0));
        reg.register("double", true, make_counting_udf(executions.clone()));
        for _ in 0..5 {
            reg.call("double", &[Value::Int(3)]).unwrap();
        }
        assert_eq!(executions.load(Ordering::SeqCst), 5);
        assert_eq!(reg.stats().cache_hits, 0);
    }

    #[test]
    fn non_immutable_functions_are_never_cached() {
        let mut reg = UdfRegistry::new(true);
        let executions = Arc::new(AtomicUsize::new(0));
        reg.register("volatile_fn", false, make_counting_udf(executions.clone()));
        for _ in 0..3 {
            reg.call("volatile_fn", &[Value::Int(3)]).unwrap();
        }
        assert_eq!(executions.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn reset_clears_cache_and_counters() {
        let mut reg = UdfRegistry::new(true);
        let executions = Arc::new(AtomicUsize::new(0));
        reg.register("double", true, make_counting_udf(executions.clone()));
        reg.call("double", &[Value::Int(3)]).unwrap();
        reg.reset();
        assert_eq!(reg.stats(), UdfStats::default());
        reg.call("double", &[Value::Int(3)]).unwrap();
        assert_eq!(executions.load(Ordering::SeqCst), 2);
    }
}

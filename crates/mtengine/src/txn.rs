//! Multi-statement transactions: staged WAL records plus in-memory undo.
//!
//! A [`Transaction`] collects the WAL records of every DML statement
//! executed under it ([`Engine::txn_execute_statement`]) while applying the
//! statements to the in-memory tables immediately — each under its own
//! *uncommitted* epoch ([`crate::table::Database::begin_uncommitted_epoch`]),
//! so snapshot readers outside the transaction (pinned to the committed
//! epoch) never observe the staged rows. Alongside every statement the
//! transaction records the inverse operation:
//!
//! * appends (INSERT) undo as **truncations** — the pre-statement length and
//!   watermark count of every touched bucket (buckets are append-only, so
//!   dropping the tail restores them bit-for-bit);
//! * rewrites (UPDATE / DELETE) undo by **restoring the rewrite shadow** —
//!   the transaction's first rewrite of a table moves the committed storage
//!   (buckets, watermarks, rewrite epoch) into a
//!   [`crate::table::RewriteShadow`] instead of dropping it, which both
//!   keeps committed-floor readers servable while the transaction is open
//!   and makes rollback an exact restore: watermarks and the rewrite epoch
//!   come back as they were, so snapshot cursors pinned before the aborted
//!   transaction keep working.
//!
//! Reads inside the transaction — the SELECT branch of
//! [`Engine::txn_execute_statement`] and the sub-queries of UPDATE / DELETE
//! predicates — pin a *transaction-scoped* snapshot: the committed floor
//! plus the transaction's own statement epochs
//! ([`crate::exec::Executor::pin_txn_snapshot`]). The transaction sees its
//! own staged rows but never another open transaction's.
//!
//! `COMMIT` appends all staged records plus one commit marker to the WAL as
//! a single log transaction ([`Engine::txn_append`]); after the caller has
//! waited for durability (outside the engine lock — see
//! [`crate::wal::WalHandle::wait_durable`]) it publishes the epochs
//! ([`Engine::txn_publish`]). `ROLLBACK` — or a failed append/flush —
//! replays the undo log in reverse ([`Engine::txn_rollback`]), restoring
//! the pre-transaction state; nothing was logged, so recovery agrees.
//!
//! Physical layout transitions are deliberately *not* undone: a dictionary
//! demotion triggered by rows that are later rolled back stays demoted,
//! matching the recovery convention that layout is never part of the
//! durable state (results are layout-independent).

use std::collections::BTreeSet;
use std::sync::Arc;

use mtsql::ast::Statement;

use crate::error::{err, EngineError, Result};
use crate::exec::{Env, Executor};
use crate::schema::Schema;
use crate::table::{Row, SharedRow};
use crate::wal::Record;
use crate::{Engine, ResultSet, Value};

/// The inverse of one transactional statement, replayed in reverse order on
/// rollback.
#[derive(Debug)]
enum UndoOp {
    /// Undo appends into one partition bucket: truncate back to the
    /// pre-statement length and watermark count (`existed == false` removes
    /// the bucket — the statement created it).
    TruncateBucket {
        table: String,
        key: i64,
        existed: bool,
        len: u32,
        marks: u32,
    },
    /// Undo appends to the loose rows, mirroring `TruncateBucket`.
    TruncateLoose { table: String, len: u32, marks: u32 },
    /// Undo a row-set rewrite: discard the uncommitted rewritten storage
    /// and restore the committed pre-rewrite shadow — watermarks and
    /// rewrite epoch included ([`crate::table::Table::rollback_rewrite`]).
    /// Recorded only by the transaction's *first* rewrite of a table (the
    /// one that created the shadow); later rewrites of the same table are
    /// undone by the same restore.
    RestoreShadow { table: String },
}

/// An open multi-statement transaction (see the module docs). Created by
/// [`Engine::begin_transaction`]; resolved by exactly one of
/// [`Engine::txn_publish`] or [`Engine::txn_rollback`].
#[derive(Debug)]
pub struct Transaction {
    id: u64,
    /// WAL records staged for the commit append, in statement order.
    pending: Vec<Record>,
    /// Undo log, in execution order (replayed in reverse).
    undo: Vec<UndoOp>,
    /// Uncommitted epochs allocated by this transaction's statements.
    epochs: Vec<u64>,
    /// DML statements executed so far.
    statements: u64,
}

impl Transaction {
    /// Unique id of this transaction on its engine — also used as the lock
    /// owner for [`crate::lock::LockManager`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// DML statements executed under this transaction so far.
    pub fn statements(&self) -> u64 {
        self.statements
    }

    /// `true` when no statement staged anything to log.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// The transaction's own uncommitted epochs as the allowlist of a
    /// read-your-writes snapshot pin (see
    /// [`crate::exec::Executor::pin_txn_snapshot`]).
    pub(crate) fn own_epochs(&self) -> Arc<BTreeSet<u64>> {
        Arc::new(self.epochs.iter().copied().collect())
    }
}

impl Engine {
    /// Open a transaction. The engine does not track it — the caller owns
    /// the [`Transaction`] and must resolve it via [`Engine::txn_publish`]
    /// or [`Engine::txn_rollback`] (the middleware's session does this).
    pub fn begin_transaction(&mut self) -> Transaction {
        self.txn_seq += 1;
        Transaction {
            id: self.txn_seq,
            pending: Vec::new(),
            undo: Vec::new(),
            epochs: Vec::new(),
            statements: 0,
        }
    }

    /// Execute one statement under an open transaction. DML stages its WAL
    /// record and applies in memory under an uncommitted epoch; SELECT pins
    /// the transaction-scoped snapshot (the transaction sees its own writes
    /// but not other open transactions' staged rows). Everything else —
    /// DDL, DCL — is rejected: those statements commit their own WAL
    /// transaction and cannot be staged or rolled back here.
    pub fn txn_execute_statement(
        &mut self,
        txn: &mut Transaction,
        stmt: &Statement,
    ) -> Result<ResultSet> {
        match stmt {
            Statement::Select(q) => self.execute_query_txn(q, txn),
            Statement::Explain(q) => self.explain_query(q),
            Statement::Insert(insert) => {
                let rows = self.build_insert_rows(insert, Some(txn))?;
                let count = rows.len() as i64;
                self.txn_insert_rows(txn, &insert.table, rows)?;
                txn.statements += 1;
                Ok(ResultSet {
                    columns: vec!["rows_inserted".to_string()],
                    rows: vec![vec![Value::Int(count)]],
                })
            }
            Statement::Update(update) => {
                let new_rows = self.compute_update_rows(update, txn)?;
                let changed = new_rows.iter().filter(|(m, _)| *m).count() as i64;
                let rows: Vec<SharedRow> = new_rows.into_iter().map(|(_, r)| r).collect();
                self.txn_replace_rows(txn, &update.table, rows)?;
                txn.statements += 1;
                Ok(ResultSet {
                    columns: vec!["rows_updated".to_string()],
                    rows: vec![vec![Value::Int(changed)]],
                })
            }
            Statement::Delete(delete) => {
                let (keep, removed) = self.compute_delete_rows(delete, txn)?;
                self.txn_replace_rows(txn, &delete.table, keep)?;
                txn.statements += 1;
                Ok(ResultSet {
                    columns: vec!["rows_deleted".to_string()],
                    rows: vec![vec![Value::Int(removed)]],
                })
            }
            _ => err(
                "only SELECT, INSERT, UPDATE and DELETE are allowed inside a transaction \
                 (DDL and DCL statements commit on their own)",
            ),
        }
    }

    /// Stage and apply one INSERT batch under `txn` (the transactional
    /// counterpart of [`Engine::insert_values`]). The rows staged for the
    /// WAL are exactly the rows applied.
    pub fn txn_insert_rows(
        &mut self,
        txn: &mut Transaction,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<()> {
        // Validate arity up front so an invalid batch stages nothing.
        let width = self.db.table(table)?.columns.len();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return err(format!(
                "row arity {} does not match table `{table}` with {width} columns",
                bad.len(),
            ));
        }
        // Record the pre-statement tail of every bucket the batch appends
        // to; the undo truncates back to it.
        let t = self.db.table(table)?;
        let canonical = t.name.clone();
        let mut keys: BTreeSet<i64> = BTreeSet::new();
        let mut touches_loose = false;
        match t.partition_column() {
            Some(idx) => {
                for row in &rows {
                    match row.get(idx) {
                        Some(Value::Int(k)) => {
                            keys.insert(*k);
                        }
                        _ => touches_loose = true,
                    }
                }
            }
            None => touches_loose = true,
        }
        for key in keys {
            let (existed, len, marks) = match t.bucket_state(key) {
                Some((len, marks)) => (true, len, marks),
                None => (false, 0, 0),
            };
            txn.undo.push(UndoOp::TruncateBucket {
                table: canonical.clone(),
                key,
                existed,
                len,
                marks,
            });
        }
        if touches_loose {
            let (len, marks) = t.loose_state();
            txn.undo.push(UndoOp::TruncateLoose {
                table: canonical.clone(),
                len,
                marks,
            });
        }
        if self.wal.is_some() {
            txn.pending.push(Record::InsertRows {
                table: canonical,
                rows: rows.clone(),
            });
        }
        let epoch = self.db.begin_uncommitted_epoch();
        txn.epochs.push(epoch);
        let t = self.db.table_mut(table)?;
        t.begin_write(epoch);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(())
    }

    /// Stage and apply one full row-set rewrite (UPDATE / DELETE) under
    /// `txn`. The committed pre-rewrite storage moves into the table's
    /// rewrite shadow (first rewrite of this table under `txn` only), which
    /// serves committed-floor readers while the transaction is open and is
    /// the undo image on rollback.
    fn txn_replace_rows(
        &mut self,
        txn: &mut Transaction,
        table: &str,
        rows: Vec<SharedRow>,
    ) -> Result<()> {
        let canonical = self.db.table(table)?.name.clone();
        if self.wal.is_some() {
            txn.pending.push(Record::ReplaceRows {
                table: canonical.clone(),
                rows: rows.iter().map(|r| r.to_vec()).collect(),
            });
        }
        let epoch = self.db.begin_uncommitted_epoch();
        txn.epochs.push(epoch);
        let t = self.db.table_mut(table)?;
        if t.begin_txn_rewrite(epoch) {
            txn.undo.push(UndoOp::RestoreShadow { table: canonical });
        }
        for row in rows {
            t.push_shared(row);
        }
        Ok(())
    }

    /// Append the transaction's staged records plus one commit marker to
    /// the WAL (group-commit append: the frames are not yet durable).
    /// Returns the commit LSN to pass to
    /// [`crate::wal::WalHandle::wait_durable`], or `None` when there is
    /// nothing to log (empty transaction or non-durable engine) and no wait
    /// is needed. On error nothing was logged — the caller must roll back.
    pub fn txn_append(&mut self, txn: &mut Transaction) -> Result<Option<u64>> {
        if txn.pending.is_empty() {
            return Ok(None);
        }
        let Some(wal) = &self.wal else {
            txn.pending.clear();
            return Ok(None);
        };
        let lsn = wal.append_txn(&std::mem::take(&mut txn.pending))?;
        Ok(Some(lsn))
    }

    /// Resolve a committed transaction: its epochs stop holding down the
    /// committed visibility floor, making its rows visible to snapshot
    /// readers, and the pre-rewrite shadows of its UPDATE / DELETE
    /// statements are dropped (the rewritten storage is committed now).
    /// Call only after the WAL append (and durability wait) succeeded.
    pub fn txn_publish(&mut self, txn: Transaction) {
        for op in &txn.undo {
            if let UndoOp::RestoreShadow { table } = op {
                if let Ok(t) = self.db.table_mut(table) {
                    t.publish_rewrite();
                }
            }
        }
        self.db.resolve_epochs(&txn.epochs);
        self.counters.add_txn_commit();
    }

    /// Roll the transaction back: replay the undo log in reverse, restoring
    /// the pre-transaction state, and resolve the epochs. Used by ROLLBACK
    /// and by every commit failure after statements already applied.
    pub fn txn_rollback(&mut self, txn: Transaction) {
        for op in txn.undo.into_iter().rev() {
            match op {
                UndoOp::TruncateBucket {
                    table,
                    key,
                    existed,
                    len,
                    marks,
                } => {
                    if let Ok(t) = self.db.table_mut(&table) {
                        t.truncate_bucket(key, existed, len, marks);
                    }
                }
                UndoOp::TruncateLoose { table, len, marks } => {
                    if let Ok(t) = self.db.table_mut(&table) {
                        t.truncate_loose(len, marks);
                    }
                }
                UndoOp::RestoreShadow { table } => {
                    if let Ok(t) = self.db.table_mut(&table) {
                        // Intermediate truncate undos may have run against
                        // the doomed rewritten storage above; the restore
                        // overwrites it wholesale with the committed
                        // pre-rewrite storage, watermarks and rewrite epoch
                        // included.
                        t.rollback_rewrite();
                    }
                }
            }
        }
        self.db.resolve_epochs(&txn.epochs);
        self.counters.add_txn_rollback();
    }

    fn compute_update_rows(
        &self,
        update: &mtsql::ast::Update,
        txn: &Transaction,
    ) -> Result<Vec<(bool, SharedRow)>> {
        let (schema, assignments, selection) = {
            let table = self.db.table(&update.table)?;
            (
                Schema::qualified(&table.name, &table.columns),
                update.assignments.clone(),
                update.selection.clone(),
            )
        };
        // Sub-queries in the WHERE clause or assignments read other tables;
        // pin them to the transaction's snapshot so they never observe
        // another open transaction's staged rows. (The rewritten table's
        // own rows are iterated directly below: the whole-table writer lock
        // guarantees no foreign uncommitted rows sit in it.)
        let mut executor = Executor::new(self);
        executor.pin_txn_snapshot(self.db.committed_epoch(), txn.own_epochs());
        let table = self.db.table(&update.table)?;
        let mut new_rows: Vec<(bool, SharedRow)> = Vec::new();
        for row in table.rows() {
            let env = Env {
                schema: &schema,
                row: &row,
                parent: None,
            };
            let matches = match &selection {
                Some(pred) => executor.eval(pred, &env)?.as_bool().unwrap_or(false),
                None => true,
            };
            if matches {
                let mut new_row = row.to_vec();
                for (col, expr) in &assignments {
                    let idx = table.column_index(col).ok_or_else(|| {
                        EngineError::new(format!("no column `{col}` in `{}`", update.table))
                    })?;
                    new_row[idx] = executor.eval(expr, &env)?;
                }
                new_rows.push((true, new_row.into()));
            } else {
                new_rows.push((false, row));
            }
        }
        Ok(new_rows)
    }

    fn compute_delete_rows(
        &self,
        delete: &mtsql::ast::Delete,
        txn: &Transaction,
    ) -> Result<(Vec<SharedRow>, i64)> {
        let (schema, selection) = {
            let table = self.db.table(&delete.table)?;
            (
                Schema::qualified(&table.name, &table.columns),
                delete.selection.clone(),
            )
        };
        // See `compute_update_rows` on why the predicate executor is pinned.
        let mut executor = Executor::new(self);
        executor.pin_txn_snapshot(self.db.committed_epoch(), txn.own_epochs());
        let table = self.db.table(&delete.table)?;
        let mut keep: Vec<SharedRow> = Vec::new();
        let mut removed = 0i64;
        for row in table.rows() {
            let env = Env {
                schema: &schema,
                row: &row,
                parent: None,
            };
            let matches = match &selection {
                Some(pred) => executor.eval(pred, &env)?.as_bool().unwrap_or(false),
                None => true,
            };
            if matches {
                removed += 1;
            } else {
                keep.push(row);
            }
        }
        Ok((keep, removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn engine_with_rows() -> Engine {
        let mut e = Engine::new(EngineConfig::default());
        e.create_table("t", &["ttid", "v"]);
        e.set_table_partition("t", "ttid").unwrap();
        e.insert_values(
            "t",
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(11)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        e
    }

    fn all_rows(e: &Engine) -> Vec<Vec<Value>> {
        e.query("SELECT ttid, v FROM t ORDER BY ttid, v")
            .unwrap()
            .rows
    }

    #[test]
    fn rollback_of_inserts_truncates_back() {
        let mut e = engine_with_rows();
        let before = all_rows(&e);
        let epoch_before = e.current_epoch();
        let mut txn = e.begin_transaction();
        let stmt = mtsql::parse_statement("INSERT INTO t VALUES (1, 12), (3, 30)").unwrap();
        e.txn_execute_statement(&mut txn, &stmt).unwrap();
        assert_eq!(all_rows(&e).len(), 5, "the transaction sees its writes");
        assert_eq!(e.committed_epoch(), epoch_before, "floor held down");
        e.txn_rollback(txn);
        assert_eq!(all_rows(&e), before);
        assert_eq!(e.committed_epoch(), e.current_epoch());
        // The ttid=3 bucket created by the rolled-back insert is gone.
        assert_eq!(e.database().table("t").unwrap().partition_count(), 2);
    }

    #[test]
    fn rollback_of_update_restores_pre_image() {
        let mut e = engine_with_rows();
        let before = all_rows(&e);
        let mut txn = e.begin_transaction();
        let ins = mtsql::parse_statement("INSERT INTO t VALUES (2, 21)").unwrap();
        let upd = mtsql::parse_statement("UPDATE t SET v = v + 100 WHERE ttid = 1").unwrap();
        e.txn_execute_statement(&mut txn, &ins).unwrap();
        e.txn_execute_statement(&mut txn, &upd).unwrap();
        let mid = all_rows(&e);
        assert!(mid.contains(&vec![Value::Int(1), Value::Int(110)]));
        assert!(mid.contains(&vec![Value::Int(2), Value::Int(21)]));
        e.txn_rollback(txn);
        assert_eq!(all_rows(&e), before);
    }

    #[test]
    fn rollback_of_delete_restores_rows() {
        let mut e = engine_with_rows();
        let before = all_rows(&e);
        let mut txn = e.begin_transaction();
        let del = mtsql::parse_statement("DELETE FROM t WHERE ttid = 1").unwrap();
        let rs = e.txn_execute_statement(&mut txn, &del).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(2)]]);
        assert_eq!(all_rows(&e).len(), 1);
        e.txn_rollback(txn);
        assert_eq!(all_rows(&e), before);
    }

    #[test]
    fn publish_lifts_the_committed_floor() {
        let mut e = engine_with_rows();
        let mut txn = e.begin_transaction();
        let stmt = mtsql::parse_statement("INSERT INTO t VALUES (1, 12)").unwrap();
        e.txn_execute_statement(&mut txn, &stmt).unwrap();
        assert!(e.committed_epoch() < e.current_epoch());
        assert!(e.txn_append(&mut txn).unwrap().is_none(), "not durable");
        e.txn_publish(txn);
        assert_eq!(e.committed_epoch(), e.current_epoch());
        assert_eq!(all_rows(&e).len(), 4);
        let stats = e.stats();
        assert_eq!(stats.txn_commits, 1);
        assert_eq!(stats.txn_rollbacks, 0);
    }

    #[test]
    fn ddl_is_rejected_inside_a_transaction() {
        let mut e = engine_with_rows();
        let mut txn = e.begin_transaction();
        let stmt = mtsql::parse_statement("DROP TABLE t").unwrap();
        let err = e.txn_execute_statement(&mut txn, &stmt).unwrap_err();
        assert!(err.message.contains("inside a transaction"), "{err}");
        e.txn_rollback(txn);
    }

    #[test]
    fn committed_floor_readers_do_not_see_an_open_rewrite() {
        // The prepared-statement read path pins the committed floor while
        // any transaction is open. An UPDATE staged inside a transaction
        // rewrites the table's storage; the floor reader must be served the
        // pre-update rows from the rewrite shadow — not the staged rewrite,
        // and not an empty result.
        let mut e = engine_with_rows();
        let before = all_rows(&e);
        let q = mtsql::parse_query("SELECT ttid, v FROM t ORDER BY ttid, v").unwrap();
        let plan = e.plan_query(&q).unwrap();
        let mut txn = e.begin_transaction();
        let upd = mtsql::parse_statement("UPDATE t SET v = v + 100 WHERE ttid = 1").unwrap();
        e.txn_execute_statement(&mut txn, &upd).unwrap();
        assert_eq!(e.execute_plan(&plan, &[]).unwrap().rows, before);
        e.txn_publish(txn);
        let after = e.execute_plan(&plan, &[]).unwrap().rows;
        assert!(after.contains(&vec![Value::Int(1), Value::Int(110)]));
        assert!(!after.contains(&vec![Value::Int(1), Value::Int(10)]));
    }

    #[test]
    fn committed_floor_readers_survive_a_rolled_back_delete() {
        let mut e = engine_with_rows();
        let before = all_rows(&e);
        let q = mtsql::parse_query("SELECT ttid, v FROM t ORDER BY ttid, v").unwrap();
        let plan = e.plan_query(&q).unwrap();
        let mut txn = e.begin_transaction();
        let del = mtsql::parse_statement("DELETE FROM t").unwrap();
        e.txn_execute_statement(&mut txn, &del).unwrap();
        // Mid-transaction: the table's live storage is empty, the shadow
        // still serves the committed rows.
        assert_eq!(e.execute_plan(&plan, &[]).unwrap().rows, before);
        e.txn_rollback(txn);
        assert_eq!(e.execute_plan(&plan, &[]).unwrap().rows, before);
    }

    #[test]
    fn rollback_of_a_rewrite_restores_pinned_snapshots() {
        // A cursor pinned before the transaction opened must survive the
        // transaction aborting: rollback restores the pre-rewrite storage,
        // watermarks *and* rewrite epoch, so `snapshot_servable` holds for
        // the old floor again (it was permanently broken before the shadow
        // mechanism — the epoch stayed bumped and the watermarks were gone).
        let mut e = engine_with_rows();
        let pinned = e.committed_epoch();
        let mut txn = e.begin_transaction();
        let upd = mtsql::parse_statement("UPDATE t SET v = 0 WHERE ttid = 1").unwrap();
        e.txn_execute_statement(&mut txn, &upd).unwrap();
        {
            let t = e.database().table("t").unwrap();
            assert!(t.has_rewrite_shadow());
            assert!(t.snapshot_servable(pinned), "served from the shadow");
        }
        e.txn_rollback(txn);
        let t = e.database().table("t").unwrap();
        assert!(!t.has_rewrite_shadow());
        assert!(t.rewrite_epoch() <= pinned, "rewrite epoch restored");
        assert!(t.snapshot_servable(pinned));
    }

    #[test]
    fn a_transaction_reads_its_own_writes_but_not_anothers() {
        // Two transactions staging inserts into different buckets of the
        // same table: each in-transaction read sees its own staged rows on
        // top of the committed floor, and never the other's.
        let mut e = engine_with_rows();
        let mut t1 = e.begin_transaction();
        let mut t2 = e.begin_transaction();
        let i1 = mtsql::parse_statement("INSERT INTO t VALUES (1, 12)").unwrap();
        let i2 = mtsql::parse_statement("INSERT INTO t VALUES (2, 21)").unwrap();
        e.txn_execute_statement(&mut t1, &i1).unwrap();
        e.txn_execute_statement(&mut t2, &i2).unwrap();
        let q = mtsql::parse_query("SELECT ttid, v FROM t ORDER BY ttid, v").unwrap();
        let r1 = e.execute_query_txn(&q, &t1).unwrap().rows;
        assert!(r1.contains(&vec![Value::Int(1), Value::Int(12)]));
        assert!(!r1.contains(&vec![Value::Int(2), Value::Int(21)]));
        let r2 = e.execute_query_txn(&q, &t2).unwrap().rows;
        assert!(r2.contains(&vec![Value::Int(2), Value::Int(21)]));
        assert!(!r2.contains(&vec![Value::Int(1), Value::Int(12)]));
        e.txn_rollback(t1);
        e.txn_publish(t2);
        let final_rows = all_rows(&e);
        assert!(final_rows.contains(&vec![Value::Int(2), Value::Int(21)]));
        assert!(!final_rows.contains(&vec![Value::Int(1), Value::Int(12)]));
    }
}

//! Multi-statement transactions: staged WAL records plus in-memory undo.
//!
//! A [`Transaction`] collects the WAL records of every DML statement
//! executed under it ([`Engine::txn_execute_statement`]) while applying the
//! statements to the in-memory tables immediately — each under its own
//! *uncommitted* epoch ([`crate::table::Database::begin_uncommitted_epoch`]),
//! so snapshot readers outside the transaction (pinned to the committed
//! epoch) never observe the staged rows. Alongside every statement the
//! transaction records the inverse operation:
//!
//! * appends (INSERT) undo as **truncations** — the pre-statement length and
//!   watermark count of every touched bucket (buckets are append-only, so
//!   dropping the tail restores them bit-for-bit);
//! * rewrites (UPDATE / DELETE) undo as a **full pre-image** — the engine
//!   implements both as a row-set rewrite, so the undo is the row set it
//!   replaced.
//!
//! `COMMIT` appends all staged records plus one commit marker to the WAL as
//! a single log transaction ([`Engine::txn_append`]); after the caller has
//! waited for durability (outside the engine lock — see
//! [`crate::wal::WalHandle::wait_durable`]) it publishes the epochs
//! ([`Engine::txn_publish`]). `ROLLBACK` — or a failed append/flush —
//! replays the undo log in reverse ([`Engine::txn_rollback`]), restoring
//! the pre-transaction state; nothing was logged, so recovery agrees.
//!
//! Physical layout transitions are deliberately *not* undone: a dictionary
//! demotion triggered by rows that are later rolled back stays demoted,
//! matching the recovery convention that layout is never part of the
//! durable state (results are layout-independent).

use std::collections::BTreeSet;

use mtsql::ast::Statement;

use crate::error::{err, EngineError, Result};
use crate::exec::{Env, Executor};
use crate::schema::Schema;
use crate::table::{Row, SharedRow};
use crate::wal::Record;
use crate::{Engine, ResultSet, Value};

/// The inverse of one transactional statement, replayed in reverse order on
/// rollback.
#[derive(Debug)]
enum UndoOp {
    /// Undo appends into one partition bucket: truncate back to the
    /// pre-statement length and watermark count (`existed == false` removes
    /// the bucket — the statement created it).
    TruncateBucket {
        table: String,
        key: i64,
        existed: bool,
        len: u32,
        marks: u32,
    },
    /// Undo appends to the loose rows, mirroring `TruncateBucket`.
    TruncateLoose { table: String, len: u32, marks: u32 },
    /// Undo a row-set rewrite: discard the current rows and re-push the
    /// pre-statement image (at epoch 0, visible to every snapshot — the
    /// restored rows *are* the committed state).
    RestoreRows { table: String, rows: Vec<SharedRow> },
}

/// An open multi-statement transaction (see the module docs). Created by
/// [`Engine::begin_transaction`]; resolved by exactly one of
/// [`Engine::txn_publish`] or [`Engine::txn_rollback`].
#[derive(Debug)]
pub struct Transaction {
    id: u64,
    /// WAL records staged for the commit append, in statement order.
    pending: Vec<Record>,
    /// Undo log, in execution order (replayed in reverse).
    undo: Vec<UndoOp>,
    /// Uncommitted epochs allocated by this transaction's statements.
    epochs: Vec<u64>,
    /// DML statements executed so far.
    statements: u64,
}

impl Transaction {
    /// Unique id of this transaction on its engine — also used as the lock
    /// owner for [`crate::lock::LockManager`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// DML statements executed under this transaction so far.
    pub fn statements(&self) -> u64 {
        self.statements
    }

    /// `true` when no statement staged anything to log.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl Engine {
    /// Open a transaction. The engine does not track it — the caller owns
    /// the [`Transaction`] and must resolve it via [`Engine::txn_publish`]
    /// or [`Engine::txn_rollback`] (the middleware's session does this).
    pub fn begin_transaction(&mut self) -> Transaction {
        self.txn_seq += 1;
        Transaction {
            id: self.txn_seq,
            pending: Vec::new(),
            undo: Vec::new(),
            epochs: Vec::new(),
            statements: 0,
        }
    }

    /// Execute one statement under an open transaction. DML stages its WAL
    /// record and applies in memory under an uncommitted epoch; SELECT reads
    /// the live state (the transaction sees its own writes). Everything else
    /// — DDL, DCL — is rejected: those statements commit their own WAL
    /// transaction and cannot be staged or rolled back here.
    pub fn txn_execute_statement(
        &mut self,
        txn: &mut Transaction,
        stmt: &Statement,
    ) -> Result<ResultSet> {
        match stmt {
            Statement::Select(q) => self.execute_query(q),
            Statement::Explain(q) => self.explain_query(q),
            Statement::Insert(insert) => {
                let rows = self.build_insert_rows(insert)?;
                let count = rows.len() as i64;
                self.txn_insert_rows(txn, &insert.table, rows)?;
                txn.statements += 1;
                Ok(ResultSet {
                    columns: vec!["rows_inserted".to_string()],
                    rows: vec![vec![Value::Int(count)]],
                })
            }
            Statement::Update(update) => {
                let new_rows = self.compute_update_rows(update)?;
                let changed = new_rows.iter().filter(|(m, _)| *m).count() as i64;
                let rows: Vec<SharedRow> = new_rows.into_iter().map(|(_, r)| r).collect();
                self.txn_replace_rows(txn, &update.table, rows)?;
                txn.statements += 1;
                Ok(ResultSet {
                    columns: vec!["rows_updated".to_string()],
                    rows: vec![vec![Value::Int(changed)]],
                })
            }
            Statement::Delete(delete) => {
                let (keep, removed) = self.compute_delete_rows(delete)?;
                self.txn_replace_rows(txn, &delete.table, keep)?;
                txn.statements += 1;
                Ok(ResultSet {
                    columns: vec!["rows_deleted".to_string()],
                    rows: vec![vec![Value::Int(removed)]],
                })
            }
            _ => err(
                "only SELECT, INSERT, UPDATE and DELETE are allowed inside a transaction \
                 (DDL and DCL statements commit on their own)",
            ),
        }
    }

    /// Stage and apply one INSERT batch under `txn` (the transactional
    /// counterpart of [`Engine::insert_values`]). The rows staged for the
    /// WAL are exactly the rows applied.
    pub fn txn_insert_rows(
        &mut self,
        txn: &mut Transaction,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<()> {
        // Validate arity up front so an invalid batch stages nothing.
        let width = self.db.table(table)?.columns.len();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return err(format!(
                "row arity {} does not match table `{table}` with {width} columns",
                bad.len(),
            ));
        }
        // Record the pre-statement tail of every bucket the batch appends
        // to; the undo truncates back to it.
        let t = self.db.table(table)?;
        let canonical = t.name.clone();
        let mut keys: BTreeSet<i64> = BTreeSet::new();
        let mut touches_loose = false;
        match t.partition_column() {
            Some(idx) => {
                for row in &rows {
                    match row.get(idx) {
                        Some(Value::Int(k)) => {
                            keys.insert(*k);
                        }
                        _ => touches_loose = true,
                    }
                }
            }
            None => touches_loose = true,
        }
        for key in keys {
            let (existed, len, marks) = match t.bucket_state(key) {
                Some((len, marks)) => (true, len, marks),
                None => (false, 0, 0),
            };
            txn.undo.push(UndoOp::TruncateBucket {
                table: canonical.clone(),
                key,
                existed,
                len,
                marks,
            });
        }
        if touches_loose {
            let (len, marks) = t.loose_state();
            txn.undo.push(UndoOp::TruncateLoose {
                table: canonical.clone(),
                len,
                marks,
            });
        }
        if self.wal.is_some() {
            txn.pending.push(Record::InsertRows {
                table: canonical,
                rows: rows.clone(),
            });
        }
        let epoch = self.db.begin_uncommitted_epoch();
        txn.epochs.push(epoch);
        let t = self.db.table_mut(table)?;
        t.begin_write(epoch);
        for row in rows {
            t.push_row(row)?;
        }
        Ok(())
    }

    /// Stage and apply one full row-set rewrite (UPDATE / DELETE) under
    /// `txn`, recording the replaced rows as the undo image.
    fn txn_replace_rows(
        &mut self,
        txn: &mut Transaction,
        table: &str,
        rows: Vec<SharedRow>,
    ) -> Result<()> {
        let t = self.db.table(table)?;
        let canonical = t.name.clone();
        let pre_image: Vec<SharedRow> = t.rows().collect();
        txn.undo.push(UndoOp::RestoreRows {
            table: canonical.clone(),
            rows: pre_image,
        });
        if self.wal.is_some() {
            txn.pending.push(Record::ReplaceRows {
                table: canonical,
                rows: rows.iter().map(|r| r.to_vec()).collect(),
            });
        }
        let epoch = self.db.begin_uncommitted_epoch();
        txn.epochs.push(epoch);
        let t = self.db.table_mut(table)?;
        t.begin_write(epoch);
        t.take_rows();
        for row in rows {
            t.push_shared(row);
        }
        Ok(())
    }

    /// Append the transaction's staged records plus one commit marker to
    /// the WAL (group-commit append: the frames are not yet durable).
    /// Returns the commit LSN to pass to
    /// [`crate::wal::WalHandle::wait_durable`], or `None` when there is
    /// nothing to log (empty transaction or non-durable engine) and no wait
    /// is needed. On error nothing was logged — the caller must roll back.
    pub fn txn_append(&mut self, txn: &mut Transaction) -> Result<Option<u64>> {
        if txn.pending.is_empty() {
            return Ok(None);
        }
        let Some(wal) = &self.wal else {
            txn.pending.clear();
            return Ok(None);
        };
        let lsn = wal.append_txn(&std::mem::take(&mut txn.pending))?;
        Ok(Some(lsn))
    }

    /// Resolve a committed transaction: its epochs stop holding down the
    /// committed visibility floor, making its rows visible to snapshot
    /// readers. Call only after the WAL append (and durability wait)
    /// succeeded.
    pub fn txn_publish(&mut self, txn: Transaction) {
        self.db.resolve_epochs(&txn.epochs);
        self.counters.add_txn_commit();
    }

    /// Roll the transaction back: replay the undo log in reverse, restoring
    /// the pre-transaction state, and resolve the epochs. Used by ROLLBACK
    /// and by every commit failure after statements already applied.
    pub fn txn_rollback(&mut self, txn: Transaction) {
        for op in txn.undo.into_iter().rev() {
            match op {
                UndoOp::TruncateBucket {
                    table,
                    key,
                    existed,
                    len,
                    marks,
                } => {
                    if let Ok(t) = self.db.table_mut(&table) {
                        t.truncate_bucket(key, existed, len, marks);
                    }
                }
                UndoOp::TruncateLoose { table, len, marks } => {
                    if let Ok(t) = self.db.table_mut(&table) {
                        t.truncate_loose(len, marks);
                    }
                }
                UndoOp::RestoreRows { table, rows } => {
                    if let Ok(t) = self.db.table_mut(&table) {
                        // Epoch 0: the restored rows are the committed state,
                        // visible to every snapshot. `begin_write` *before*
                        // `take_rows` keeps the rewrite epoch where the
                        // statement already put it.
                        t.begin_write(0);
                        t.take_rows();
                        for row in rows {
                            t.push_shared(row);
                        }
                    }
                }
            }
        }
        self.db.resolve_epochs(&txn.epochs);
        self.counters.add_txn_rollback();
    }

    fn compute_update_rows(&self, update: &mtsql::ast::Update) -> Result<Vec<(bool, SharedRow)>> {
        let (schema, assignments, selection) = {
            let table = self.db.table(&update.table)?;
            (
                Schema::qualified(&table.name, &table.columns),
                update.assignments.clone(),
                update.selection.clone(),
            )
        };
        let executor = Executor::new(self);
        let table = self.db.table(&update.table)?;
        let mut new_rows: Vec<(bool, SharedRow)> = Vec::new();
        for row in table.rows() {
            let env = Env {
                schema: &schema,
                row: &row,
                parent: None,
            };
            let matches = match &selection {
                Some(pred) => executor.eval(pred, &env)?.as_bool().unwrap_or(false),
                None => true,
            };
            if matches {
                let mut new_row = row.to_vec();
                for (col, expr) in &assignments {
                    let idx = table.column_index(col).ok_or_else(|| {
                        EngineError::new(format!("no column `{col}` in `{}`", update.table))
                    })?;
                    new_row[idx] = executor.eval(expr, &env)?;
                }
                new_rows.push((true, new_row.into()));
            } else {
                new_rows.push((false, row));
            }
        }
        Ok(new_rows)
    }

    fn compute_delete_rows(&self, delete: &mtsql::ast::Delete) -> Result<(Vec<SharedRow>, i64)> {
        let (schema, selection) = {
            let table = self.db.table(&delete.table)?;
            (
                Schema::qualified(&table.name, &table.columns),
                delete.selection.clone(),
            )
        };
        let executor = Executor::new(self);
        let table = self.db.table(&delete.table)?;
        let mut keep: Vec<SharedRow> = Vec::new();
        let mut removed = 0i64;
        for row in table.rows() {
            let env = Env {
                schema: &schema,
                row: &row,
                parent: None,
            };
            let matches = match &selection {
                Some(pred) => executor.eval(pred, &env)?.as_bool().unwrap_or(false),
                None => true,
            };
            if matches {
                removed += 1;
            } else {
                keep.push(row);
            }
        }
        Ok((keep, removed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;

    fn engine_with_rows() -> Engine {
        let mut e = Engine::new(EngineConfig::default());
        e.create_table("t", &["ttid", "v"]);
        e.set_table_partition("t", "ttid").unwrap();
        e.insert_values(
            "t",
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(11)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        )
        .unwrap();
        e
    }

    fn all_rows(e: &Engine) -> Vec<Vec<Value>> {
        e.query("SELECT ttid, v FROM t ORDER BY ttid, v")
            .unwrap()
            .rows
    }

    #[test]
    fn rollback_of_inserts_truncates_back() {
        let mut e = engine_with_rows();
        let before = all_rows(&e);
        let epoch_before = e.current_epoch();
        let mut txn = e.begin_transaction();
        let stmt = mtsql::parse_statement("INSERT INTO t VALUES (1, 12), (3, 30)").unwrap();
        e.txn_execute_statement(&mut txn, &stmt).unwrap();
        assert_eq!(all_rows(&e).len(), 5, "the transaction sees its writes");
        assert_eq!(e.committed_epoch(), epoch_before, "floor held down");
        e.txn_rollback(txn);
        assert_eq!(all_rows(&e), before);
        assert_eq!(e.committed_epoch(), e.current_epoch());
        // The ttid=3 bucket created by the rolled-back insert is gone.
        assert_eq!(e.database().table("t").unwrap().partition_count(), 2);
    }

    #[test]
    fn rollback_of_update_restores_pre_image() {
        let mut e = engine_with_rows();
        let before = all_rows(&e);
        let mut txn = e.begin_transaction();
        let ins = mtsql::parse_statement("INSERT INTO t VALUES (2, 21)").unwrap();
        let upd = mtsql::parse_statement("UPDATE t SET v = v + 100 WHERE ttid = 1").unwrap();
        e.txn_execute_statement(&mut txn, &ins).unwrap();
        e.txn_execute_statement(&mut txn, &upd).unwrap();
        let mid = all_rows(&e);
        assert!(mid.contains(&vec![Value::Int(1), Value::Int(110)]));
        assert!(mid.contains(&vec![Value::Int(2), Value::Int(21)]));
        e.txn_rollback(txn);
        assert_eq!(all_rows(&e), before);
    }

    #[test]
    fn rollback_of_delete_restores_rows() {
        let mut e = engine_with_rows();
        let before = all_rows(&e);
        let mut txn = e.begin_transaction();
        let del = mtsql::parse_statement("DELETE FROM t WHERE ttid = 1").unwrap();
        let rs = e.txn_execute_statement(&mut txn, &del).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(2)]]);
        assert_eq!(all_rows(&e).len(), 1);
        e.txn_rollback(txn);
        assert_eq!(all_rows(&e), before);
    }

    #[test]
    fn publish_lifts_the_committed_floor() {
        let mut e = engine_with_rows();
        let mut txn = e.begin_transaction();
        let stmt = mtsql::parse_statement("INSERT INTO t VALUES (1, 12)").unwrap();
        e.txn_execute_statement(&mut txn, &stmt).unwrap();
        assert!(e.committed_epoch() < e.current_epoch());
        assert!(e.txn_append(&mut txn).unwrap().is_none(), "not durable");
        e.txn_publish(txn);
        assert_eq!(e.committed_epoch(), e.current_epoch());
        assert_eq!(all_rows(&e).len(), 4);
        let stats = e.stats();
        assert_eq!(stats.txn_commits, 1);
        assert_eq!(stats.txn_rollbacks, 0);
    }

    #[test]
    fn ddl_is_rejected_inside_a_transaction() {
        let mut e = engine_with_rows();
        let mut txn = e.begin_transaction();
        let stmt = mtsql::parse_statement("DROP TABLE t").unwrap();
        let err = e.txn_execute_statement(&mut txn, &stmt).unwrap_err();
        assert!(err.message.contains("inside a transaction"), "{err}");
        e.txn_rollback(txn);
    }
}

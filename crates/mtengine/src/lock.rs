//! Writer locks for multi-statement transactions.
//!
//! The PR 6 writer path serialized *every* mutation behind the engine's
//! `RwLock`, so two tenants inserting into the same shared table excluded
//! each other for the whole statement — including the fsync. With group
//! commit the fsync moved out of the engine lock, which opens a window
//! where two transactions could interleave statements on the same rows.
//! [`LockManager`] closes it at the granularity the MTBase layout actually
//! writes at: a transaction takes [`LockTarget::Bucket`] locks keyed by
//! `(table, ttid)` for inserts into partition buckets (two tenants' inserts
//! into the same shared table get *different* locks and proceed in
//! parallel), [`LockTarget::Loose`] for rows outside any bucket, and
//! [`LockTarget::Whole`] for statements that rewrite the whole row set
//! (UPDATE / DELETE) or change the schema.
//!
//! Locks are owned by a transaction id, reentrant per owner, granted
//! all-or-nothing per [`LockManager::acquire`] call, and released together
//! by [`LockManager::release_all`] at commit or rollback. Acquisition that
//! cannot make progress (a conflicting owner never releases — in practice a
//! deadlock between two open transactions) fails with a typed error after a
//! bounded wait instead of hanging the connection.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::error::{EngineError, Result};

/// What a writer locks inside one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockTarget {
    /// The whole table: conflicts with every other lock on the table.
    /// Taken by UPDATE / DELETE (full row-set rewrites) and DDL.
    Whole,
    /// One partition bucket (keyed by the partition-column value, i.e. the
    /// tenant id under the MTBase layout): conflicts with [`LockTarget::Whole`]
    /// and with the same bucket only.
    Bucket(i64),
    /// The loose (unbucketed) rows: conflicts with [`LockTarget::Whole`] and
    /// with other loose-row writers only.
    Loose,
}

/// Lock table for one SQL table (keyed case-insensitively by the manager).
#[derive(Debug, Default)]
struct TableLocks {
    whole: Option<u64>,
    buckets: BTreeMap<i64, u64>,
    loose: Option<u64>,
}

impl TableLocks {
    fn is_empty(&self) -> bool {
        self.whole.is_none() && self.buckets.is_empty() && self.loose.is_none()
    }

    /// Can `owner` take `target` right now? (Reentrant: its own holdings
    /// never conflict.)
    fn available(&self, owner: u64, target: LockTarget) -> bool {
        let free = |held: Option<u64>| held.is_none_or(|h| h == owner);
        match target {
            LockTarget::Whole => {
                free(self.whole) && free(self.loose) && self.buckets.values().all(|&h| h == owner)
            }
            LockTarget::Bucket(key) => free(self.whole) && free(self.buckets.get(&key).copied()),
            LockTarget::Loose => free(self.whole) && free(self.loose),
        }
    }

    fn grant(&mut self, owner: u64, target: LockTarget) {
        match target {
            LockTarget::Whole => self.whole = Some(owner),
            LockTarget::Bucket(key) => {
                self.buckets.insert(key, owner);
            }
            LockTarget::Loose => self.loose = Some(owner),
        }
    }

    fn release_owner(&mut self, owner: u64) {
        if self.whole == Some(owner) {
            self.whole = None;
        }
        if self.loose == Some(owner) {
            self.loose = None;
        }
        self.buckets.retain(|_, h| *h != owner);
    }
}

/// How long one blocked acquisition waits before giving up (the bound is
/// `WAIT_SLICE × MAX_WAITS`; a genuine deadlock between two transactions
/// resolves as a typed error on one side instead of two hung connections).
const WAIT_SLICE: Duration = Duration::from_millis(50);
const MAX_WAITS: u32 = 200;

/// Row/bucket-level writer locks shared by every connection of one server
/// (see the module docs).
#[derive(Debug, Default)]
pub struct LockManager {
    tables: Mutex<BTreeMap<String, TableLocks>>,
    released: Condvar,
}

impl LockManager {
    /// An empty lock manager.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock_tables(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, TableLocks>> {
        self.tables.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Take every target on `table` for `owner`, all-or-nothing: if any
    /// target conflicts with another owner the call blocks until the holder
    /// releases, and fails with a typed error after a bounded wait (a
    /// deadlock between two open transactions must not hang both
    /// connections forever).
    pub fn acquire(&self, owner: u64, table: &str, targets: &[LockTarget]) -> Result<()> {
        let key = table.to_ascii_lowercase();
        let mut tables = self.lock_tables();
        let mut waits = 0u32;
        loop {
            let locks = tables.entry(key.clone()).or_default();
            if targets.iter().all(|&t| locks.available(owner, t)) {
                for &t in targets {
                    locks.grant(owner, t);
                }
                return Ok(());
            }
            if waits >= MAX_WAITS {
                return Err(EngineError::new(format!(
                    "lock wait on table `{table}` timed out (possible deadlock between open transactions)"
                )));
            }
            waits += 1;
            let (guard, _) = self
                .released
                .wait_timeout(tables, WAIT_SLICE)
                .unwrap_or_else(|e| e.into_inner());
            tables = guard;
        }
    }

    /// Release every lock `owner` holds, on every table, and wake blocked
    /// acquirers. Called once at commit or rollback.
    pub fn release_all(&self, owner: u64) {
        let mut tables = self.lock_tables();
        tables.retain(|_, locks| {
            locks.release_owner(owner);
            !locks.is_empty()
        });
        self.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_locks_of_different_tenants_do_not_conflict() {
        let lm = LockManager::new();
        lm.acquire(1, "lineitem", &[LockTarget::Bucket(1)]).unwrap();
        lm.acquire(2, "lineitem", &[LockTarget::Bucket(2)]).unwrap();
        lm.acquire(3, "Lineitem", &[LockTarget::Loose]).unwrap();
        lm.release_all(1);
        lm.release_all(2);
        lm.release_all(3);
    }

    #[test]
    fn locks_are_reentrant_per_owner() {
        let lm = LockManager::new();
        lm.acquire(7, "t", &[LockTarget::Bucket(1), LockTarget::Loose])
            .unwrap();
        lm.acquire(7, "t", &[LockTarget::Bucket(1)]).unwrap();
        lm.acquire(7, "t", &[LockTarget::Whole]).unwrap();
        lm.release_all(7);
        lm.acquire(8, "t", &[LockTarget::Whole]).unwrap();
    }

    #[test]
    fn whole_table_lock_excludes_buckets_until_released() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, "t", &[LockTarget::Whole]).unwrap();
        let contender = {
            let lm = Arc::clone(&lm);
            std::thread::spawn(move || lm.acquire(2, "t", &[LockTarget::Bucket(5)]))
        };
        // The contender parks; releasing owner 1 lets it through.
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(1);
        contender.join().unwrap().unwrap();
        lm.release_all(2);
    }

    #[test]
    fn conflict_rules_cover_every_target_pair() {
        // The timeout path would take WAIT_SLICE × MAX_WAITS to observe, so
        // the conflict matrix is exercised directly on the lock table.
        let mut locks = TableLocks::default();
        locks.grant(1, LockTarget::Whole);
        assert!(!locks.available(2, LockTarget::Bucket(1)));
        assert!(!locks.available(2, LockTarget::Loose));
        assert!(!locks.available(2, LockTarget::Whole));
        assert!(locks.available(1, LockTarget::Bucket(1)));
        locks.release_owner(1);
        assert!(locks.available(2, LockTarget::Whole));
    }
}

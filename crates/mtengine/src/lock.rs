//! Writer locks for multi-statement transactions.
//!
//! The PR 6 writer path serialized *every* mutation behind the engine's
//! `RwLock`, so two tenants inserting into the same shared table excluded
//! each other for the whole statement — including the fsync. With group
//! commit the fsync moved out of the engine lock, which opens a window
//! where two transactions could interleave statements on the same rows.
//! [`LockManager`] closes it at the granularity the MTBase layout actually
//! writes at: a transaction takes [`LockTarget::Bucket`] locks keyed by
//! `(table, ttid)` for inserts into partition buckets (two tenants' inserts
//! into the same shared table get *different* locks and proceed in
//! parallel), [`LockTarget::Loose`] for rows outside any bucket, and
//! [`LockTarget::Whole`] for statements that rewrite the whole row set
//! (UPDATE / DELETE) or change the schema.
//!
//! Locks are owned by a transaction id, reentrant per owner, granted
//! all-or-nothing per [`LockManager::acquire`] call, and released together
//! by [`LockManager::release_all`] at commit or rollback.
//!
//! # Deadlocks vs slow holders
//!
//! A blocked acquirer publishes what it waits for in a *waits-for* map that
//! lives under the same mutex as the lock tables, so every parked owner's
//! pending request is visible to every other acquirer. Before parking (and
//! again on every wake-up) the acquirer walks the graph `owner → holders
//! blocking its request → requests those holders are parked on → ...`; if
//! the walk reaches the acquirer itself, the wait can never resolve and the
//! acquirer loses immediately with [`EngineErrorKind::Deadlock`] — no
//! multi-second heuristic wait. Because detection and granting both run
//! under the one mutex, exactly one member of a cycle sees it (the check
//! removes the victim's waits-for entry in the same critical section, which
//! breaks the cycle for everyone else).
//!
//! A conflict that is *not* a cycle — the holder is just slow — waits up to
//! the manager's budget ([`LockManager::with_timeout`]) and then fails with
//! the distinct [`EngineErrorKind::LockTimeout`], so clients can tell
//! "retry the transaction" (deadlock victim) from "the system is stalled".

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::error::{EngineError, EngineErrorKind, Result};

/// What a writer locks inside one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockTarget {
    /// The whole table: conflicts with every other lock on the table.
    /// Taken by UPDATE / DELETE (full row-set rewrites) and DDL.
    Whole,
    /// One partition bucket (keyed by the partition-column value, i.e. the
    /// tenant id under the MTBase layout): conflicts with [`LockTarget::Whole`]
    /// and with the same bucket only.
    Bucket(i64),
    /// The loose (unbucketed) rows: conflicts with [`LockTarget::Whole`] and
    /// with other loose-row writers only.
    Loose,
}

/// Lock table for one SQL table (keyed case-insensitively by the manager).
#[derive(Debug, Default)]
struct TableLocks {
    whole: Option<u64>,
    buckets: BTreeMap<i64, u64>,
    loose: Option<u64>,
}

impl TableLocks {
    fn is_empty(&self) -> bool {
        self.whole.is_none() && self.buckets.is_empty() && self.loose.is_none()
    }

    /// Can `owner` take `target` right now? (Reentrant: its own holdings
    /// never conflict.)
    fn available(&self, owner: u64, target: LockTarget) -> bool {
        let free = |held: Option<u64>| held.is_none_or(|h| h == owner);
        match target {
            LockTarget::Whole => {
                free(self.whole) && free(self.loose) && self.buckets.values().all(|&h| h == owner)
            }
            LockTarget::Bucket(key) => free(self.whole) && free(self.buckets.get(&key).copied()),
            LockTarget::Loose => free(self.whole) && free(self.loose),
        }
    }

    /// Every *other* owner whose holdings conflict with `owner` taking
    /// `target` — the out-edges of the waits-for graph for one target.
    fn blockers(&self, owner: u64, target: LockTarget, out: &mut BTreeSet<u64>) {
        let mut push = |held: Option<u64>| {
            if let Some(h) = held {
                if h != owner {
                    out.insert(h);
                }
            }
        };
        match target {
            LockTarget::Whole => {
                push(self.whole);
                push(self.loose);
                for &h in self.buckets.values() {
                    if h != owner {
                        out.insert(h);
                    }
                }
            }
            LockTarget::Bucket(key) => {
                push(self.whole);
                push(self.buckets.get(&key).copied());
            }
            LockTarget::Loose => {
                push(self.whole);
                push(self.loose);
            }
        }
    }

    fn grant(&mut self, owner: u64, target: LockTarget) {
        match target {
            LockTarget::Whole => self.whole = Some(owner),
            LockTarget::Bucket(key) => {
                self.buckets.insert(key, owner);
            }
            LockTarget::Loose => self.loose = Some(owner),
        }
    }

    fn release_owner(&mut self, owner: u64) {
        if self.whole == Some(owner) {
            self.whole = None;
        }
        if self.loose == Some(owner) {
            self.loose = None;
        }
        self.buckets.retain(|_, h| *h != owner);
    }
}

/// Granted locks plus the waits-for map, guarded by one mutex so cycle
/// detection always sees a consistent picture of both.
#[derive(Debug, Default)]
struct LockState {
    tables: BTreeMap<String, TableLocks>,
    /// `owner → (table key, requested targets)` for every parked acquirer.
    waiting: BTreeMap<u64, (String, Vec<LockTarget>)>,
}

impl LockState {
    /// Owners currently blocking `owner`'s request on `key`.
    fn blockers_of(&self, owner: u64, key: &str, targets: &[LockTarget]) -> BTreeSet<u64> {
        let mut out = BTreeSet::new();
        if let Some(locks) = self.tables.get(key) {
            for &t in targets {
                locks.blockers(owner, t, &mut out);
            }
        }
        out
    }

    /// Does any waits-for path starting from `blockers` lead back to
    /// `start`? Iterative DFS; owners without a `waiting` entry are running
    /// (they will release eventually) and terminate their branch.
    fn wait_cycles_back(&self, start: u64, blockers: &BTreeSet<u64>) -> bool {
        let mut stack: Vec<u64> = blockers.iter().copied().collect();
        let mut seen = BTreeSet::new();
        while let Some(owner) = stack.pop() {
            if owner == start {
                return true;
            }
            if !seen.insert(owner) {
                continue;
            }
            if let Some((key, targets)) = self.waiting.get(&owner) {
                stack.extend(self.blockers_of(owner, key, targets));
            }
        }
        false
    }
}

/// How long one blocked acquisition sleeps between re-checks. Deadlocks do
/// *not* wait for this — they are detected from the waits-for graph on the
/// first check that observes the full cycle.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// Default wait budget for a conflicting (but cycle-free) acquisition.
const DEFAULT_WAIT: Duration = Duration::from_secs(10);

/// Row/bucket-level writer locks shared by every connection of one server
/// (see the module docs).
#[derive(Debug)]
pub struct LockManager {
    state: Mutex<LockState>,
    released: Condvar,
    max_waits: u32,
}

impl Default for LockManager {
    fn default() -> Self {
        Self::with_timeout(DEFAULT_WAIT)
    }
}

impl LockManager {
    /// A lock manager with the default wait budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// A lock manager whose cycle-free lock waits give up after roughly
    /// `budget` (rounded up to a whole number of wait slices; deadlocks are
    /// still detected immediately regardless of the budget).
    pub fn with_timeout(budget: Duration) -> Self {
        let slice = WAIT_SLICE.as_millis().max(1);
        let max_waits = budget.as_millis().div_ceil(slice).max(1) as u32;
        LockManager {
            state: Mutex::new(LockState::default()),
            released: Condvar::new(),
            max_waits,
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, LockState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Take every target on `table` for `owner`, all-or-nothing. A conflict
    /// blocks until the holder releases; a waits-for cycle fails immediately
    /// with [`EngineErrorKind::Deadlock`] (this owner is the victim); a
    /// cycle-free wait that exhausts the manager's budget fails with
    /// [`EngineErrorKind::LockTimeout`].
    pub fn acquire(&self, owner: u64, table: &str, targets: &[LockTarget]) -> Result<()> {
        let key = table.to_ascii_lowercase();
        let mut state = self.lock_state();
        let mut waits = 0u32;
        loop {
            let locks = state.tables.entry(key.clone()).or_default();
            if targets.iter().all(|&t| locks.available(owner, t)) {
                for &t in targets {
                    locks.grant(owner, t);
                }
                state.waiting.remove(&owner);
                return Ok(());
            }
            // Publish the pending request *before* the cycle check so that
            // whichever member of a forming cycle checks last sees every
            // edge. Removing the entry again on the error paths breaks the
            // cycle for the surviving members.
            state.waiting.insert(owner, (key.clone(), targets.to_vec()));
            let blockers = state.blockers_of(owner, &key, targets);
            if state.wait_cycles_back(owner, &blockers) {
                state.waiting.remove(&owner);
                return Err(EngineError::with_kind(
                    EngineErrorKind::Deadlock,
                    format!(
                        "deadlock detected: this transaction and the holder(s) of table \
                         `{table}` are waiting on each other; this transaction was chosen \
                         as the victim — roll back and retry"
                    ),
                ));
            }
            if waits >= self.max_waits {
                state.waiting.remove(&owner);
                return Err(EngineError::with_kind(
                    EngineErrorKind::LockTimeout,
                    format!(
                        "lock wait on table `{table}` exceeded the {}ms budget (no deadlock \
                         detected — the holding transaction is still running)",
                        u64::from(self.max_waits) * WAIT_SLICE.as_millis() as u64
                    ),
                ));
            }
            waits += 1;
            let (guard, _) = self
                .released
                .wait_timeout(state, WAIT_SLICE)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Release every lock `owner` holds, on every table, and wake blocked
    /// acquirers. Called once at commit or rollback.
    pub fn release_all(&self, owner: u64) {
        let mut state = self.lock_state();
        state.tables.retain(|_, locks| {
            locks.release_owner(owner);
            !locks.is_empty()
        });
        self.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_locks_of_different_tenants_do_not_conflict() {
        let lm = LockManager::new();
        lm.acquire(1, "lineitem", &[LockTarget::Bucket(1)]).unwrap();
        lm.acquire(2, "lineitem", &[LockTarget::Bucket(2)]).unwrap();
        lm.acquire(3, "Lineitem", &[LockTarget::Loose]).unwrap();
        lm.release_all(1);
        lm.release_all(2);
        lm.release_all(3);
    }

    #[test]
    fn locks_are_reentrant_per_owner() {
        let lm = LockManager::new();
        lm.acquire(7, "t", &[LockTarget::Bucket(1), LockTarget::Loose])
            .unwrap();
        lm.acquire(7, "t", &[LockTarget::Bucket(1)]).unwrap();
        lm.acquire(7, "t", &[LockTarget::Whole]).unwrap();
        lm.release_all(7);
        lm.acquire(8, "t", &[LockTarget::Whole]).unwrap();
    }

    #[test]
    fn whole_table_lock_excludes_buckets_until_released() {
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, "t", &[LockTarget::Whole]).unwrap();
        let contender = {
            let lm = Arc::clone(&lm);
            std::thread::spawn(move || lm.acquire(2, "t", &[LockTarget::Bucket(5)]))
        };
        // The contender parks; releasing owner 1 lets it through.
        std::thread::sleep(Duration::from_millis(20));
        lm.release_all(1);
        contender.join().unwrap().unwrap();
        lm.release_all(2);
    }

    #[test]
    fn conflict_rules_cover_every_target_pair() {
        // The timeout path would take the full wait budget to observe, so
        // the conflict matrix is exercised directly on the lock table.
        let mut locks = TableLocks::default();
        locks.grant(1, LockTarget::Whole);
        assert!(!locks.available(2, LockTarget::Bucket(1)));
        assert!(!locks.available(2, LockTarget::Loose));
        assert!(!locks.available(2, LockTarget::Whole));
        assert!(locks.available(1, LockTarget::Bucket(1)));
        locks.release_owner(1);
        assert!(locks.available(2, LockTarget::Whole));
    }

    #[test]
    fn deadlock_is_detected_quickly_and_exactly_one_side_loses() {
        // Owner 1 holds `a` and wants `b`; owner 2 holds `b` and wants `a`.
        // The waits-for walk must pick exactly one victim (Deadlock kind)
        // and let the survivor proceed once the victim releases — long
        // before the multi-second timeout budget.
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, "a", &[LockTarget::Whole]).unwrap();
        lm.acquire(2, "b", &[LockTarget::Whole]).unwrap();
        let contender = {
            let lm = Arc::clone(&lm);
            std::thread::spawn(move || {
                let r = lm.acquire(1, "b", &[LockTarget::Whole]);
                if r.is_err() {
                    lm.release_all(1);
                }
                r
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        let started = std::time::Instant::now();
        let main_r = lm.acquire(2, "a", &[LockTarget::Whole]);
        if main_r.is_err() {
            lm.release_all(2);
        }
        let thread_r = contender.join().unwrap();
        let errs: Vec<&EngineError> = [&main_r, &thread_r]
            .into_iter()
            .filter_map(|r| r.as_ref().err())
            .collect();
        assert_eq!(errs.len(), 1, "exactly one deadlock victim: {errs:?}");
        assert_eq!(errs[0].kind(), EngineErrorKind::Deadlock);
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "detection must not wait out the timeout budget"
        );
        lm.release_all(1);
        lm.release_all(2);
    }

    #[test]
    fn cycle_free_contention_times_out_with_the_distinct_kind() {
        // Owner 1 holds the lock and is *running* (not waiting on anything),
        // so no cycle exists; owner 2 must get LockTimeout, not Deadlock.
        let lm = LockManager::with_timeout(Duration::from_millis(75));
        lm.acquire(1, "t", &[LockTarget::Whole]).unwrap();
        let err = lm.acquire(2, "t", &[LockTarget::Bucket(3)]).unwrap_err();
        assert_eq!(err.kind(), EngineErrorKind::LockTimeout);
        assert!(err.message.contains("budget"), "{}", err.message);
        lm.release_all(1);
        lm.acquire(2, "t", &[LockTarget::Bucket(3)]).unwrap();
    }

    #[test]
    fn three_party_cycles_are_detected() {
        // 1 holds a, wants b; 2 holds b, wants c; 3 holds c, wants a.
        let lm = Arc::new(LockManager::new());
        lm.acquire(1, "a", &[LockTarget::Whole]).unwrap();
        lm.acquire(2, "b", &[LockTarget::Whole]).unwrap();
        lm.acquire(3, "c", &[LockTarget::Whole]).unwrap();
        // Whichever way the acquire resolves, the owner then finishes its
        // transaction (commit on success, rollback as the victim) and
        // releases everything — that is what unblocks the survivors.
        let spawn = |owner: u64, table: &'static str| {
            let lm = Arc::clone(&lm);
            std::thread::spawn(move || {
                let r = lm.acquire(owner, table, &[LockTarget::Whole]);
                lm.release_all(owner);
                r
            })
        };
        let t1 = spawn(1, "b");
        std::thread::sleep(Duration::from_millis(30));
        let t2 = spawn(2, "c");
        std::thread::sleep(Duration::from_millis(30));
        let r3 = {
            let r = lm.acquire(3, "a", &[LockTarget::Whole]);
            lm.release_all(3);
            r
        };
        let results = [t1.join().unwrap(), t2.join().unwrap(), r3];
        let victims = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(victims, 1, "one victim breaks the whole cycle: {results:?}");
        for r in results.iter().filter_map(|r| r.as_ref().err()) {
            assert_eq!(r.kind(), EngineErrorKind::Deadlock);
        }
    }
}

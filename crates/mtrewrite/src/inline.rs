//! Conversion-function inlining (§4.2.3, Listing 17): replace UDF calls by
//! joins against the conversion meta tables plus plain arithmetic/string
//! expressions, so the underlying DBMS never calls a UDF at all.

use std::collections::HashMap;

use mtsql::ast::*;

/// How a particular conversion function can be inlined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InlineSpec {
    /// `f(x, t) = x * factor(t)` — currency-style conversions. The factor is
    /// looked up in `meta_table` by joining `key_column = t`.
    Factor {
        meta_table: String,
        key_column: String,
        factor_column: String,
    },
    /// `toUniversal(x, t)` for phone numbers: strip the tenant's prefix.
    PhoneStripPrefix {
        meta_table: String,
        key_column: String,
        prefix_column: String,
    },
    /// `fromUniversal(x, t)` for phone numbers: prepend the tenant's prefix.
    PhonePrependPrefix {
        meta_table: String,
        key_column: String,
        prefix_column: String,
    },
}

/// Registry mapping conversion-function names to inline specifications.
#[derive(Debug, Clone, Default)]
pub struct InlineRegistry {
    specs: HashMap<String, InlineSpec>,
}

impl InlineRegistry {
    /// Empty registry (inlining becomes a no-op).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an inline spec for a function name.
    pub fn register(&mut self, function: &str, spec: InlineSpec) {
        self.specs.insert(function.to_ascii_lowercase(), spec);
    }

    /// Look up the spec for a function name.
    pub fn get(&self, function: &str) -> Option<&InlineSpec> {
        self.specs.get(&function.to_ascii_lowercase())
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The registry for the MT-H benchmark: currency factors and phone
    /// prefixes both live in the `Tenant` meta table.
    pub fn mt_h() -> Self {
        let mut reg = Self::new();
        reg.register(
            "currencyToUniversal",
            InlineSpec::Factor {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                factor_column: "T_currency_to".into(),
            },
        );
        reg.register(
            "currencyFromUniversal",
            InlineSpec::Factor {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                factor_column: "T_currency_from".into(),
            },
        );
        reg.register(
            "phoneToUniversal",
            InlineSpec::PhoneStripPrefix {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                prefix_column: "T_phone_prefix".into(),
            },
        );
        reg.register(
            "phoneFromUniversal",
            InlineSpec::PhonePrependPrefix {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                prefix_column: "T_phone_prefix".into(),
            },
        );
        reg
    }
}

/// Inline every registered conversion function in the query (and its
/// sub-queries). Each call adds one join against the meta table to the FROM
/// clause of the query block the call appears in.
pub fn inline_query(query: &Query, registry: &InlineRegistry) -> Query {
    if registry.is_empty() {
        return query.clone();
    }
    let mut state = InlineState {
        registry,
        joins: Vec::new(),
        counter: 0,
    };
    let body = &query.body;
    let projection = body
        .projection
        .iter()
        .map(|item| match item {
            SelectItem::Expr { expr, alias } => SelectItem::Expr {
                expr: state.inline_expr(expr),
                alias: alias.clone(),
            },
            other => other.clone(),
        })
        .collect();
    let mut from: Vec<TableRef> = body
        .from
        .iter()
        .map(|t| state.inline_table_ref(t))
        .collect();
    let selection = body.selection.as_ref().map(|s| state.inline_expr(s));
    let group_by = body.group_by.iter().map(|g| state.inline_expr(g)).collect();
    let having = body.having.as_ref().map(|h| state.inline_expr(h));
    let order_by = query
        .order_by
        .iter()
        .map(|o| OrderByItem {
            expr: state.inline_expr(&o.expr),
            asc: o.asc,
        })
        .collect();

    // Attach the collected meta-table joins: new FROM entries plus equality
    // predicates in WHERE.
    let mut predicates: Vec<Expr> = Vec::new();
    if let Some(sel) = selection {
        predicates.push(sel);
    }
    for (table, alias, key_column, key_expr) in state.joins.drain(..) {
        from.push(TableRef::Table {
            name: table,
            alias: Some(alias.clone()),
        });
        predicates.push(Expr::eq(Expr::qcol(alias, key_column), key_expr));
    }

    Query {
        body: Select {
            distinct: body.distinct,
            projection,
            from,
            selection: Expr::conjunction(predicates),
            group_by,
            having,
        },
        order_by,
        limit: query.limit,
    }
}

struct InlineState<'a> {
    registry: &'a InlineRegistry,
    /// Pending joins: (meta table, alias, key column, key expression).
    joins: Vec<(String, String, String, Expr)>,
    counter: usize,
}

impl InlineState<'_> {
    fn meta_join(&mut self, table: &str, key_column: &str, key_expr: Expr) -> String {
        // Reuse an existing join when the same meta table is already joined on
        // an identical key expression (e.g. both conversion directions of the
        // same attribute).
        for (t, alias, k, e) in &self.joins {
            if t.eq_ignore_ascii_case(table) && k.eq_ignore_ascii_case(key_column) && *e == key_expr
            {
                return alias.clone();
            }
        }
        self.counter += 1;
        let alias = format!("mt_conv{}", self.counter);
        self.joins.push((
            table.to_string(),
            alias.clone(),
            key_column.to_string(),
            key_expr,
        ));
        alias
    }

    fn inline_table_ref(&mut self, table_ref: &TableRef) -> TableRef {
        match table_ref {
            TableRef::Table { .. } => table_ref.clone(),
            TableRef::Derived { query, alias } => TableRef::Derived {
                query: Box::new(inline_query(query, self.registry)),
                alias: alias.clone(),
            },
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => TableRef::Join {
                left: Box::new(self.inline_table_ref(left)),
                right: Box::new(self.inline_table_ref(right)),
                kind: *kind,
                on: on.as_ref().map(|c| self.inline_expr(c)),
            },
        }
    }

    fn inline_expr(&mut self, expr: &Expr) -> Expr {
        if let Expr::Function(f) = expr {
            if f.args.len() == 2 {
                if let Some(spec) = self.registry.get(&f.name).cloned() {
                    let value = self.inline_expr(&f.args[0]);
                    let tenant = self.inline_expr(&f.args[1]);
                    return self.apply_spec(&spec, value, tenant);
                }
            }
        }
        match expr {
            Expr::Column(_) | Expr::Literal(_) | Expr::Param(_) => expr.clone(),
            Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
                left: Box::new(self.inline_expr(left)),
                op: *op,
                right: Box::new(self.inline_expr(right)),
            },
            Expr::UnaryOp { op, expr } => Expr::UnaryOp {
                op: *op,
                expr: Box::new(self.inline_expr(expr)),
            },
            Expr::Function(f) => Expr::Function(FunctionCall {
                name: f.name.clone(),
                args: f.args.iter().map(|a| self.inline_expr(a)).collect(),
                distinct: f.distinct,
            }),
            Expr::Case {
                operand,
                when_then,
                else_expr,
            } => Expr::Case {
                operand: operand.as_ref().map(|o| Box::new(self.inline_expr(o))),
                when_then: when_then
                    .iter()
                    .map(|(w, t)| (self.inline_expr(w), self.inline_expr(t)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(self.inline_expr(e))),
            },
            Expr::Exists { query, negated } => Expr::Exists {
                query: Box::new(inline_query(query, self.registry)),
                negated: *negated,
            },
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => Expr::InSubquery {
                expr: Box::new(self.inline_expr(expr)),
                query: Box::new(inline_query(query, self.registry)),
                negated: *negated,
            },
            Expr::ScalarSubquery(q) => {
                Expr::ScalarSubquery(Box::new(inline_query(q, self.registry)))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.inline_expr(expr)),
                list: list.iter().map(|i| self.inline_expr(i)).collect(),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.inline_expr(expr)),
                low: Box::new(self.inline_expr(low)),
                high: Box::new(self.inline_expr(high)),
                negated: *negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.inline_expr(expr)),
                pattern: Box::new(self.inline_expr(pattern)),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.inline_expr(expr)),
                negated: *negated,
            },
            Expr::Extract { field, expr } => Expr::Extract {
                field: *field,
                expr: Box::new(self.inline_expr(expr)),
            },
            Expr::Substring {
                expr,
                start,
                length,
            } => Expr::Substring {
                expr: Box::new(self.inline_expr(expr)),
                start: Box::new(self.inline_expr(start)),
                length: length.as_ref().map(|l| Box::new(self.inline_expr(l))),
            },
            Expr::Cast { expr, data_type } => Expr::Cast {
                expr: Box::new(self.inline_expr(expr)),
                data_type: *data_type,
            },
        }
    }

    fn apply_spec(&mut self, spec: &InlineSpec, value: Expr, tenant: Expr) -> Expr {
        match spec {
            InlineSpec::Factor {
                meta_table,
                key_column,
                factor_column,
            } => {
                let alias = self.meta_join(meta_table, key_column, tenant);
                Expr::binary(
                    value,
                    BinaryOperator::Multiply,
                    Expr::qcol(alias, factor_column),
                )
            }
            InlineSpec::PhoneStripPrefix {
                meta_table,
                key_column,
                prefix_column,
            } => {
                let alias = self.meta_join(meta_table, key_column, tenant);
                let prefix = Expr::qcol(alias, prefix_column);
                Expr::Substring {
                    expr: Box::new(value),
                    start: Box::new(Expr::binary(
                        Expr::call("CHAR_LENGTH", vec![prefix]),
                        BinaryOperator::Plus,
                        Expr::int(1),
                    )),
                    length: None,
                }
            }
            InlineSpec::PhonePrependPrefix {
                meta_table,
                key_column,
                prefix_column,
            } => {
                let alias = self.meta_join(meta_table, key_column, tenant);
                Expr::call("CONCAT", vec![Expr::qcol(alias, prefix_column), value])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonical::{rewrite_query, RewriteSettings};
    use mtcatalog::running_example_catalog;

    fn canonical(sql: &str) -> Query {
        let catalog = running_example_catalog();
        rewrite_query(
            &mtsql::parse_query(sql).unwrap(),
            &catalog,
            &RewriteSettings::canonical(0, vec![0, 1]),
        )
        .unwrap()
    }

    #[test]
    fn inlines_currency_conversion_as_join_and_multiplication() {
        let q = canonical("SELECT E_salary FROM Employees");
        let out = inline_query(&q, &InlineRegistry::mt_h());
        let sql = out.to_string();
        assert!(!sql.to_lowercase().contains("currencytouniversal("));
        assert!(sql.contains("Tenant AS mt_conv1"));
        assert!(sql.contains("Tenant AS mt_conv2"));
        assert!(sql.contains("T_currency_to"));
        assert!(sql.contains("T_currency_from"));
        assert!(
            sql.contains("mt_conv1.T_tenant_key = Employees.ttid")
                || sql.contains("mt_conv2.T_tenant_key = Employees.ttid")
        );
    }

    #[test]
    fn reuses_meta_join_for_same_key() {
        // Two references to the same convertible attribute in the same block
        // must not explode the number of joins on the same key expression.
        let q = canonical("SELECT E_salary FROM Employees WHERE E_salary > 100000");
        let out = inline_query(&q, &InlineRegistry::mt_h());
        let sql = out.to_string();
        // one join keyed on Employees.ttid, one keyed on the constant client 0
        assert_eq!(sql.matches("Tenant AS").count(), 2);
    }

    #[test]
    fn empty_registry_is_a_noop() {
        let q = canonical("SELECT E_salary FROM Employees");
        assert_eq!(inline_query(&q, &InlineRegistry::new()), q);
    }

    #[test]
    fn phone_specs_produce_string_expressions() {
        let mut registry = InlineRegistry::new();
        registry.register(
            "phoneToUniversal",
            InlineSpec::PhoneStripPrefix {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                prefix_column: "T_phone_prefix".into(),
            },
        );
        registry.register(
            "phoneFromUniversal",
            InlineSpec::PhonePrependPrefix {
                meta_table: "Tenant".into(),
                key_column: "T_tenant_key".into(),
                prefix_column: "T_phone_prefix".into(),
            },
        );
        let q = mtsql::parse_query(
            "SELECT phoneFromUniversal(phoneToUniversal(c_phone, ttid), 1) AS p FROM Customer",
        )
        .unwrap();
        let out = inline_query(&q, &registry).to_string();
        assert!(out.contains("SUBSTRING"));
        assert!(out.contains("CONCAT"));
        assert!(out.contains("CHAR_LENGTH"));
    }
}
